//! Gaussian distribution utilities.
//!
//! Definition 4.1 of the paper weights each snapshot by
//! `wᵢ = f(θᵢ − θ₁; cᵢ, √2·0.1)` where `f` is the Gaussian PDF: the paper
//! models per-read phase error as `N(0, 0.1²)` rad (citing Tagoram), so the
//! *difference* of two reads has standard deviation `√2·0.1`.

use std::f64::consts::PI;

/// A univariate Gaussian distribution `N(μ, σ²)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gaussian {
    mean: f64,
    std_dev: f64,
}

impl Gaussian {
    /// Create a Gaussian.
    ///
    /// # Panics
    ///
    /// Panics when `std_dev` is not finite and strictly positive.
    pub fn new(mean: f64, std_dev: f64) -> Self {
        assert!(
            std_dev.is_finite() && std_dev > 0.0,
            "standard deviation must be finite and positive"
        );
        Gaussian { mean, std_dev }
    }

    /// The mean `μ`.
    #[inline]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The standard deviation `σ`.
    #[inline]
    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }

    /// Probability density at `x`.
    ///
    /// ```
    /// use tagspin_dsp::Gaussian;
    /// let g = Gaussian::new(0.0, 1.0);
    /// assert!((g.pdf(0.0) - 0.398942).abs() < 1e-5);
    /// ```
    #[inline]
    pub fn pdf(&self, x: f64) -> f64 {
        let z = (x - self.mean) / self.std_dev;
        (-0.5 * z * z).exp() / (self.std_dev * (2.0 * PI).sqrt())
    }

    /// Density of the *wrapped* Gaussian on the circle, evaluated with the
    /// nearest-wrap approximation.
    ///
    /// Phase differences live on the circle: a measured difference of
    /// `μ + 2π` is the same observation as `μ`. For the small σ used here
    /// (≈0.14 rad), summing the single nearest wrap term is exact to ~1e-87,
    /// so we wrap `x − μ` into `(−π, π]` and evaluate one PDF term.
    #[inline]
    pub fn pdf_wrapped(&self, x: f64) -> f64 {
        let d = tagspin_geom::angle::diff(x, self.mean);
        let z = d / self.std_dev;
        (-0.5 * z * z).exp() / (self.std_dev * (2.0 * PI).sqrt())
    }

    /// Cumulative distribution function via `erf` (Abramowitz–Stegun 7.1.26
    /// approximation, |error| < 1.5e-7 — ample for weighting and tests).
    pub fn cdf(&self, x: f64) -> f64 {
        let z = (x - self.mean) / (self.std_dev * std::f64::consts::SQRT_2);
        0.5 * (1.0 + erf(z))
    }
}

/// Error function approximation (Abramowitz & Stegun 7.1.26).
///
/// Max absolute error ≈ 1.5e-7 over the real line.
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Fit a Gaussian to samples by moments (sample mean, *population* std).
///
/// Returns `None` when fewer than two samples are supplied or the variance
/// is zero.
pub fn fit_moments(samples: &[f64]) -> Option<Gaussian> {
    if samples.len() < 2 {
        return None;
    }
    let n = samples.len() as f64;
    let mean = samples.iter().sum::<f64>() / n;
    let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
    if var <= 0.0 {
        return None;
    }
    Some(Gaussian::new(mean, var.sqrt()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::TAU;

    #[test]
    fn pdf_symmetry_and_peak() {
        let g = Gaussian::new(2.0, 0.5);
        assert!((g.pdf(1.0) - g.pdf(3.0)).abs() < 1e-12);
        assert!(g.pdf(2.0) > g.pdf(2.4));
        // Peak value is 1/(σ√(2π)).
        assert!((g.pdf(2.0) - 1.0 / (0.5 * (2.0 * PI).sqrt())).abs() < 1e-12);
    }

    #[test]
    fn pdf_integrates_to_one() {
        let g = Gaussian::new(-1.0, 0.7);
        let (a, b, n) = (-8.0, 6.0, 20_000);
        let h = (b - a) / n as f64;
        let mut sum = 0.0;
        for i in 0..=n {
            let w = if i == 0 || i == n { 0.5 } else { 1.0 };
            sum += w * g.pdf(a + i as f64 * h);
        }
        assert!((sum * h - 1.0).abs() < 1e-6);
    }

    #[test]
    fn cdf_basics() {
        let g = Gaussian::new(0.0, 1.0);
        assert!((g.cdf(0.0) - 0.5).abs() < 1e-7);
        assert!(g.cdf(3.0) > 0.998);
        assert!(g.cdf(-3.0) < 0.002);
        // Monotone.
        assert!(g.cdf(0.5) > g.cdf(0.4));
    }

    #[test]
    fn erf_reference_values() {
        // The A&S 7.1.26 polynomial has ~1e-9 residual at the origin.
        assert!(erf(0.0).abs() < 1e-6);
        assert!((erf(1.0) - 0.8427007).abs() < 1e-5);
        assert!((erf(-1.0) + 0.8427007).abs() < 1e-5);
        assert!((erf(2.0) - 0.9953223).abs() < 1e-5);
    }

    #[test]
    fn wrapped_pdf_periodicity() {
        let g = Gaussian::new(0.3, 0.14);
        for k in -3..=3 {
            let x = 0.5 + k as f64 * TAU;
            assert!((g.pdf_wrapped(x) - g.pdf_wrapped(0.5)).abs() < 1e-12);
        }
    }

    #[test]
    fn wrapped_pdf_matches_linear_near_mean() {
        let g = Gaussian::new(0.0, 0.14);
        for &x in &[0.0, 0.1, -0.2, 0.3] {
            assert!((g.pdf_wrapped(x) - g.pdf(x)).abs() < 1e-12);
        }
    }

    #[test]
    fn fit_moments_recovers() {
        // Symmetric 4-point sample with known moments.
        let s = [-1.0, 1.0, -1.0, 1.0];
        let g = fit_moments(&s).unwrap();
        assert!(g.mean().abs() < 1e-12);
        assert!((g.std_dev() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fit_moments_degenerate() {
        assert!(fit_moments(&[1.0]).is_none());
        assert!(fit_moments(&[2.0, 2.0, 2.0]).is_none());
        assert!(fit_moments(&[]).is_none());
    }

    #[test]
    #[should_panic(expected = "standard deviation")]
    fn zero_sigma_panics() {
        let _ = Gaussian::new(0.0, 0.0);
    }
}
