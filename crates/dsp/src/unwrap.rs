//! Phase unwrapping and the paper's Eqn-4 smoothing.
//!
//! RFID readers report phase modulo 2π, so a smoothly varying physical phase
//! appears as a sawtooth with jumps near ±2π (paper Fig. 3). Section III-B
//! smooths the sequence by adding/subtracting 2π whenever consecutive samples
//! jump by more than π:
//!
//! ```text
//! θ(t) = θ(t) − 2π   if θ(t) − θ(t−1) >  π
//! θ(t) = θ(t) + 2π   if θ(t) − θ(t−1) < −π
//! θ(t) = θ(t)        otherwise
//! ```
//!
//! The paper applies the correction once per sample; the general
//! [`unwrap`] here accumulates the correction so arbitrarily many wraps are
//! removed — equivalent for well-sampled data and strictly better otherwise.

use std::f64::consts::{PI, TAU};

/// Unwrap a mod-2π phase sequence in place semantics, returning a new vector.
///
/// The first sample is kept as-is; every subsequent sample is shifted by a
/// multiple of 2π so that consecutive differences fall in `(-π, π]`. This is
/// the accumulating generalization of the paper's Eqn-4 smoothing.
///
/// Returns an empty vector for empty input. NaN samples poison the remainder
/// of the sequence (propagated, not patched).
///
/// ```
/// use tagspin_dsp::unwrap::unwrap;
/// let wrapped = [0.0, 3.0, 6.0_f64.rem_euclid(std::f64::consts::TAU)];
/// let un = unwrap(&wrapped);
/// assert!((un[2] - 6.0).abs() < 1e-9 || (un[2] - (6.0 - std::f64::consts::TAU)).abs() < 1e-9);
/// ```
pub fn unwrap(phases: &[f64]) -> Vec<f64> {
    let mut out = Vec::with_capacity(phases.len());
    let mut offset = 0.0;
    let mut prev_raw: Option<f64> = None;
    for &p in phases {
        if let Some(prev) = prev_raw {
            let mut d = p - prev;
            while d > PI {
                offset -= TAU;
                d -= TAU;
            }
            while d <= -PI {
                offset += TAU;
                d += TAU;
            }
        }
        out.push(p + offset);
        prev_raw = Some(p);
    }
    out
}

/// The paper's literal single-step smoothing (Eqn 4): each sample is adjusted
/// by at most ±2π relative to its predecessor's *smoothed* value.
///
/// Kept for fidelity with Section III-B; [`unwrap`] is the robust variant.
pub fn smooth_eqn4(phases: &[f64]) -> Vec<f64> {
    let mut out: Vec<f64> = Vec::with_capacity(phases.len());
    for (i, &p) in phases.iter().enumerate() {
        if i == 0 {
            out.push(p);
            continue;
        }
        let prev = out[i - 1];
        // The paper states a single ±2π correction, but because θ(t) is
        // compared against the already-smoothed θ(t−1), the gap grows by 2π
        // per completed wrap; applying the rule to a fixed point (repeating
        // while the condition holds) is the only reading that matches the
        // smooth curves of Fig. 4.
        let mut adjusted = p;
        while adjusted - prev > PI {
            adjusted -= TAU;
        }
        while adjusted - prev < -PI {
            adjusted += TAU;
        }
        out.push(adjusted);
    }
    out
}

/// Wrap an unwrapped sequence back to `[0, 2π)` (inverse of unwrapping up to
/// the 2π ambiguity). Provided for round-trip testing and report rendering.
pub fn rewrap(phases: &[f64]) -> Vec<f64> {
    phases
        .iter()
        .map(|&p| tagspin_geom::angle::wrap_tau(p))
        .collect()
}

/// Count the wrap discontinuities (jumps > π between consecutive samples) in
/// a raw phase sequence — a quick diagnostic for spin-rate/sample-rate
/// mismatch.
pub fn count_wraps(phases: &[f64]) -> usize {
    phases
        .windows(2)
        .filter(|w| (w[1] - w[0]).abs() > PI)
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A smooth physical phase ramp, wrapped, must unwrap to within a global
    /// 2π-multiple of the original.
    #[test]
    fn unwrap_inverts_wrapping() {
        let truth: Vec<f64> = (0..500).map(|i| 0.07 * i as f64).collect();
        let wrapped: Vec<f64> = truth
            .iter()
            .map(|&x| tagspin_geom::angle::wrap_tau(x))
            .collect();
        let un = unwrap(&wrapped);
        let delta = un[0] - truth[0];
        for (u, t) in un.iter().zip(&truth) {
            assert!((u - t - delta).abs() < 1e-9, "u={u} t={t}");
        }
    }

    #[test]
    fn unwrap_handles_decreasing() {
        let truth: Vec<f64> = (0..200).map(|i| -0.11 * i as f64 + 3.0).collect();
        let wrapped: Vec<f64> = truth
            .iter()
            .map(|&x| tagspin_geom::angle::wrap_tau(x))
            .collect();
        let un = unwrap(&wrapped);
        let delta = un[0] - truth[0];
        for (u, t) in un.iter().zip(&truth) {
            assert!((u - t - delta).abs() < 1e-9);
        }
    }

    #[test]
    fn unwrap_sinusoid() {
        // The Tagspin phase model: θ(t) = (4π/λ)(D − r·cos(ωt)), wrapped.
        let lambda = 0.3243;
        let (d, r) = (2.0, 0.1);
        let truth: Vec<f64> = (0..1000)
            .map(|i| {
                let t = i as f64 * 0.01;
                4.0 * PI / lambda * (d - r * (0.5 * t).cos())
            })
            .collect();
        let wrapped: Vec<f64> = truth
            .iter()
            .map(|&x| tagspin_geom::angle::wrap_tau(x))
            .collect();
        let un = unwrap(&wrapped);
        let delta = un[0] - truth[0];
        for (u, t) in un.iter().zip(&truth) {
            assert!((u - t - delta).abs() < 1e-6);
        }
    }

    #[test]
    fn empty_and_single() {
        assert!(unwrap(&[]).is_empty());
        assert_eq!(unwrap(&[1.5]), vec![1.5]);
        assert!(smooth_eqn4(&[]).is_empty());
        assert_eq!(smooth_eqn4(&[1.5]), vec![1.5]);
    }

    #[test]
    fn eqn4_matches_unwrap_for_slow_sequences() {
        // When inter-sample steps are < π the two agree exactly.
        let truth: Vec<f64> = (0..300).map(|i| 0.05 * i as f64).collect();
        let wrapped: Vec<f64> = truth
            .iter()
            .map(|&x| tagspin_geom::angle::wrap_tau(x))
            .collect();
        let a = unwrap(&wrapped);
        let b = smooth_eqn4(&wrapped);
        // Eqn 4 adjusts only relative to the previous *smoothed* sample, so it
        // tracks one accumulated offset; compare shapes.
        for w in a.windows(2).zip(b.windows(2)) {
            let (da, db) = (w.0[1] - w.0[0], w.1[1] - w.1[0]);
            assert!((da - db).abs() < 1e-9);
        }
    }

    #[test]
    fn rewrap_round_trip() {
        let raw = [0.1, 2.0, 4.5, 6.1, 1.2, 3.3];
        let rt = rewrap(&unwrap(&raw));
        for (a, b) in rt.iter().zip(&raw) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn wrap_count() {
        let seq = [0.1, 6.2, 0.3, 6.1]; // two jumps across the seam
        assert_eq!(count_wraps(&seq), 3);
        assert_eq!(count_wraps(&[0.0, 0.1, 0.2]), 0);
        assert_eq!(count_wraps(&[]), 0);
    }

    #[test]
    fn nan_propagates() {
        let un = unwrap(&[0.0, f64::NAN, 1.0]);
        assert!(un[1].is_nan());
    }
}
