//! AntLoc-style antenna localization via variable RF attenuation.
//!
//! Luo et al. (IECON 2007) — one of the very few prior systems that locates
//! the *antenna* — sweeps the reader's transmit attenuation and records, for
//! each passive reference tag, the largest attenuation at which the tag
//! still answers. Because the forward link budget is monotone in distance,
//! that threshold maps to a range estimate; ranges from several tags are
//! trilaterated.

use crate::common::{gauss_newton_2d, BaselineError};
use tagspin_geom::{Vec2, Vec3};

/// Convert a threshold attenuation into a range estimate.
///
/// At the response threshold the tag receives exactly its sensitivity, so
/// (in dB):
///
/// ```text
/// tx − atten + gains − PL(d) = sensitivity
/// PL(d) = PL(1m) + 10·n·log10(d)
/// ```
///
/// `link_margin_at_1m` bundles `tx + gains − PL(1m) − sensitivity`: the
/// attenuation that would silence a tag at exactly 1 m.
///
/// # Panics
///
/// Panics when `path_loss_exponent` is not strictly positive.
pub fn range_from_threshold(
    threshold_atten_db: f64,
    link_margin_at_1m: f64,
    path_loss_exponent: f64,
) -> f64 {
    assert!(path_loss_exponent > 0.0, "exponent must be positive");
    10f64.powf((link_margin_at_1m - threshold_atten_db) / (10.0 * path_loss_exponent))
}

/// AntLoc localizer: reference tags at known positions plus link constants.
#[derive(Debug, Clone, PartialEq)]
pub struct AntLoc {
    /// Reference tag positions, meters.
    pub references: Vec<Vec3>,
    /// Attenuation silencing a 1 m tag, dB (calibration constant).
    pub link_margin_at_1m: f64,
    /// Forward path-loss exponent.
    pub path_loss_exponent: f64,
    /// Reader height assumed for the 2D solve, meters.
    pub reader_height: f64,
}

impl AntLoc {
    /// Build a localizer; `link_margin_at_1m` comes from a one-time bench
    /// calibration in the original system.
    pub fn new(references: Vec<Vec3>, link_margin_at_1m: f64, path_loss_exponent: f64) -> Self {
        AntLoc {
            references,
            link_margin_at_1m,
            path_loss_exponent,
            reader_height: 0.0,
        }
    }

    /// Locate the reader from per-reference threshold attenuations (dB).
    ///
    /// # Errors
    ///
    /// * [`BaselineError::DimensionMismatch`] — threshold count differs
    ///   from reference count.
    /// * [`BaselineError::TooFewReferences`] — fewer than 3 references.
    /// * [`BaselineError::Solver`] — trilateration failed.
    pub fn locate(&self, thresholds_db: &[f64]) -> Result<Vec2, BaselineError> {
        if thresholds_db.len() != self.references.len() {
            return Err(BaselineError::DimensionMismatch);
        }
        if self.references.len() < 3 {
            return Err(BaselineError::TooFewReferences {
                got: self.references.len(),
                need: 3,
            });
        }
        let ranges: Vec<f64> = thresholds_db
            .iter()
            .map(|&t| range_from_threshold(t, self.link_margin_at_1m, self.path_loss_exponent))
            .collect();
        self.locate_with_ranges(&ranges)
    }

    /// Trilaterate from explicit range estimates (meters). Used directly
    /// when the caller performs its own gain-corrected range inversion.
    ///
    /// # Errors
    ///
    /// Same as [`AntLoc::locate`].
    pub fn locate_with_ranges(&self, ranges: &[f64]) -> Result<Vec2, BaselineError> {
        if ranges.len() != self.references.len() {
            return Err(BaselineError::DimensionMismatch);
        }
        if self.references.len() < 3 {
            return Err(BaselineError::TooFewReferences {
                got: self.references.len(),
                need: 3,
            });
        }
        // Initialize at the range-weighted centroid (closer tags pull
        // harder), then Gauss-Newton on the range residuals.
        let mut wsum = 0.0;
        let mut init = Vec2::ZERO;
        for (r, t) in ranges.iter().zip(&self.references) {
            let w = 1.0 / r.max(0.1);
            init += t.xy() * w;
            wsum += w;
        }
        init = init / wsum;
        let h = self.reader_height;
        let refs = &self.references;
        let residuals = |p: Vec2| -> Vec<f64> {
            refs.iter()
                .zip(ranges)
                .map(|(t, &r)| {
                    // Down-weight far (unreliable, dB-exponentiated) ranges.
                    (t.distance(p.with_z(h)) - r) / r.max(0.3).sqrt()
                })
                .collect()
        };
        gauss_newton_2d(residuals, init, 50)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MARGIN_1M: f64 = 30.0;
    const EXPONENT: f64 = 2.0;

    /// The forward model: the threshold attenuation a tag at distance d
    /// experiences (inverse of `range_from_threshold`).
    fn threshold_for(d: f64) -> f64 {
        MARGIN_1M - 10.0 * EXPONENT * d.log10()
    }

    fn references() -> Vec<Vec3> {
        vec![
            Vec3::new(-1.5, -1.0, 0.0),
            Vec3::new(1.5, -1.0, 0.0),
            Vec3::new(0.0, 1.8, 0.0),
            Vec3::new(-1.0, 1.0, 0.0),
        ]
    }

    #[test]
    fn range_inversion_roundtrip() {
        for d in [0.5, 1.0, 2.0, 3.5] {
            let t = threshold_for(d);
            let r = range_from_threshold(t, MARGIN_1M, EXPONENT);
            assert!((r - d).abs() < 1e-9, "d={d} r={r}");
        }
        // At 1 m the threshold equals the margin.
        assert!((range_from_threshold(MARGIN_1M, MARGIN_1M, EXPONENT) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn exact_thresholds_localize_exactly() {
        let al = AntLoc::new(references(), MARGIN_1M, EXPONENT);
        let truth = Vec2::new(0.4, 0.2);
        let thresholds: Vec<f64> = al
            .references
            .iter()
            .map(|t| threshold_for(t.distance(truth.with_z(0.0))))
            .collect();
        let est = al.locate(&thresholds).unwrap();
        assert!((est - truth).norm() < 1e-6, "est = {est}");
    }

    #[test]
    fn quantized_thresholds_give_decimeter_error() {
        // Real attenuators step in 0.25–1 dB; quantize to 1 dB.
        let al = AntLoc::new(references(), MARGIN_1M, EXPONENT);
        let truth = Vec2::new(-0.6, 0.5);
        let thresholds: Vec<f64> = al
            .references
            .iter()
            .map(|t| threshold_for(t.distance(truth.with_z(0.0))).round())
            .collect();
        let est = al.locate(&thresholds).unwrap();
        let err = (est - truth).norm();
        // 1 dB at n=2 is ~12% range error → tens of centimeters.
        assert!(err < 0.6, "err = {err}");
        assert!(err > 1e-6);
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let al = AntLoc::new(references(), MARGIN_1M, EXPONENT);
        assert_eq!(al.locate(&[10.0]), Err(BaselineError::DimensionMismatch));
    }

    #[test]
    fn too_few_references_rejected() {
        let al = AntLoc::new(
            vec![Vec3::ZERO, Vec3::new(1.0, 0.0, 0.0)],
            MARGIN_1M,
            EXPONENT,
        );
        assert_eq!(
            al.locate(&[10.0, 12.0]),
            Err(BaselineError::TooFewReferences { got: 2, need: 3 })
        );
    }

    #[test]
    #[should_panic(expected = "exponent")]
    fn bad_exponent_panics() {
        let _ = range_from_threshold(10.0, 30.0, 0.0);
    }
}
