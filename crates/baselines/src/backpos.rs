//! BackPos-style hyperbolic phase positioning.
//!
//! BackPos (Liu et al., INFOCOM 2014) is anchor-free backscatter
//! positioning: phase *differences* between antennas define hyperbolae
//! (constant range difference) whose intersection is the tag. Flipped to
//! reader localization, the foci are reference tags at known positions: the
//! reader's phase reading of tag `i` is `(4π/λ)·dᵢ + θ_div`, so the phase
//! difference between tags `i` and `j` pins `dᵢ − dⱼ` modulo `λ/2` (the
//! diversity term cancels if the tags are phase-matched; residual per-tag
//! offsets are part of the method's error budget, as in the original).
//!
//! The `λ/2` integer ambiguity is resolved the way BackPos does: restrict
//! the solution to a feasible region and pick the grid cell minimizing the
//! wrapped residual, then refine with Gauss-Newton.

use crate::common::{gauss_newton_2d, BaselineError, Bounds2D};
use std::f64::consts::TAU;
use tagspin_geom::{angle, Vec2, Vec3};

/// BackPos localizer configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct BackPos {
    /// Reference tag positions (hyperbola foci), meters.
    pub references: Vec<Vec3>,
    /// Carrier wavelength, meters.
    pub lambda: f64,
    /// Feasible region for the coarse search.
    pub bounds: Bounds2D,
    /// Coarse grid step, meters (≲ λ/16 keeps the right ambiguity cell).
    pub grid_step: f64,
    /// Reader height assumed for the 2D solve.
    pub reader_height: f64,
}

impl BackPos {
    /// Standard configuration with a 2 cm coarse grid.
    pub fn new(references: Vec<Vec3>, lambda: f64, bounds: Bounds2D) -> Self {
        BackPos {
            references,
            lambda,
            bounds,
            grid_step: 0.02,
            reader_height: 0.0,
        }
    }

    /// Wrapped-phase residual vector for a candidate position: one entry
    /// per tag pair `(i, j)`, `i < j`.
    ///
    /// Using *all* pairs (not just those anchored at tag 0) is essential:
    /// each wrapped pair constraint is periodic in `dᵢ − dⱼ` with period
    /// `λ/2`, so a sparse pair set admits alias positions where every
    /// constraint wraps to zero simultaneously; the full pair set breaks
    /// those ties.
    fn residuals(&self, p: Vec2, phases: &[f64]) -> Vec<f64> {
        let k = 2.0 * TAU / self.lambda; // 4π/λ
        let p3 = p.with_z(self.reader_height);
        let d: Vec<f64> = self.references.iter().map(|t| t.distance(p3)).collect();
        let n = self.references.len();
        let mut out = Vec::with_capacity(n * (n - 1) / 2);
        for i in 0..n {
            for j in (i + 1)..n {
                let predicted = k * (d[j] - d[i]);
                let measured = phases[j] - phases[i];
                out.push(angle::wrap_pi(measured - predicted));
            }
        }
        out
    }

    /// Locate the reader from its per-reference phase readings (radians,
    /// wrapped).
    ///
    /// # Errors
    ///
    /// * [`BaselineError::DimensionMismatch`] — phases length differs from
    ///   the reference count.
    /// * [`BaselineError::TooFewReferences`] — fewer than 4 references
    ///   (3 independent hyperbolae are needed to break ambiguities
    ///   robustly).
    /// * [`BaselineError::Solver`] — refinement failed.
    pub fn locate(&self, phases: &[f64]) -> Result<Vec2, BaselineError> {
        if phases.len() != self.references.len() {
            return Err(BaselineError::DimensionMismatch);
        }
        if self.references.len() < 4 {
            return Err(BaselineError::TooFewReferences {
                got: self.references.len(),
                need: 4,
            });
        }
        // Coarse grid search over the feasible region, keeping several of
        // the best cells: at a finite grid step the true cell's residual is
        // not exactly zero, so an alias cell can outrank it *before*
        // refinement. Refining the top candidates and comparing refined
        // residuals resolves the ambiguity correctly.
        let mut scored: Vec<(f64, Vec2)> = self
            .bounds
            .grid(self.grid_step)
            .into_iter()
            .map(|c| {
                let ss: f64 = self.residuals(c, phases).iter().map(|r| r * r).sum();
                (ss, c)
            })
            .collect();
        scored.sort_by(|a, b| a.0.total_cmp(&b.0));
        // The true basin is only millimeters wide at room scale (the
        // wrapped residual oscillates on the λ/2 scale), so dozens of alias
        // cells can outrank the truth's nearest grid cell before
        // refinement; 128 starts comfortably covers that margin.
        let mut best: Option<(f64, Vec2)> = None;
        for &(coarse_ss, start) in scored.iter().take(128) {
            let candidate = match gauss_newton_2d(|p| self.residuals(p, phases), start, 30) {
                // Refinement walking out of the feasible region means it
                // left the ambiguity cell; keep the coarse point instead.
                Ok(p) if self.bounds.contains(p) => p,
                _ => start,
            };
            let ss: f64 = self
                .residuals(candidate, phases)
                .iter()
                .map(|r| r * r)
                .sum();
            let ss = ss.min(coarse_ss);
            if best.is_none_or(|(b, _)| ss < b) {
                best = Some((ss, candidate));
            }
        }
        best.map(|(_, p)| p)
            .ok_or_else(|| BaselineError::Solver("empty candidate grid".into()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LAMBDA: f64 = 0.325;

    fn references() -> Vec<Vec3> {
        vec![
            Vec3::new(-1.2, -0.8, 0.0),
            Vec3::new(1.2, -0.8, 0.0),
            Vec3::new(1.2, 1.2, 0.0),
            Vec3::new(-1.2, 1.2, 0.0),
            Vec3::new(0.0, 0.3, 0.0),
        ]
    }

    fn bounds() -> Bounds2D {
        Bounds2D::new(Vec2::new(-2.0, -2.0), Vec2::new(2.0, 2.0))
    }

    fn phases_for(truth: Vec2, theta_div: f64) -> Vec<f64> {
        let k = 2.0 * TAU / LAMBDA;
        references()
            .iter()
            .map(|t| angle::wrap_tau(k * t.distance(truth.with_z(0.0)) + theta_div))
            .collect()
    }

    #[test]
    fn noise_free_exact() {
        let bp = BackPos::new(references(), LAMBDA, bounds());
        let truth = Vec2::new(0.35, -0.4);
        let est = bp.locate(&phases_for(truth, 0.0)).unwrap();
        assert!((est - truth).norm() < 5e-3, "est = {est}");
    }

    #[test]
    fn shared_diversity_term_cancels() {
        let bp = BackPos::new(references(), LAMBDA, bounds());
        let truth = Vec2::new(-0.7, 0.9);
        let est = bp.locate(&phases_for(truth, 2.345)).unwrap();
        assert!((est - truth).norm() < 5e-3, "est = {est}");
    }

    #[test]
    fn phase_noise_gives_centimeter_level_error() {
        let bp = BackPos::new(references(), LAMBDA, bounds());
        let truth = Vec2::new(0.1, 0.8);
        let mut phases = phases_for(truth, 1.0);
        // Deterministic ±0.1 rad perturbation.
        for (i, p) in phases.iter_mut().enumerate() {
            *p = angle::wrap_tau(*p + 0.1 * ((i as f64 * 2.3).sin()));
        }
        let est = bp.locate(&phases).unwrap();
        let err = (est - truth).norm();
        // BackPos reports ~dozen-cm mean error; our clean dual should do
        // centimeters to a decimeter here.
        assert!(err < 0.25, "err = {err}");
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let bp = BackPos::new(references(), LAMBDA, bounds());
        assert_eq!(
            bp.locate(&[1.0, 2.0]),
            Err(BaselineError::DimensionMismatch)
        );
    }

    #[test]
    fn too_few_references_rejected() {
        let bp = BackPos::new(references()[..3].to_vec(), LAMBDA, bounds());
        assert_eq!(
            bp.locate(&[0.0, 1.0, 2.0]),
            Err(BaselineError::TooFewReferences { got: 3, need: 4 })
        );
    }

    #[test]
    fn estimate_always_within_bounds() {
        let bp = BackPos::new(references(), LAMBDA, bounds());
        // Garbage phases: the answer is still confined to the room.
        let est = bp.locate(&[0.1, 2.0, 4.0, 1.0, 3.0]).unwrap();
        assert!(bp.bounds.contains(est));
    }
}
