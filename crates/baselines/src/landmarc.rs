//! LandMarc-style RSSI k-nearest-neighbor localization.
//!
//! LANDMARC (Ni et al., 2004) locates a target tag by comparing its RSSI
//! signature (as seen by several readers) with those of reference tags at
//! known positions, averaging the k nearest references in signal space with
//! `1/E²` weights.
//!
//! Flipped to *reader* localization: the single target reader measures the
//! RSSI of every reference tag, giving a signature vector indexed by tag.
//! Candidate reader positions (a grid over the room) get model-predicted
//! signatures; the k nearest candidates in signal space are averaged with
//! the same `1/E²` weighting. This preserves LANDMARC's essence — nearest
//! neighbors in RSSI space with inverse-square-error weights — while
//! exercising the reader-side observables our scenario actually has.

use crate::common::{BaselineError, Bounds2D};
use tagspin_geom::{Vec2, Vec3};

/// LandMarc-style localizer configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct Landmarc {
    /// Reference tag positions, meters.
    pub references: Vec<Vec3>,
    /// Number of nearest candidates to average (LANDMARC found k = 4 best).
    pub k: usize,
    /// Candidate grid bounds.
    pub bounds: Bounds2D,
    /// Candidate grid step, meters.
    pub grid_step: f64,
    /// Height assumed for candidate reader positions, meters.
    pub reader_height: f64,
}

impl Landmarc {
    /// Standard configuration: k = 4, 10 cm grid.
    pub fn new(references: Vec<Vec3>, bounds: Bounds2D) -> Self {
        Landmarc {
            references,
            k: 4,
            bounds,
            grid_step: 0.10,
            reader_height: 0.0,
        }
    }

    /// Locate the reader from its measured per-reference RSSI signature.
    ///
    /// `measured[i]` is the observed RSSI (dBm) of `references[i]`;
    /// `predict(reader_pos, tag_pos)` is the propagation model used to build
    /// candidate signatures (the harness passes the same link budget the
    /// simulator uses, minus the noise).
    ///
    /// # Errors
    ///
    /// * [`BaselineError::DimensionMismatch`] — signature length differs
    ///   from the reference count.
    /// * [`BaselineError::TooFewReferences`] — fewer references than 3 or
    ///   fewer candidates than `k`.
    pub fn locate(
        &self,
        measured: &[f64],
        predict: impl Fn(Vec3, Vec3) -> f64,
    ) -> Result<Vec2, BaselineError> {
        if measured.len() != self.references.len() {
            return Err(BaselineError::DimensionMismatch);
        }
        if self.references.len() < 3 {
            return Err(BaselineError::TooFewReferences {
                got: self.references.len(),
                need: 3,
            });
        }
        let candidates = self.bounds.grid(self.grid_step);
        if candidates.len() < self.k {
            return Err(BaselineError::TooFewReferences {
                got: candidates.len(),
                need: self.k,
            });
        }
        // Signal-space distance E for every candidate.
        let mut scored: Vec<(f64, Vec2)> = candidates
            .into_iter()
            .map(|c| {
                let cpos = c.with_z(self.reader_height);
                let e: f64 = self
                    .references
                    .iter()
                    .zip(measured)
                    .map(|(&tag, &m)| {
                        let p = predict(cpos, tag);
                        (p - m) * (p - m)
                    })
                    .sum::<f64>()
                    .sqrt();
                (e, c)
            })
            .collect();
        scored.sort_by(|a, b| a.0.total_cmp(&b.0));
        // LANDMARC weighting: wᵢ = (1/Eᵢ²) / Σ(1/Eⱼ²).
        let nearest = &scored[..self.k];
        let mut wsum = 0.0;
        let mut acc = Vec2::ZERO;
        for &(e, c) in nearest {
            let w = 1.0 / (e * e).max(1e-12);
            wsum += w;
            acc += c * w;
        }
        Ok(acc / wsum)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deterministic toy propagation model: RSSI falls off with log
    /// distance, no noise.
    fn toy_model(reader: Vec3, tag: Vec3) -> f64 {
        -40.0 - 20.0 * reader.distance(tag).max(0.05).log10()
    }

    fn references() -> Vec<Vec3> {
        // A 3×3 grid of reference tags, 1 m pitch, at z = 0.
        let mut v = Vec::new();
        for ix in -1..=1 {
            for iy in -1..=1 {
                v.push(Vec3::new(ix as f64, iy as f64, 0.0));
            }
        }
        v
    }

    fn room() -> Bounds2D {
        Bounds2D::new(Vec2::new(-2.0, -2.0), Vec2::new(2.0, 2.0))
    }

    #[test]
    fn noise_free_localization_is_grid_accurate() {
        let lm = Landmarc::new(references(), room());
        let truth = Vec3::new(0.42, -0.73, 0.0);
        let measured: Vec<f64> = lm.references.iter().map(|&t| toy_model(truth, t)).collect();
        let est = lm.locate(&measured, toy_model).unwrap();
        // LANDMARC's resolution is grid/reference-density bound: within a
        // couple of grid cells here.
        assert!((est - truth.xy()).norm() < 0.2, "est = {est}");
    }

    #[test]
    fn noisy_localization_degrades_gracefully() {
        let lm = Landmarc::new(references(), room());
        let truth = Vec3::new(-0.8, 1.1, 0.0);
        // ±2 dB deterministic perturbation.
        let measured: Vec<f64> = lm
            .references
            .iter()
            .enumerate()
            .map(|(i, &t)| toy_model(truth, t) + 2.0 * ((i as f64 * 1.7).sin()))
            .collect();
        let est = lm.locate(&measured, toy_model).unwrap();
        // Dozens of centimeters, as the paper reports for LandMarc.
        assert!((est - truth.xy()).norm() < 1.0, "est = {est}");
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let lm = Landmarc::new(references(), room());
        assert_eq!(
            lm.locate(&[1.0, 2.0], toy_model),
            Err(BaselineError::DimensionMismatch)
        );
    }

    #[test]
    fn too_few_references_rejected() {
        let lm = Landmarc::new(vec![Vec3::ZERO, Vec3::new(1.0, 0.0, 0.0)], room());
        assert_eq!(
            lm.locate(&[-50.0, -52.0], toy_model),
            Err(BaselineError::TooFewReferences { got: 2, need: 3 })
        );
    }

    #[test]
    fn k_larger_than_grid_rejected() {
        let mut lm = Landmarc::new(references(), room());
        lm.grid_step = 10.0; // single candidate
        lm.k = 4;
        let measured: Vec<f64> = lm.references.iter().map(|_| -50.0).collect();
        assert!(matches!(
            lm.locate(&measured, toy_model),
            Err(BaselineError::TooFewReferences { .. })
        ));
    }

    #[test]
    fn estimate_stays_in_bounds() {
        let lm = Landmarc::new(references(), room());
        let measured: Vec<f64> = lm.references.iter().map(|_| -45.0).collect();
        let est = lm.locate(&measured, toy_model).unwrap();
        assert!(lm.bounds.contains(est));
    }
}
