//! PinIt-style localization: spatial profiles compared by DTW.
//!
//! PinIt (Wang & Katabi, SIGCOMM 2013) localizes a tag by extracting its
//! *multipath profile* — the power received along each spatial direction,
//! computed from a synthetic aperture — and finding the reference tags
//! whose profiles best match under Dynamic Time Warping (DTW handles the
//! direction shifts a position offset induces). The target's position is
//! the weighted average of the k nearest references.
//!
//! Flipped to reader localization: the spinning tag *is* the aperture
//! (reciprocal link), so the target reader's profile is its angle spectrum
//! seen from the spinning tag; reference profiles are model-generated for
//! candidate reader positions. Matching and kNN averaging are exactly
//! PinIt's.

use crate::common::BaselineError;
use tagspin_geom::Vec2;

/// Plain dynamic time warping distance between two sequences, with the
/// standard unit-step recurrence and Euclidean local cost.
///
/// Returns `f64::INFINITY` when either input is empty.
///
/// ```
/// use tagspin_baselines::pinit::dtw;
/// assert_eq!(dtw(&[1.0, 2.0, 3.0], &[1.0, 2.0, 3.0]), 0.0);
/// assert!(dtw(&[1.0, 2.0, 3.0], &[1.0, 2.2, 3.0]) > 0.0);
/// ```
pub fn dtw(a: &[f64], b: &[f64]) -> f64 {
    if a.is_empty() || b.is_empty() {
        return f64::INFINITY;
    }
    let (n, m) = (a.len(), b.len());
    // Rolling two-row DP to keep memory at O(m).
    let mut prev = vec![f64::INFINITY; m + 1];
    let mut curr = vec![f64::INFINITY; m + 1];
    prev[0] = 0.0;
    for i in 1..=n {
        curr[0] = f64::INFINITY;
        for j in 1..=m {
            let cost = (a[i - 1] - b[j - 1]).abs();
            curr[j] = cost + prev[j].min(curr[j - 1]).min(prev[j - 1]);
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[m]
}

/// DTW with a Sakoe–Chiba band of half-width `band` (indices may only pair
/// within `|i − j| ≤ band`), cutting cost from O(n·m) to O(n·band) and
/// preventing pathological warpings.
///
/// Returns `f64::INFINITY` when either input is empty or the band is too
/// narrow to connect the corners (`band < |n − m|`).
pub fn dtw_banded(a: &[f64], b: &[f64], band: usize) -> f64 {
    if a.is_empty() || b.is_empty() {
        return f64::INFINITY;
    }
    let (n, m) = (a.len(), b.len());
    if band < n.abs_diff(m) {
        return f64::INFINITY;
    }
    let mut prev = vec![f64::INFINITY; m + 1];
    let mut curr = vec![f64::INFINITY; m + 1];
    prev[0] = 0.0;
    for i in 1..=n {
        curr.fill(f64::INFINITY);
        let lo = i.saturating_sub(band).max(1);
        let hi = (i + band).min(m);
        for j in lo..=hi {
            let cost = (a[i - 1] - b[j - 1]).abs();
            curr[j] = cost + prev[j].min(curr[j - 1]).min(prev[j - 1]);
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[m]
}

/// A reference profile: a known position and its spatial profile.
#[derive(Debug, Clone, PartialEq)]
pub struct ReferenceProfile {
    /// Known position, meters.
    pub position: Vec2,
    /// Spatial profile (power per direction bin).
    pub profile: Vec<f64>,
}

/// PinIt-style localizer.
#[derive(Debug, Clone, PartialEq)]
pub struct PinIt {
    /// Reference profiles.
    pub references: Vec<ReferenceProfile>,
    /// Neighbors averaged (PinIt uses a small k).
    pub k: usize,
    /// Sakoe–Chiba band half-width, bins (0 = unbanded full DTW).
    pub band: usize,
}

impl PinIt {
    /// Standard configuration: k = 3, band = 1/8 of the profile length is a
    /// sensible default the caller can override.
    pub fn new(references: Vec<ReferenceProfile>, k: usize) -> Self {
        PinIt {
            references,
            k,
            band: 0,
        }
    }

    /// Locate from the target's spatial profile: kNN under DTW with
    /// inverse-distance weights.
    ///
    /// # Errors
    ///
    /// [`BaselineError::TooFewReferences`] when references < k or < 3.
    pub fn locate(&self, target_profile: &[f64]) -> Result<Vec2, BaselineError> {
        let need = self.k.max(3);
        if self.references.len() < need {
            return Err(BaselineError::TooFewReferences {
                got: self.references.len(),
                need,
            });
        }
        let mut scored: Vec<(f64, Vec2)> = self
            .references
            .iter()
            .map(|r| {
                let d = if self.band == 0 {
                    dtw(target_profile, &r.profile)
                } else {
                    dtw_banded(target_profile, &r.profile, self.band)
                };
                (d, r.position)
            })
            .collect();
        scored.sort_by(|a, b| a.0.total_cmp(&b.0));
        let nearest = &scored[..self.k];
        let mut wsum = 0.0;
        let mut acc = Vec2::ZERO;
        for &(d, p) in nearest {
            let w = 1.0 / d.max(1e-9);
            wsum += w;
            acc += p * w;
        }
        Ok(acc / wsum)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dtw_identity_and_symmetry() {
        let a = [0.0, 1.0, 2.0, 1.0, 0.0];
        let b = [0.0, 1.0, 3.0, 1.0, 0.0];
        assert_eq!(dtw(&a, &a), 0.0);
        assert_eq!(dtw(&a, &b), dtw(&b, &a));
        assert_eq!(dtw(&a, &b), 1.0);
    }

    #[test]
    fn dtw_absorbs_time_shift() {
        // A shifted copy of a peaky sequence: DTW stays small, Euclidean
        // (lockstep) distance would be large.
        let a: Vec<f64> = (0..50)
            .map(|i| (-((i as f64 - 20.0) / 3.0).powi(2)).exp())
            .collect();
        let b: Vec<f64> = (0..50)
            .map(|i| (-((i as f64 - 24.0) / 3.0).powi(2)).exp())
            .collect();
        let lockstep: f64 = a.iter().zip(&b).map(|(x, y)| (x - y).abs()).sum();
        assert!(
            dtw(&a, &b) < 0.3 * lockstep,
            "dtw = {}, lockstep = {lockstep}",
            dtw(&a, &b)
        );
    }

    #[test]
    fn dtw_empty_is_infinite() {
        assert_eq!(dtw(&[], &[1.0]), f64::INFINITY);
        assert_eq!(dtw(&[1.0], &[]), f64::INFINITY);
    }

    #[test]
    fn banded_matches_full_for_wide_band() {
        let a: Vec<f64> = (0..30).map(|i| (i as f64 * 0.3).sin()).collect();
        let b: Vec<f64> = (0..30).map(|i| (i as f64 * 0.3 + 0.4).sin()).collect();
        assert!((dtw_banded(&a, &b, 30) - dtw(&a, &b)).abs() < 1e-12);
    }

    #[test]
    fn banded_too_narrow_is_infinite() {
        assert_eq!(dtw_banded(&[1.0; 10], &[1.0; 20], 5), f64::INFINITY);
    }

    /// Synthetic profile: a Gaussian bump whose center encodes bearing and
    /// whose amplitude encodes range (otherwise two references on the same
    /// ray from the aperture would be indistinguishable).
    fn profile_for(pos: Vec2, bins: usize) -> Vec<f64> {
        let bearing = pos.bearing();
        let amp = 1.0 / (1.0 + pos.norm());
        (0..bins)
            .map(|i| {
                let phi = i as f64 * std::f64::consts::TAU / bins as f64;
                let mut d = (phi - bearing).abs();
                if d > std::f64::consts::PI {
                    d = std::f64::consts::TAU - d;
                }
                amp * (-(d / 0.3).powi(2)).exp()
            })
            .collect()
    }

    fn reference_grid(bins: usize) -> Vec<ReferenceProfile> {
        let mut refs = Vec::new();
        for ix in -2..=2 {
            for iy in 1..=3 {
                let p = Vec2::new(ix as f64 * 0.8, iy as f64 * 0.8);
                refs.push(ReferenceProfile {
                    position: p,
                    profile: profile_for(p, bins),
                });
            }
        }
        refs
    }

    #[test]
    fn knn_recovers_neighborhood() {
        let refs = reference_grid(90);
        let pinit = PinIt::new(refs, 3);
        let truth = Vec2::new(0.5, 1.4);
        let est = pinit.locate(&profile_for(truth, 90)).unwrap();
        // Bearing-only profiles give coarse (several-dm) fixes — that's the
        // nature of the method when flipped to a single aperture.
        assert!((est - truth).norm() < 0.9, "est = {est}");
    }

    #[test]
    fn exact_reference_hit_is_exact() {
        let refs = reference_grid(90);
        let target = refs[7].clone();
        let pinit = PinIt::new(refs, 1);
        let est = pinit.locate(&target.profile).unwrap();
        assert!((est - target.position).norm() < 1e-9);
    }

    #[test]
    fn too_few_references_rejected() {
        let pinit = PinIt::new(reference_grid(30)[..2].to_vec(), 3);
        assert!(matches!(
            pinit.locate(&[1.0; 30]),
            Err(BaselineError::TooFewReferences { .. })
        ));
    }
}
