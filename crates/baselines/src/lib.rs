//! Baseline localization systems the paper compares against (Section VII-A).
//!
//! All four baselines locate *tags* given known reader positions; the paper
//! flips the problem, so each is reimplemented here in its natural dual
//! form for reader localization (the adaptations are documented per module
//! and in DESIGN.md §4):
//!
//! * [`landmarc`] — RSSI k-nearest-neighbor fingerprinting (Ni et al.).
//! * [`antloc`] — variable RF-attenuation threshold ranging +
//!   trilateration (Luo et al., the only prior *antenna*-localization
//!   system).
//! * [`pinit`] — synthetic-aperture spatial profiles compared by dynamic
//!   time warping (Wang & Katabi).
//! * [`backpos`] — hyperbolic positioning from backscatter phase
//!   differences (Liu et al.).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod antloc;
pub mod backpos;
pub mod common;
pub mod landmarc;
pub mod pinit;

pub use antloc::AntLoc;
pub use backpos::BackPos;
pub use common::{BaselineError, Bounds2D};
pub use landmarc::Landmarc;
pub use pinit::{dtw, PinIt, ReferenceProfile};
