//! Shared machinery for the baseline localizers.

use std::fmt;
use tagspin_dsp::lstsq::{self, Matrix};
use tagspin_geom::Vec2;

/// Errors common to the baseline systems.
#[derive(Debug, Clone, PartialEq)]
pub enum BaselineError {
    /// Not enough references/anchors for the method.
    TooFewReferences {
        /// Provided count.
        got: usize,
        /// Minimum required.
        need: usize,
    },
    /// Input slices disagree in length.
    DimensionMismatch,
    /// The solver failed to converge or the system was degenerate.
    Solver(String),
}

impl fmt::Display for BaselineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaselineError::TooFewReferences { got, need } => {
                write!(f, "too few references: got {got}, need {need}")
            }
            BaselineError::DimensionMismatch => write!(f, "input length mismatch"),
            BaselineError::Solver(s) => write!(f, "solver failed: {s}"),
        }
    }
}

impl std::error::Error for BaselineError {}

/// A rectangular search region in the horizontal plane.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bounds2D {
    /// Minimum corner, meters.
    pub min: Vec2,
    /// Maximum corner, meters.
    pub max: Vec2,
}

impl Bounds2D {
    /// Create bounds.
    ///
    /// # Panics
    ///
    /// Panics when any max component is below the matching min.
    pub fn new(min: Vec2, max: Vec2) -> Self {
        assert!(max.x >= min.x && max.y >= min.y, "bounds must be ordered");
        Bounds2D { min, max }
    }

    /// The paper's office room, centered on the origin: 6 m × 9 m.
    pub fn paper_room() -> Self {
        Bounds2D::new(Vec2::new(-3.0, -4.5), Vec2::new(3.0, 4.5))
    }

    /// Uniform grid points with the given `step` (meters), inclusive of the
    /// min corner.
    pub fn grid(&self, step: f64) -> Vec<Vec2> {
        assert!(step > 0.0, "grid step must be positive");
        let nx = ((self.max.x - self.min.x) / step).floor() as usize + 1;
        let ny = ((self.max.y - self.min.y) / step).floor() as usize + 1;
        let mut pts = Vec::with_capacity(nx * ny);
        for iy in 0..ny {
            for ix in 0..nx {
                pts.push(Vec2::new(
                    self.min.x + ix as f64 * step,
                    self.min.y + iy as f64 * step,
                ));
            }
        }
        pts
    }

    /// True when the point lies inside (inclusive).
    pub fn contains(&self, p: Vec2) -> bool {
        (self.min.x..=self.max.x).contains(&p.x) && (self.min.y..=self.max.y).contains(&p.y)
    }

    /// Clamp a point into the bounds.
    pub fn clamp(&self, p: Vec2) -> Vec2 {
        Vec2::new(
            p.x.clamp(self.min.x, self.max.x),
            p.y.clamp(self.min.y, self.max.y),
        )
    }
}

/// Generic 2D Gauss-Newton with numeric Jacobian.
///
/// Minimizes `Σ residuals(p)ᵢ²` starting from `init`. Used by the AntLoc
/// trilateration and the BackPos hyperbolic refinement.
///
/// # Errors
///
/// [`BaselineError::Solver`] when the normal system degenerates; otherwise
/// returns the best iterate after at most `max_iter` steps.
pub fn gauss_newton_2d(
    residuals: impl Fn(Vec2) -> Vec<f64>,
    init: Vec2,
    max_iter: usize,
) -> Result<Vec2, BaselineError> {
    let mut p = init;
    let eps = 1e-6;
    for _ in 0..max_iter {
        let r0 = residuals(p);
        let m = r0.len();
        if m < 2 {
            return Err(BaselineError::Solver("fewer than 2 residuals".into()));
        }
        let rx = residuals(p + Vec2::new(eps, 0.0));
        let ry = residuals(p + Vec2::new(0.0, eps));
        if rx.len() != m || ry.len() != m {
            return Err(BaselineError::Solver("residual count changed".into()));
        }
        let jac = Matrix::from_fn(m, 2, |i, j| {
            if j == 0 {
                (rx[i] - r0[i]) / eps
            } else {
                (ry[i] - r0[i]) / eps
            }
        });
        let neg_r: Vec<f64> = r0.iter().map(|v| -v).collect();
        let step =
            lstsq::solve(&jac, &neg_r).map_err(|e| BaselineError::Solver(format!("lstsq: {e}")))?;
        let delta = Vec2::new(step[0], step[1]);
        p += delta;
        if delta.norm() < 1e-9 {
            break;
        }
    }
    if p.is_finite() {
        Ok(p)
    } else {
        Err(BaselineError::Solver("diverged to non-finite".into()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_grid_covers_region() {
        let b = Bounds2D::new(Vec2::new(0.0, 0.0), Vec2::new(1.0, 2.0));
        let g = b.grid(0.5);
        assert_eq!(g.len(), 3 * 5);
        assert!(g.iter().all(|&p| b.contains(p)));
        assert_eq!(g[0], Vec2::new(0.0, 0.0));
        assert_eq!(*g.last().unwrap(), Vec2::new(1.0, 2.0));
    }

    #[test]
    fn bounds_clamp() {
        let b = Bounds2D::paper_room();
        assert_eq!(b.clamp(Vec2::new(10.0, -10.0)), Vec2::new(3.0, -4.5));
        let inside = Vec2::new(0.5, 0.5);
        assert_eq!(b.clamp(inside), inside);
        assert!(b.contains(inside));
        assert!(!b.contains(Vec2::new(4.0, 0.0)));
    }

    #[test]
    #[should_panic(expected = "ordered")]
    fn unordered_bounds_panic() {
        let _ = Bounds2D::new(Vec2::new(1.0, 0.0), Vec2::new(0.0, 1.0));
    }

    #[test]
    fn gauss_newton_solves_trilateration() {
        // True point (1, 2); three anchors with exact ranges.
        let truth = Vec2::new(1.0, 2.0);
        let anchors = [
            Vec2::new(0.0, 0.0),
            Vec2::new(3.0, 0.0),
            Vec2::new(0.0, 4.0),
        ];
        let ranges: Vec<f64> = anchors.iter().map(|a| a.distance(truth)).collect();
        let res = |p: Vec2| -> Vec<f64> {
            anchors
                .iter()
                .zip(&ranges)
                .map(|(a, r)| a.distance(p) - r)
                .collect()
        };
        let sol = gauss_newton_2d(res, Vec2::new(0.5, 0.5), 50).unwrap();
        assert!((sol - truth).norm() < 1e-6, "{sol}");
    }

    #[test]
    fn gauss_newton_rejects_underdetermined() {
        let res = |_p: Vec2| vec![1.0];
        assert!(matches!(
            gauss_newton_2d(res, Vec2::ZERO, 10),
            Err(BaselineError::Solver(_))
        ));
    }

    #[test]
    fn error_display_nonempty() {
        for e in [
            BaselineError::TooFewReferences { got: 1, need: 3 },
            BaselineError::DimensionMismatch,
            BaselineError::Solver("x".into()),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
