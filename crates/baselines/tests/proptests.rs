//! Property-based tests for the baseline localizers.

use proptest::prelude::*;
use tagspin_baselines::pinit::{dtw, dtw_banded};
use tagspin_baselines::{AntLoc, Bounds2D};
use tagspin_geom::{Vec2, Vec3};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// DTW is a symmetric, non-negative dissimilarity with identity zero.
    #[test]
    fn dtw_dissimilarity_axioms(
        a in proptest::collection::vec(-5.0f64..5.0, 1..40),
        b in proptest::collection::vec(-5.0f64..5.0, 1..40),
    ) {
        let dab = dtw(&a, &b);
        prop_assert!(dab >= 0.0);
        prop_assert!((dab - dtw(&b, &a)).abs() < 1e-9);
        prop_assert_eq!(dtw(&a, &a), 0.0);
    }

    /// DTW never exceeds the lockstep (equal-length) distance and banded
    /// DTW never undercuts the unbanded optimum.
    #[test]
    fn dtw_bounds(
        a in proptest::collection::vec(-5.0f64..5.0, 2..30),
        shift in -1.0f64..1.0,
        band in 1usize..8,
    ) {
        let b: Vec<f64> = a.iter().map(|x| x + shift).collect();
        let lockstep: f64 = a.iter().zip(&b).map(|(x, y)| (x - y).abs()).sum();
        let full = dtw(&a, &b);
        prop_assert!(full <= lockstep + 1e-9);
        let banded = dtw_banded(&a, &b, band);
        prop_assert!(banded >= full - 1e-9);
    }

    /// AntLoc trilateration with exact ranges recovers the position for
    /// any target inside the anchor hull.
    #[test]
    fn antloc_exact_ranges(tx in -0.9f64..0.9, ty in -0.6f64..1.4) {
        let refs = vec![
            Vec3::new(-1.5, -1.0, 0.0),
            Vec3::new(1.5, -1.0, 0.0),
            Vec3::new(0.0, 1.8, 0.0),
            Vec3::new(-1.0, 1.2, 0.0),
        ];
        let truth = Vec2::new(tx, ty);
        let ranges: Vec<f64> = refs.iter().map(|r| r.distance(truth.with_z(0.0))).collect();
        let al = AntLoc::new(refs, 30.0, 2.0);
        let est = al.locate_with_ranges(&ranges).expect("solves");
        prop_assert!((est - truth).norm() < 1e-4, "est {est} truth {truth}");
    }

    /// Bounds2D::grid points all lie inside; clamp is idempotent and maps
    /// into the bounds.
    #[test]
    fn bounds_contract(px in -20.0f64..20.0, py in -20.0f64..20.0, step in 0.1f64..2.0) {
        let b = Bounds2D::paper_room();
        for p in b.grid(step) {
            prop_assert!(b.contains(p));
        }
        let c = b.clamp(Vec2::new(px, py));
        prop_assert!(b.contains(c));
        prop_assert_eq!(b.clamp(c), c);
    }
}
