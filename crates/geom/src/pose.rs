//! Poses: position plus facing, for readers and antennas.

use crate::{angle, Vec3};
use std::fmt;

/// A rigid pose in 3D: a position and a facing azimuth.
///
/// Reader antennas are directional (the paper uses Yeon circular-polarized
/// patch antennas); the facing azimuth feeds the antenna gain pattern in the
/// RF substrate. Elevation facing is not modeled — the paper mounts antennas
/// facing the surveillance region horizontally.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Pose {
    /// Position in meters.
    pub position: Vec3,
    /// Facing azimuth (boresight direction) in `[0, 2π)`.
    pub facing: f64,
}

impl Pose {
    /// Create a pose, wrapping the facing angle.
    #[inline]
    pub fn new(position: Vec3, facing: f64) -> Self {
        Pose {
            position,
            facing: angle::wrap_tau(facing),
        }
    }

    /// Pose at a position, facing toward a target point.
    ///
    /// ```
    /// use tagspin_geom::{Pose, Vec3};
    /// let p = Pose::facing_toward(Vec3::new(1.0, 0.0, 0.0), Vec3::ZERO);
    /// assert!((p.facing - std::f64::consts::PI).abs() < 1e-12);
    /// ```
    #[inline]
    pub fn facing_toward(position: Vec3, target: Vec3) -> Self {
        Pose::new(position, (target - position).azimuth())
    }

    /// Off-boresight azimuth of a target as seen from this pose, in
    /// `(-π, π]`. Zero means the target sits exactly on boresight.
    #[inline]
    pub fn off_boresight(&self, target: Vec3) -> f64 {
        angle::diff((target - self.position).azimuth(), self.facing)
    }
}

impl fmt::Display for Pose {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} facing {:.1}°",
            self.position,
            self.facing.to_degrees()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI, TAU};

    #[test]
    fn facing_is_wrapped() {
        let p = Pose::new(Vec3::ZERO, TAU + 1.0);
        assert!((p.facing - 1.0).abs() < 1e-12);
    }

    #[test]
    fn facing_toward_cardinal() {
        let p = Pose::facing_toward(Vec3::ZERO, Vec3::new(0.0, 5.0, 2.0));
        assert!((p.facing - FRAC_PI_2).abs() < 1e-12);
    }

    #[test]
    fn off_boresight_signs() {
        let p = Pose::new(Vec3::ZERO, 0.0);
        assert!(p.off_boresight(Vec3::new(1.0, 0.1, 0.0)) > 0.0);
        assert!(p.off_boresight(Vec3::new(1.0, -0.1, 0.0)) < 0.0);
        assert_eq!(p.off_boresight(Vec3::new(3.0, 0.0, 0.0)), 0.0);
        assert!((p.off_boresight(Vec3::new(-1.0, 0.0, 0.0)).abs() - PI).abs() < 1e-12);
    }
}
