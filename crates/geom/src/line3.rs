//! 3D lines and multi-line least-squares intersection.
//!
//! In the 3D scenario each spinning tag yields a spatial direction `(φ, γ)`;
//! the resulting rays almost never intersect exactly (noise, model error), so
//! the reader fix is the point minimizing the sum of squared distances to all
//! rays — the classic "nearest point to a set of lines" problem, solved here
//! in closed form via a 3×3 normal system.

use crate::line2::IntersectLinesError;
use crate::vec3::Direction3;
use crate::Vec3;
use std::fmt;

/// A directed line in 3D space.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Line3 {
    /// A point on the line.
    pub origin: Vec3,
    /// Unit direction.
    pub direction: Vec3,
}

impl Line3 {
    /// Construct from an origin and a spherical direction.
    #[inline]
    pub fn from_direction(origin: Vec3, dir: Direction3) -> Self {
        Line3 {
            origin,
            direction: dir.unit(),
        }
    }

    /// Construct from two distinct points; `None` if they coincide.
    #[inline]
    pub fn through(a: Vec3, b: Vec3) -> Option<Self> {
        (b - a).normalized().map(|direction| Line3 {
            origin: a,
            direction,
        })
    }

    /// Point at ray parameter `t` meters.
    #[inline]
    pub fn point_at(&self, t: f64) -> Vec3 {
        self.origin + self.direction * t
    }

    /// Perpendicular distance from a point to the line.
    #[inline]
    pub fn distance(&self, p: Vec3) -> f64 {
        (p - self.origin).cross(self.direction).norm()
    }

    /// Ray parameter of the orthogonal projection of `p`.
    #[inline]
    pub fn project(&self, p: Vec3) -> f64 {
        self.direction.dot(p - self.origin)
    }
}

impl fmt::Display for Line3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ray {} -> {}", self.origin, self.direction)
    }
}

/// Solve a symmetric 3×3 linear system `A x = b` by Gaussian elimination
/// with partial pivoting. Returns `None` when (numerically) singular.
fn solve3(mut a: [[f64; 3]; 3], mut b: [f64; 3]) -> Option<Vec3> {
    for col in 0..3 {
        // Partial pivot.
        let mut pivot = col;
        for row in (col + 1)..3 {
            if a[row][col].abs() > a[pivot][col].abs() {
                pivot = row;
            }
        }
        if a[pivot][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        for row in (col + 1)..3 {
            let f = a[row][col] / a[col][col];
            let (above, below) = a.split_at_mut(row);
            for (x, &pivot_x) in below[0][col..].iter_mut().zip(&above[col][col..]) {
                *x -= f * pivot_x;
            }
            b[row] -= f * b[col];
        }
    }
    let mut x = [0.0; 3];
    for col in (0..3).rev() {
        let mut s = b[col];
        for (k, &xk) in x.iter().enumerate().take(3).skip(col + 1) {
            s -= a[col][k] * xk;
        }
        x[col] = s / a[col][col];
    }
    Some(Vec3::new(x[0], x[1], x[2]))
}

/// Point minimizing the (optionally weighted) sum of squared perpendicular
/// distances to the given lines.
///
/// For each line with unit direction `d`, the distance-squared Hessian is the
/// projector `P = I − d·dᵀ`; the optimum solves `(Σ wᵢ Pᵢ) x = Σ wᵢ Pᵢ oᵢ`.
///
/// # Errors
///
/// * [`IntersectLinesError::TooFewLines`] — fewer than two lines.
/// * [`IntersectLinesError::Singular`] — the normal system is singular
///   (all lines parallel; the optimum is a line, not a point).
///
/// # Panics
///
/// Panics when `weights` is `Some` with a length different from `lines`.
pub fn nearest_point_to_lines(
    lines: &[Line3],
    weights: Option<&[f64]>,
) -> Result<Vec3, IntersectLinesError> {
    if lines.len() < 2 {
        return Err(IntersectLinesError::TooFewLines);
    }
    if let Some(w) = weights {
        assert_eq!(
            w.len(),
            lines.len(),
            "weights length must match lines length"
        );
    }
    let mut a = [[0.0f64; 3]; 3];
    let mut b = [0.0f64; 3];
    for (i, line) in lines.iter().enumerate() {
        let w = weights.map_or(1.0, |ws| ws[i]);
        let d = line.direction;
        let o = line.origin;
        let dv = [d.x, d.y, d.z];
        let ov = [o.x, o.y, o.z];
        for r in 0..3 {
            for c in 0..3 {
                let p = if r == c { 1.0 } else { 0.0 } - dv[r] * dv[c];
                a[r][c] += w * p;
                b[r] += w * p * ov[c];
            }
        }
    }
    solve3(a, b).ok_or(IntersectLinesError::Singular)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_intersection_recovered() {
        let target = Vec3::new(1.0, 2.0, 3.0);
        let origins = [
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(5.0, 0.0, 0.0),
            Vec3::new(0.0, 5.0, 1.0),
        ];
        let lines: Vec<Line3> = origins
            .iter()
            .map(|&o| Line3::through(o, target).unwrap())
            .collect();
        let p = nearest_point_to_lines(&lines, None).unwrap();
        assert!((p - target).norm() < 1e-9, "got {p}");
    }

    #[test]
    fn skew_lines_midpoint() {
        // Two skew lines: x-axis and the line (0,1,t). Closest points are
        // (0,0,0) and (0,1,0); optimum is the midpoint (0, 0.5, 0).
        let l1 = Line3::through(Vec3::ZERO, Vec3::new(1.0, 0.0, 0.0)).unwrap();
        let l2 = Line3::through(Vec3::new(0.0, 1.0, 0.0), Vec3::new(0.0, 1.0, 1.0)).unwrap();
        let p = nearest_point_to_lines(&[l1, l2], None).unwrap();
        assert!((p - Vec3::new(0.0, 0.5, 0.0)).norm() < 1e-9, "got {p}");
    }

    #[test]
    fn weights_bias_toward_heavier_line() {
        let l1 = Line3::through(Vec3::ZERO, Vec3::new(1.0, 0.0, 0.0)).unwrap();
        let l2 = Line3::through(Vec3::new(0.0, 1.0, 0.0), Vec3::new(0.0, 1.0, 1.0)).unwrap();
        let p = nearest_point_to_lines(&[l1, l2], Some(&[9.0, 1.0])).unwrap();
        // 90% weight on the x-axis → solution pulled to y = 0.1.
        assert!((p.y - 0.1).abs() < 1e-9, "got {p}");
    }

    #[test]
    fn parallel_lines_singular() {
        let d = Vec3::new(0.0, 0.0, 1.0);
        let l1 = Line3 {
            origin: Vec3::ZERO,
            direction: d,
        };
        let l2 = Line3 {
            origin: Vec3::new(1.0, 0.0, 0.0),
            direction: d,
        };
        assert_eq!(
            nearest_point_to_lines(&[l1, l2], None),
            Err(IntersectLinesError::Singular)
        );
    }

    #[test]
    fn too_few_lines() {
        let l = Line3::through(Vec3::ZERO, Vec3::new(1.0, 0.0, 0.0)).unwrap();
        assert_eq!(
            nearest_point_to_lines(&[l], None),
            Err(IntersectLinesError::TooFewLines)
        );
    }

    #[test]
    fn distance_and_projection() {
        let l = Line3::through(Vec3::ZERO, Vec3::new(1.0, 0.0, 0.0)).unwrap();
        assert!((l.distance(Vec3::new(5.0, 3.0, 4.0)) - 5.0).abs() < 1e-12);
        assert_eq!(l.project(Vec3::new(5.0, 3.0, 4.0)), 5.0);
        assert_eq!(l.point_at(2.0), Vec3::new(2.0, 0.0, 0.0));
    }

    #[test]
    fn from_direction_matches_unit() {
        let d = Direction3::new(1.0, 0.3);
        let l = Line3::from_direction(Vec3::ZERO, d);
        assert!((l.direction - d.unit()).norm() < 1e-12);
    }

    #[test]
    fn solve3_regular_system() {
        // A = diag(2, 3, 4), b = (2, 6, 12) → x = (1, 2, 3).
        let a = [[2.0, 0.0, 0.0], [0.0, 3.0, 0.0], [0.0, 0.0, 4.0]];
        let x = solve3(a, [2.0, 6.0, 12.0]).unwrap();
        assert!((x - Vec3::new(1.0, 2.0, 3.0)).norm() < 1e-12);
    }

    #[test]
    fn solve3_singular_none() {
        let a = [[1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [1.0, 1.0, 0.0]];
        assert!(solve3(a, [1.0, 1.0, 2.0]).is_none());
    }
}
