//! Geometry primitives for the Tagspin reproduction.
//!
//! This crate is the lowest layer of the workspace: small, dependency-free
//! vector/angle types used by every other crate. It deliberately avoids
//! external linear-algebra crates — the project owns its small numeric
//! substrates because the Rust DSP/linalg ecosystem needed here is thin.
//!
//! # Conventions
//!
//! * All distances are **meters**, all angles **radians**, unless a function
//!   name says otherwise (`_cm`, `_deg`).
//! * Azimuth angles follow the paper: measured counter-clockwise from the
//!   +x axis in the horizontal (x–y) plane, wrapped to `[0, 2π)`.
//! * Polar angles `γ` (3D elevation above the horizontal plane) live in
//!   `[-π/2, π/2]` as in the paper's Section V-B.
//!
//! # Example
//!
//! ```
//! use tagspin_geom::{Vec2, angle};
//!
//! let tag = Vec2::new(1.0, 0.0);
//! let reader = Vec2::new(-0.8, 0.0);
//! let bearing = (reader - tag).bearing();
//! assert!((bearing - std::f64::consts::PI).abs() < 1e-12);
//! assert_eq!(angle::to_degrees(bearing).round(), 180.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod angle;
pub mod circular;
pub mod line2;
pub mod line3;
pub mod pose;
pub mod vec2;
pub mod vec3;

pub use line2::Line2;
pub use line3::Line3;
pub use pose::Pose;
pub use vec2::Vec2;
pub use vec3::Vec3;

/// Convert centimeters to meters.
///
/// The paper reports every distance in centimeters; the library works in
/// meters. Keeping the conversion explicit avoids silent unit bugs.
///
/// ```
/// assert_eq!(tagspin_geom::cm(150.0), 1.5);
/// ```
#[inline]
pub fn cm(centimeters: f64) -> f64 {
    centimeters / 100.0
}

/// Convert meters to centimeters (for report printing).
///
/// ```
/// assert_eq!(tagspin_geom::to_cm(1.5), 150.0);
/// ```
#[inline]
pub fn to_cm(meters: f64) -> f64 {
    meters * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cm_roundtrip() {
        assert_eq!(to_cm(cm(73.0)), 73.0);
        assert_eq!(cm(0.0), 0.0);
        assert_eq!(cm(-50.0), -0.5);
    }
}
