//! Angle wrapping and conversion utilities.
//!
//! Phase values reported by an RFID reader are defined modulo `2π`; bearing
//! angles in the paper live in `[0, 2π)`; phase *differences* are most useful
//! wrapped to `(-π, π]`. This module provides the three canonical wrap
//! operations plus degree conversions, all total (no panics, NaN passes
//! through as NaN).

use std::f64::consts::{PI, TAU};

/// Wrap an angle to the half-open interval `[0, 2π)`.
///
/// ```
/// use tagspin_geom::angle::wrap_tau;
/// use std::f64::consts::{PI, TAU};
/// assert!((wrap_tau(-PI) - PI).abs() < 1e-12);
/// assert_eq!(wrap_tau(0.0), 0.0);
/// assert!(wrap_tau(TAU) < 1e-12);
/// ```
#[inline]
pub fn wrap_tau(theta: f64) -> f64 {
    // The one blessed raw wrap: every other call site routes through here.
    #[allow(clippy::disallowed_methods)]
    let w = theta.rem_euclid(TAU);
    // rem_euclid can return TAU itself for inputs like -1e-17 due to rounding.
    if w >= TAU {
        0.0
    } else {
        w
    }
}

/// Wrap an angle to the half-open interval `(-π, π]`.
///
/// This is the canonical representation for phase *differences*: the wrapped
/// value is the signed difference of smallest magnitude.
///
/// ```
/// use tagspin_geom::angle::wrap_pi;
/// use std::f64::consts::PI;
/// assert!((wrap_pi(3.0 * PI) - PI).abs() < 1e-12);
/// assert!((wrap_pi(-PI) - PI).abs() < 1e-12); // -π maps to +π
/// assert_eq!(wrap_pi(0.3), 0.3);
/// ```
#[inline]
pub fn wrap_pi(theta: f64) -> f64 {
    let w = wrap_tau(theta);
    if w > PI {
        w - TAU
    } else {
        w
    }
}

/// Signed smallest difference `a - b`, wrapped to `(-π, π]`.
///
/// ```
/// use tagspin_geom::angle::diff;
/// use std::f64::consts::PI;
/// assert!((diff(0.1, 2.0 * PI - 0.1) - 0.2).abs() < 1e-12);
/// ```
#[inline]
pub fn diff(a: f64, b: f64) -> f64 {
    wrap_pi(a - b)
}

/// Absolute smallest separation between two angles, in `[0, π]`.
///
/// ```
/// use tagspin_geom::angle::separation;
/// use std::f64::consts::PI;
/// assert!((separation(0.0, PI) - PI).abs() < 1e-12);
/// assert!((separation(0.1, 6.2) - (0.1 + (std::f64::consts::TAU - 6.2))).abs() < 1e-9);
/// ```
#[inline]
pub fn separation(a: f64, b: f64) -> f64 {
    diff(a, b).abs()
}

/// Convert degrees to radians.
///
/// ```
/// assert!((tagspin_geom::angle::from_degrees(180.0) - std::f64::consts::PI).abs() < 1e-12);
/// ```
#[inline]
pub fn from_degrees(deg: f64) -> f64 {
    deg.to_radians()
}

/// Convert radians to degrees.
///
/// ```
/// assert!((tagspin_geom::angle::to_degrees(std::f64::consts::PI) - 180.0).abs() < 1e-12);
/// ```
#[inline]
pub fn to_degrees(rad: f64) -> f64 {
    rad.to_degrees()
}

/// Linear interpolation between two angles along the shortest arc.
///
/// `t = 0` yields `a` (wrapped), `t = 1` yields `b` (wrapped). Useful for
/// refining spectrum peaks between grid points.
///
/// ```
/// use tagspin_geom::angle::{lerp, wrap_tau};
/// use std::f64::consts::PI;
/// let mid = lerp(0.1, 2.0 * PI - 0.1, 0.5);
/// assert!(wrap_tau(mid) < 1e-12 || (wrap_tau(mid) - 2.0 * PI).abs() < 1e-12);
/// ```
#[inline]
pub fn lerp(a: f64, b: f64, t: f64) -> f64 {
    wrap_tau(a + diff(b, a) * t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wrap_tau_range() {
        for &x in &[-10.0, -TAU, -PI, -0.0, 0.0, 1.0, PI, TAU, 10.0, 1e6, -1e6] {
            let w = wrap_tau(x);
            assert!((0.0..TAU).contains(&w), "wrap_tau({x}) = {w} out of range");
        }
    }

    #[test]
    fn wrap_pi_range() {
        for &x in &[-10.0, -TAU, -PI, 0.0, 1.0, PI, TAU, 10.0, 123.456] {
            let w = wrap_pi(x);
            assert!(
                w > -PI - 1e-15 && w <= PI + 1e-15,
                "wrap_pi({x}) = {w} out of range"
            );
        }
    }

    #[test]
    fn wrap_is_idempotent() {
        for i in 0..100 {
            let x = (i as f64) * 0.37 - 18.0;
            assert!((wrap_tau(wrap_tau(x)) - wrap_tau(x)).abs() < 1e-12);
            assert!((wrap_pi(wrap_pi(x)) - wrap_pi(x)).abs() < 1e-12);
        }
    }

    #[test]
    fn diff_antisymmetric_mod_tau() {
        let a = 1.2;
        let b = 5.9;
        assert!((diff(a, b) + diff(b, a)).abs() < 1e-12);
    }

    #[test]
    fn nan_passes_through() {
        assert!(wrap_tau(f64::NAN).is_nan());
        assert!(wrap_pi(f64::NAN).is_nan());
    }

    #[test]
    fn lerp_endpoints() {
        let a = 0.3;
        let b = 5.7;
        assert!(separation(lerp(a, b, 0.0), a) < 1e-12);
        assert!(separation(lerp(a, b, 1.0), b) < 1e-12);
    }

    #[test]
    fn degrees_roundtrip() {
        for d in [-720.0, -90.0, 0.0, 45.0, 360.0] {
            assert!((to_degrees(from_degrees(d)) - d).abs() < 1e-9);
        }
    }
}
