//! Two-dimensional vectors / points in the horizontal plane.

use crate::angle;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A point or displacement in the horizontal (x–y) plane, in meters.
///
/// The paper's 2D experiments (Section V-A) place spinning-tag disk centers
/// and the reader on a shared desktop plane; `Vec2` models positions on that
/// plane.
///
/// ```
/// use tagspin_geom::Vec2;
/// let o1 = Vec2::new(-0.3, 0.0);
/// let o2 = Vec2::new(0.3, 0.0);
/// assert_eq!(o1.distance(o2), 0.6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Vec2 {
    /// x-coordinate in meters.
    pub x: f64,
    /// y-coordinate in meters.
    pub y: f64,
}

impl Vec2 {
    /// The origin / zero vector.
    pub const ZERO: Vec2 = Vec2 { x: 0.0, y: 0.0 };

    /// Create a vector from components in meters.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Vec2 { x, y }
    }

    /// Create a vector from components in centimeters (paper units).
    ///
    /// ```
    /// use tagspin_geom::Vec2;
    /// assert_eq!(Vec2::from_cm(100.0, -80.0), Vec2::new(1.0, -0.8));
    /// ```
    #[inline]
    pub fn from_cm(x_cm: f64, y_cm: f64) -> Self {
        Vec2::new(x_cm / 100.0, y_cm / 100.0)
    }

    /// Unit vector at the given bearing (counter-clockwise from +x).
    ///
    /// ```
    /// use tagspin_geom::Vec2;
    /// let v = Vec2::from_bearing(std::f64::consts::FRAC_PI_2);
    /// assert!(v.x.abs() < 1e-12 && (v.y - 1.0).abs() < 1e-12);
    /// ```
    #[inline]
    pub fn from_bearing(bearing: f64) -> Self {
        Vec2::new(bearing.cos(), bearing.sin())
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, other: Vec2) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// The z-component of the 3D cross product (signed parallelogram area).
    ///
    /// Positive when `other` is counter-clockwise from `self`.
    #[inline]
    pub fn cross(self, other: Vec2) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// Euclidean norm in meters.
    #[inline]
    pub fn norm(self) -> f64 {
        self.x.hypot(self.y)
    }

    /// Squared norm (cheaper than [`Vec2::norm`] when comparing distances).
    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.dot(self)
    }

    /// Euclidean distance to another point in meters.
    #[inline]
    pub fn distance(self, other: Vec2) -> f64 {
        (self - other).norm()
    }

    /// Bearing of this displacement, wrapped to `[0, 2π)`.
    ///
    /// Returns `0.0` for the zero vector.
    #[inline]
    pub fn bearing(self) -> f64 {
        // Bit-exact zero-vector sentinel; any nonzero magnitude takes atan2.
        // lint:allow(float-eq) exact 0.0 check is the sentinel contract
        if self.x == 0.0 && self.y == 0.0 {
            0.0
        } else {
            angle::wrap_tau(self.y.atan2(self.x))
        }
    }

    /// Unit vector in the same direction, or `None` for (near-)zero vectors.
    #[inline]
    pub fn normalized(self) -> Option<Vec2> {
        let n = self.norm();
        if n < 1e-300 {
            None
        } else {
            Some(self / n)
        }
    }

    /// Perpendicular vector (rotated +90°).
    #[inline]
    pub fn perp(self) -> Vec2 {
        Vec2::new(-self.y, self.x)
    }

    /// Rotate counter-clockwise by `theta` radians.
    ///
    /// ```
    /// use tagspin_geom::Vec2;
    /// let r = Vec2::new(1.0, 0.0).rotated(std::f64::consts::PI);
    /// assert!((r.x + 1.0).abs() < 1e-12 && r.y.abs() < 1e-12);
    /// ```
    #[inline]
    pub fn rotated(self, theta: f64) -> Vec2 {
        let (s, c) = theta.sin_cos();
        Vec2::new(self.x * c - self.y * s, self.x * s + self.y * c)
    }

    /// Lift into 3D at the given height `z`.
    #[inline]
    pub fn with_z(self, z: f64) -> crate::Vec3 {
        crate::Vec3::new(self.x, self.y, z)
    }

    /// True when every component is finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl Add for Vec2 {
    type Output = Vec2;
    #[inline]
    fn add(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl AddAssign for Vec2 {
    #[inline]
    fn add_assign(&mut self, rhs: Vec2) {
        *self = *self + rhs;
    }
}

impl Sub for Vec2 {
    type Output = Vec2;
    #[inline]
    fn sub(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl SubAssign for Vec2 {
    #[inline]
    fn sub_assign(&mut self, rhs: Vec2) {
        *self = *self - rhs;
    }
}

impl Mul<f64> for Vec2 {
    type Output = Vec2;
    #[inline]
    fn mul(self, s: f64) -> Vec2 {
        Vec2::new(self.x * s, self.y * s)
    }
}

impl Mul<Vec2> for f64 {
    type Output = Vec2;
    #[inline]
    fn mul(self, v: Vec2) -> Vec2 {
        v * self
    }
}

impl Div<f64> for Vec2 {
    type Output = Vec2;
    #[inline]
    fn div(self, s: f64) -> Vec2 {
        Vec2::new(self.x / s, self.y / s)
    }
}

impl Neg for Vec2 {
    type Output = Vec2;
    #[inline]
    fn neg(self) -> Vec2 {
        Vec2::new(-self.x, -self.y)
    }
}

impl fmt::Display for Vec2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.4}, {:.4}) m", self.x, self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    #[test]
    fn arithmetic() {
        let a = Vec2::new(1.0, 2.0);
        let b = Vec2::new(-3.0, 0.5);
        assert_eq!(a + b, Vec2::new(-2.0, 2.5));
        assert_eq!(a - b, Vec2::new(4.0, 1.5));
        assert_eq!(a * 2.0, Vec2::new(2.0, 4.0));
        assert_eq!(2.0 * a, a * 2.0);
        assert_eq!(a / 2.0, Vec2::new(0.5, 1.0));
        assert_eq!(-a, Vec2::new(-1.0, -2.0));
    }

    #[test]
    fn bearing_cardinals() {
        assert_eq!(Vec2::new(1.0, 0.0).bearing(), 0.0);
        assert!((Vec2::new(0.0, 1.0).bearing() - FRAC_PI_2).abs() < 1e-12);
        assert!((Vec2::new(-1.0, 0.0).bearing() - PI).abs() < 1e-12);
        assert!((Vec2::new(0.0, -1.0).bearing() - 3.0 * FRAC_PI_2).abs() < 1e-12);
    }

    #[test]
    fn bearing_of_zero_is_zero() {
        assert_eq!(Vec2::ZERO.bearing(), 0.0);
    }

    #[test]
    fn from_bearing_roundtrip() {
        for i in 0..36 {
            let b = i as f64 * PI / 18.0;
            let v = Vec2::from_bearing(b);
            assert!(crate::angle::separation(v.bearing(), b) < 1e-12);
            assert!((v.norm() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn cross_sign_convention() {
        let x = Vec2::new(1.0, 0.0);
        let y = Vec2::new(0.0, 1.0);
        assert_eq!(x.cross(y), 1.0);
        assert_eq!(y.cross(x), -1.0);
    }

    #[test]
    fn perp_is_ccw_quarter_turn() {
        let v = Vec2::new(3.0, 4.0);
        let p = v.perp();
        assert_eq!(v.dot(p), 0.0);
        assert!(v.cross(p) > 0.0);
        assert_eq!(p.norm(), v.norm());
    }

    #[test]
    fn normalized_zero_is_none() {
        assert!(Vec2::ZERO.normalized().is_none());
        let n = Vec2::new(0.0, -2.0).normalized().unwrap();
        assert!((n.norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rotation_composes() {
        let v = Vec2::new(1.0, 1.0);
        let r = v.rotated(0.4).rotated(0.6);
        let d = v.rotated(1.0);
        assert!((r - d).norm() < 1e-12);
    }

    #[test]
    fn display_nonempty() {
        assert!(!format!("{}", Vec2::ZERO).is_empty());
    }
}
