//! 2D rays / lines and their intersections.
//!
//! Tagspin turns each spinning tag's angle spectrum into a bearing line that
//! starts at the disk center and points toward the reader (paper Section V-A,
//! Eqn 9). This module provides the intersection machinery, including a
//! tan-free parametric form that has no singularity at φ = ±90° (the paper's
//! closed form divides by `tanφ₁ − tanφ₂`, which blows up for vertical
//! bearings), plus a least-squares fix for three or more lines.

use crate::Vec2;
use std::fmt;

/// A directed line (ray direction retained) in the plane.
///
/// ```
/// use tagspin_geom::{Line2, Vec2};
/// let l1 = Line2::from_bearing(Vec2::new(-0.3, 0.0), std::f64::consts::FRAC_PI_4);
/// let l2 = Line2::from_bearing(Vec2::new(0.3, 0.0), 3.0 * std::f64::consts::FRAC_PI_4);
/// let p = l1.intersect(&l2).unwrap();
/// assert!((p - Vec2::new(0.0, 0.3)).norm() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Line2 {
    /// A point on the line (the spinning-tag disk center in Tagspin).
    pub origin: Vec2,
    /// Unit direction of the ray.
    pub direction: Vec2,
}

/// Error produced by degenerate line-intersection inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IntersectLinesError {
    /// The lines are parallel (or anti-parallel) within tolerance.
    Parallel,
    /// Fewer than two lines were supplied.
    TooFewLines,
    /// The least-squares normal system is singular (all lines parallel).
    Singular,
}

impl fmt::Display for IntersectLinesError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IntersectLinesError::Parallel => write!(f, "lines are parallel"),
            IntersectLinesError::TooFewLines => write!(f, "need at least two lines"),
            IntersectLinesError::Singular => {
                write!(f, "line system is singular (all lines parallel)")
            }
        }
    }
}

impl std::error::Error for IntersectLinesError {}

impl Line2 {
    /// Construct from an origin and a bearing angle (CCW from +x).
    #[inline]
    pub fn from_bearing(origin: Vec2, bearing: f64) -> Self {
        Line2 {
            origin,
            direction: Vec2::from_bearing(bearing),
        }
    }

    /// Construct from two distinct points. Returns `None` if they coincide.
    #[inline]
    pub fn through(a: Vec2, b: Vec2) -> Option<Self> {
        (b - a).normalized().map(|direction| Line2 {
            origin: a,
            direction,
        })
    }

    /// The bearing of this line's direction in `[0, 2π)`.
    #[inline]
    pub fn bearing(&self) -> f64 {
        self.direction.bearing()
    }

    /// Point at parameter `t` (meters along the ray from the origin).
    #[inline]
    pub fn point_at(&self, t: f64) -> Vec2 {
        self.origin + self.direction * t
    }

    /// Signed perpendicular distance from a point to the line.
    ///
    /// Positive when the point lies to the left of the ray direction.
    #[inline]
    pub fn signed_distance(&self, p: Vec2) -> f64 {
        self.direction.cross(p - self.origin)
    }

    /// Unsigned perpendicular distance from a point to the line.
    #[inline]
    pub fn distance(&self, p: Vec2) -> f64 {
        self.signed_distance(p).abs()
    }

    /// Ray parameter of the orthogonal projection of `p` onto the line.
    ///
    /// Negative values mean the projection lies *behind* the ray origin —
    /// useful for rejecting intersections in the anti-bearing direction.
    #[inline]
    pub fn project(&self, p: Vec2) -> f64 {
        self.direction.dot(p - self.origin)
    }

    /// Intersect two lines using the parametric (tan-free) formulation.
    ///
    /// Solves `o₁ + t·d₁ = o₂ + s·d₂` via the 2D cross product. Unlike the
    /// paper's Eqn 9 this has no singularity for vertical bearings; for
    /// non-degenerate inputs the two agree (verified in tests).
    ///
    /// # Errors
    ///
    /// Returns [`IntersectLinesError::Parallel`] when `|d₁ × d₂|` is below
    /// `1e-12` (parallel or coincident lines have no unique intersection).
    pub fn intersect(&self, other: &Line2) -> Result<Vec2, IntersectLinesError> {
        let denom = self.direction.cross(other.direction);
        if denom.abs() < 1e-12 {
            return Err(IntersectLinesError::Parallel);
        }
        let t = (other.origin - self.origin).cross(other.direction) / denom;
        Ok(self.point_at(t))
    }
}

impl fmt::Display for Line2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ray {} @ {:.2}°",
            self.origin,
            self.bearing().to_degrees()
        )
    }
}

/// The paper's closed-form intersection (Eqn 9), kept for fidelity and tested
/// against [`Line2::intersect`].
///
/// Given tag centers `o1`, `o2` and spectrum bearings `phi1`, `phi2`, returns
/// the reader position:
///
/// ```text
/// x_R = (y₂ − y₁ + x₁·tanφ₁ − x₂·tanφ₂) / (tanφ₁ − tanφ₂)
/// y_R = ((x₁ − x₂)·tanφ₁·tanφ₂ + y₂·tanφ₁ − y₁·tanφ₂) / (tanφ₁ − tanφ₂)
/// ```
///
/// # Errors
///
/// Returns [`IntersectLinesError::Parallel`] when `tanφ₁ ≈ tanφ₂` or either
/// tangent is non-finite (bearing at ±90°, where the closed form is
/// undefined — use [`Line2::intersect`] in production code).
pub fn intersect_eqn9(
    o1: Vec2,
    phi1: f64,
    o2: Vec2,
    phi2: f64,
) -> Result<Vec2, IntersectLinesError> {
    let t1 = phi1.tan();
    let t2 = phi2.tan();
    if !t1.is_finite() || !t2.is_finite() {
        return Err(IntersectLinesError::Parallel);
    }
    let denom = t1 - t2;
    if denom.abs() < 1e-9 {
        return Err(IntersectLinesError::Parallel);
    }
    let x = (o2.y - o1.y + o1.x * t1 - o2.x * t2) / denom;
    let y = ((o1.x - o2.x) * t1 * t2 + o2.y * t1 - o1.y * t2) / denom;
    Ok(Vec2::new(x, y))
}

/// Least-squares intersection of two or more lines.
///
/// Minimizes the sum of squared perpendicular distances to all lines — the
/// natural fusion when more than two spinning tags produce bearings. With
/// optional per-line `weights` (e.g. spectrum peak power), the objective
/// becomes a weighted sum.
///
/// For each line with unit direction `d`, the projector onto the normal space
/// is `P = I − d·dᵀ`; the optimum solves `(Σ wᵢ Pᵢ) x = Σ wᵢ Pᵢ oᵢ`.
///
/// # Errors
///
/// * [`IntersectLinesError::TooFewLines`] — fewer than two lines.
/// * [`IntersectLinesError::Singular`] — all lines parallel.
pub fn least_squares_intersection(
    lines: &[Line2],
    weights: Option<&[f64]>,
) -> Result<Vec2, IntersectLinesError> {
    if lines.len() < 2 {
        return Err(IntersectLinesError::TooFewLines);
    }
    if let Some(w) = weights {
        assert_eq!(
            w.len(),
            lines.len(),
            "weights length must match lines length"
        );
    }
    // Accumulate the 2x2 normal matrix A and rhs b.
    let (mut a11, mut a12, mut a22) = (0.0, 0.0, 0.0);
    let (mut b1, mut b2) = (0.0, 0.0);
    for (i, line) in lines.iter().enumerate() {
        let w = weights.map_or(1.0, |ws| ws[i]);
        let d = line.direction;
        // P = I - d d^T
        let p11 = 1.0 - d.x * d.x;
        let p12 = -d.x * d.y;
        let p22 = 1.0 - d.y * d.y;
        a11 += w * p11;
        a12 += w * p12;
        a22 += w * p22;
        let o = line.origin;
        b1 += w * (p11 * o.x + p12 * o.y);
        b2 += w * (p12 * o.x + p22 * o.y);
    }
    let det = a11 * a22 - a12 * a12;
    if det.abs() < 1e-12 {
        return Err(IntersectLinesError::Singular);
    }
    Ok(Vec2::new(
        (a22 * b1 - a12 * b2) / det,
        (a11 * b2 - a12 * b1) / det,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, FRAC_PI_4, PI};

    #[test]
    fn basic_intersection() {
        let l1 = Line2::from_bearing(Vec2::new(0.0, 0.0), FRAC_PI_4);
        let l2 = Line2::from_bearing(Vec2::new(2.0, 0.0), 3.0 * FRAC_PI_4);
        let p = l1.intersect(&l2).unwrap();
        assert!((p - Vec2::new(1.0, 1.0)).norm() < 1e-12);
    }

    #[test]
    fn parallel_is_error() {
        let l1 = Line2::from_bearing(Vec2::ZERO, 0.3);
        let l2 = Line2::from_bearing(Vec2::new(0.0, 1.0), 0.3);
        assert_eq!(l1.intersect(&l2), Err(IntersectLinesError::Parallel));
        // Anti-parallel too.
        let l3 = Line2::from_bearing(Vec2::new(0.0, 1.0), 0.3 + PI);
        assert_eq!(l1.intersect(&l3), Err(IntersectLinesError::Parallel));
    }

    #[test]
    fn vertical_bearing_is_fine_parametrically() {
        // Eqn 9 fails at φ = 90°, the parametric form must not.
        let l1 = Line2::from_bearing(Vec2::new(1.0, 0.0), FRAC_PI_2);
        let l2 = Line2::from_bearing(Vec2::new(0.0, 2.0), 0.0);
        let p = l1.intersect(&l2).unwrap();
        assert!((p - Vec2::new(1.0, 2.0)).norm() < 1e-12);
        // Eqn 9 is ill-conditioned at φ = 90°: tan(π/2) in floating point is a
        // huge finite number, so the closed form survives only by luck of
        // cancellation. It must at least error on equal bearings (parallel).
        assert!(intersect_eqn9(Vec2::new(1.0, 0.0), 0.7, Vec2::new(0.0, 2.0), 0.7).is_err());
    }

    #[test]
    fn eqn9_matches_parametric_when_defined() {
        let cases = [
            (Vec2::new(-0.3, 0.0), 1.2, Vec2::new(0.3, 0.0), 2.0),
            (Vec2::new(-0.3, 0.1), 0.4, Vec2::new(0.4, -0.2), 2.8),
            (Vec2::new(0.0, 0.0), 5.5, Vec2::new(1.0, 1.0), 4.0),
        ];
        for (o1, p1, o2, p2) in cases {
            let a = intersect_eqn9(o1, p1, o2, p2).unwrap();
            let b = Line2::from_bearing(o1, p1)
                .intersect(&Line2::from_bearing(o2, p2))
                .unwrap();
            assert!((a - b).norm() < 1e-9, "mismatch: {a} vs {b}");
        }
    }

    #[test]
    fn signed_distance_sign() {
        let l = Line2::from_bearing(Vec2::ZERO, 0.0); // +x axis
        assert!(l.signed_distance(Vec2::new(5.0, 1.0)) > 0.0); // left = +y
        assert!(l.signed_distance(Vec2::new(5.0, -1.0)) < 0.0);
        assert_eq!(l.distance(Vec2::new(7.0, 0.0)), 0.0);
    }

    #[test]
    fn projection_parameter() {
        let l = Line2::from_bearing(Vec2::new(1.0, 0.0), 0.0);
        assert_eq!(l.project(Vec2::new(4.0, 9.0)), 3.0);
        assert!(l.project(Vec2::new(0.0, 0.0)) < 0.0); // behind the origin
    }

    #[test]
    fn least_squares_two_lines_matches_exact() {
        let l1 = Line2::from_bearing(Vec2::new(0.0, 0.0), FRAC_PI_4);
        let l2 = Line2::from_bearing(Vec2::new(2.0, 0.0), 3.0 * FRAC_PI_4);
        let exact = l1.intersect(&l2).unwrap();
        let ls = least_squares_intersection(&[l1, l2], None).unwrap();
        assert!((exact - ls).norm() < 1e-9);
    }

    #[test]
    fn least_squares_three_lines() {
        // Three lines through (1, 1) with perturbation-free bearings.
        let target = Vec2::new(1.0, 1.0);
        let origins = [
            Vec2::new(0.0, 0.0),
            Vec2::new(2.0, 0.0),
            Vec2::new(0.0, 2.5),
        ];
        let lines: Vec<Line2> = origins
            .iter()
            .map(|&o| Line2::from_bearing(o, (target - o).bearing()))
            .collect();
        let p = least_squares_intersection(&lines, None).unwrap();
        assert!((p - target).norm() < 1e-9);
    }

    #[test]
    fn least_squares_weighting_pulls_toward_heavy_line() {
        // Two crossing pairs; third line is off, with tiny weight it should
        // barely move the solution.
        let l1 = Line2::from_bearing(Vec2::new(0.0, 0.0), FRAC_PI_4);
        let l2 = Line2::from_bearing(Vec2::new(2.0, 0.0), 3.0 * FRAC_PI_4);
        let bad = Line2::from_bearing(Vec2::new(0.0, 5.0), 0.0);
        let p = least_squares_intersection(&[l1, l2, bad], Some(&[1.0, 1.0, 1e-9])).unwrap();
        assert!((p - Vec2::new(1.0, 1.0)).norm() < 1e-6);
    }

    #[test]
    fn least_squares_degenerate_errors() {
        let l = Line2::from_bearing(Vec2::ZERO, 0.0);
        assert_eq!(
            least_squares_intersection(&[l], None),
            Err(IntersectLinesError::TooFewLines)
        );
        let l2 = Line2::from_bearing(Vec2::new(0.0, 1.0), 0.0);
        assert_eq!(
            least_squares_intersection(&[l, l2], None),
            Err(IntersectLinesError::Singular)
        );
    }

    #[test]
    fn through_points() {
        let l = Line2::through(Vec2::ZERO, Vec2::new(0.0, 3.0)).unwrap();
        assert!((l.bearing() - FRAC_PI_2).abs() < 1e-12);
        assert!(Line2::through(Vec2::ZERO, Vec2::ZERO).is_none());
    }

    #[test]
    fn error_display() {
        assert!(!IntersectLinesError::Parallel.to_string().is_empty());
        assert!(!IntersectLinesError::TooFewLines.to_string().is_empty());
        assert!(!IntersectLinesError::Singular.to_string().is_empty());
    }
}
