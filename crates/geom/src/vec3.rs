//! Three-dimensional vectors / points.

use crate::{angle, Vec2};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A point or displacement in 3D space, in meters.
///
/// The paper's 3D experiments (Section V-B) keep the two spinning tags on the
/// horizontal plane and let the reader sit at a different height; `Vec3`
/// models those positions. The z-axis points up.
///
/// ```
/// use tagspin_geom::Vec3;
/// let reader = Vec3::from_cm(-86.6, 0.0, 50.0);
/// assert!((reader.norm() - 1.0).abs() < 1e-3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Vec3 {
    /// x-coordinate in meters.
    pub x: f64,
    /// y-coordinate in meters.
    pub y: f64,
    /// z-coordinate (height) in meters.
    pub z: f64,
}

impl Vec3 {
    /// The origin / zero vector.
    pub const ZERO: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };

    /// Create a vector from components in meters.
    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    /// Create a vector from components in centimeters (paper units).
    #[inline]
    pub fn from_cm(x_cm: f64, y_cm: f64, z_cm: f64) -> Self {
        Vec3::new(x_cm / 100.0, y_cm / 100.0, z_cm / 100.0)
    }

    /// Unit vector from azimuth `φ` and polar (elevation) angle `γ`.
    ///
    /// Matches the paper's spherical convention: the horizontal component has
    /// bearing `φ`, and `γ ∈ [-π/2, π/2]` is the elevation above the
    /// horizontal plane, so `z = sin γ`.
    ///
    /// ```
    /// use tagspin_geom::Vec3;
    /// let up = Vec3::from_spherical(0.0, std::f64::consts::FRAC_PI_2);
    /// assert!((up.z - 1.0).abs() < 1e-12);
    /// ```
    #[inline]
    pub fn from_spherical(azimuth: f64, polar: f64) -> Self {
        let (sg, cg) = polar.sin_cos();
        let (sa, ca) = azimuth.sin_cos();
        Vec3::new(cg * ca, cg * sa, sg)
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, other: Vec3) -> f64 {
        self.x * other.x + self.y * other.y + self.z * other.z
    }

    /// Cross product.
    #[inline]
    pub fn cross(self, other: Vec3) -> Vec3 {
        Vec3::new(
            self.y * other.z - self.z * other.y,
            self.z * other.x - self.x * other.z,
            self.x * other.y - self.y * other.x,
        )
    }

    /// Euclidean norm in meters.
    #[inline]
    pub fn norm(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Squared norm.
    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.dot(self)
    }

    /// Euclidean distance to another point in meters.
    #[inline]
    pub fn distance(self, other: Vec3) -> f64 {
        (self - other).norm()
    }

    /// Horizontal (x–y) projection.
    #[inline]
    pub fn xy(self) -> Vec2 {
        Vec2::new(self.x, self.y)
    }

    /// Azimuth of the horizontal projection, wrapped to `[0, 2π)`.
    #[inline]
    pub fn azimuth(self) -> f64 {
        self.xy().bearing()
    }

    /// Polar (elevation) angle above the horizontal plane, in `[-π/2, π/2]`.
    ///
    /// This is the paper's `γ`: the angle between the displacement and its
    /// projection on the horizontal plane. Returns `0.0` for the zero vector.
    #[inline]
    pub fn polar(self) -> f64 {
        let h = self.xy().norm();
        // Bit-exact zero-vector sentinel; any nonzero magnitude takes atan2.
        // lint:allow(float-eq) exact 0.0 check is the sentinel contract
        if h == 0.0 && self.z == 0.0 {
            0.0
        } else {
            self.z.atan2(h)
        }
    }

    /// Unit vector in the same direction, or `None` for (near-)zero vectors.
    #[inline]
    pub fn normalized(self) -> Option<Vec3> {
        let n = self.norm();
        if n < 1e-300 {
            None
        } else {
            Some(self / n)
        }
    }

    /// True when every component is finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }

    /// Reflect through the horizontal plane (negate z).
    ///
    /// Used for the paper's ±z localization ambiguity: any point and its
    /// mirror image produce identical distances to points on the plane.
    #[inline]
    pub fn mirror_z(self) -> Vec3 {
        Vec3::new(self.x, self.y, -self.z)
    }
}

impl From<Vec2> for Vec3 {
    /// Embed a horizontal point at height zero.
    #[inline]
    fn from(v: Vec2) -> Vec3 {
        v.with_z(0.0)
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x + rhs.x, self.y + rhs.y, self.z + rhs.z)
    }
}

impl AddAssign for Vec3 {
    #[inline]
    fn add_assign(&mut self, rhs: Vec3) {
        *self = *self + rhs;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }
}

impl SubAssign for Vec3 {
    #[inline]
    fn sub_assign(&mut self, rhs: Vec3) {
        *self = *self - rhs;
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, s: f64) -> Vec3 {
        Vec3::new(self.x * s, self.y * s, self.z * s)
    }
}

impl Mul<Vec3> for f64 {
    type Output = Vec3;
    #[inline]
    fn mul(self, v: Vec3) -> Vec3 {
        v * self
    }
}

impl Div<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn div(self, s: f64) -> Vec3 {
        Vec3::new(self.x / s, self.y / s, self.z / s)
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

impl fmt::Display for Vec3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.4}, {:.4}, {:.4}) m", self.x, self.y, self.z)
    }
}

/// Spherical direction `(azimuth φ, polar γ)` pair, as searched by the 3D
/// angle spectrum in the paper's Eqn 12.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Direction3 {
    /// Azimuth in `[0, 2π)`.
    pub azimuth: f64,
    /// Polar (elevation) angle in `[-π/2, π/2]`.
    pub polar: f64,
}

impl Direction3 {
    /// Create a direction, wrapping the azimuth and clamping the polar angle.
    #[inline]
    pub fn new(azimuth: f64, polar: f64) -> Self {
        Direction3 {
            azimuth: angle::wrap_tau(azimuth),
            polar: polar.clamp(-std::f64::consts::FRAC_PI_2, std::f64::consts::FRAC_PI_2),
        }
    }

    /// Unit vector for this direction.
    #[inline]
    pub fn unit(self) -> Vec3 {
        Vec3::from_spherical(self.azimuth, self.polar)
    }

    /// The mirror direction with negated polar angle (the paper's symmetric
    /// z-candidate).
    #[inline]
    pub fn mirror(self) -> Direction3 {
        Direction3 {
            azimuth: self.azimuth,
            polar: -self.polar,
        }
    }
}

impl fmt::Display for Direction3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "(φ={:.2}°, γ={:.2}°)",
            self.azimuth.to_degrees(),
            self.polar.to_degrees()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, FRAC_PI_4, PI};

    #[test]
    fn arithmetic() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(0.5, -1.0, 2.0);
        assert_eq!(a + b, Vec3::new(1.5, 1.0, 5.0));
        assert_eq!(a - b, Vec3::new(0.5, 3.0, 1.0));
        assert_eq!(a * 2.0, Vec3::new(2.0, 4.0, 6.0));
        assert_eq!(a / 2.0, Vec3::new(0.5, 1.0, 1.5));
        assert_eq!(-a, Vec3::new(-1.0, -2.0, -3.0));
    }

    #[test]
    fn cross_right_handed() {
        let x = Vec3::new(1.0, 0.0, 0.0);
        let y = Vec3::new(0.0, 1.0, 0.0);
        let z = Vec3::new(0.0, 0.0, 1.0);
        assert_eq!(x.cross(y), z);
        assert_eq!(y.cross(z), x);
        assert_eq!(z.cross(x), y);
    }

    #[test]
    fn spherical_roundtrip() {
        for ia in 0..12 {
            for ip in -4..=4 {
                let az = ia as f64 * PI / 6.0;
                let po = ip as f64 * FRAC_PI_2 / 5.0;
                let v = Vec3::from_spherical(az, po);
                assert!((v.norm() - 1.0).abs() < 1e-12);
                assert!((v.polar() - po).abs() < 1e-12);
                if po.abs() < FRAC_PI_2 - 1e-9 {
                    assert!(angle::separation(v.azimuth(), az) < 1e-9);
                }
            }
        }
    }

    #[test]
    fn polar_signs() {
        assert!((Vec3::new(1.0, 0.0, 1.0).polar() - FRAC_PI_4).abs() < 1e-12);
        assert!((Vec3::new(1.0, 0.0, -1.0).polar() + FRAC_PI_4).abs() < 1e-12);
        assert_eq!(Vec3::ZERO.polar(), 0.0);
        assert!((Vec3::new(0.0, 0.0, 2.0).polar() - FRAC_PI_2).abs() < 1e-12);
    }

    #[test]
    fn mirror_z_preserves_planar_distance() {
        let p = Vec3::new(0.4, -0.7, 0.9);
        let q = Vec3::new(1.0, 2.0, 0.0); // on the horizontal plane
        assert!((p.distance(q) - p.mirror_z().distance(q)).abs() < 1e-12);
    }

    #[test]
    fn direction3_mirror() {
        let d = Direction3::new(1.0, 0.5);
        let m = d.mirror();
        assert_eq!(m.azimuth, d.azimuth);
        assert_eq!(m.polar, -d.polar);
        assert!((d.unit().mirror_z() - m.unit()).norm() < 1e-12);
    }

    #[test]
    fn direction3_clamps_polar() {
        let d = Direction3::new(0.0, 2.0);
        assert_eq!(d.polar, FRAC_PI_2);
    }

    #[test]
    fn from_vec2_is_planar() {
        let v: Vec3 = Vec2::new(1.0, 2.0).into();
        assert_eq!(v, Vec3::new(1.0, 2.0, 0.0));
    }
}
