//! Circular (directional) statistics.
//!
//! Phase measurements and bearing estimates live on the circle, where the
//! arithmetic mean is meaningless (the average of 1° and 359° is 0°, not
//! 180°). These helpers compute means, variances and dispersions using the
//! standard resultant-vector formulation (Mardia & Jupp).

use crate::angle;

/// The resultant vector of a set of angles: `(Σcosθ, Σsinθ) / n`.
///
/// Returns `(0.0, 0.0)` for an empty input.
fn resultant(angles: &[f64]) -> (f64, f64) {
    if angles.is_empty() {
        return (0.0, 0.0);
    }
    let (mut c, mut s) = (0.0, 0.0);
    for &a in angles {
        c += a.cos();
        s += a.sin();
    }
    let n = angles.len() as f64;
    (c / n, s / n)
}

/// Circular mean of a set of angles, wrapped to `[0, 2π)`.
///
/// Returns `None` for an empty slice or when the resultant vector is
/// (near-)zero, i.e. the angles are uniformly spread and no mean direction
/// exists.
///
/// ```
/// use tagspin_geom::circular::mean;
/// let m = mean(&[0.1, std::f64::consts::TAU - 0.1]).unwrap();
/// assert!(m < 1e-9 || (std::f64::consts::TAU - m) < 1e-9);
/// ```
pub fn mean(angles: &[f64]) -> Option<f64> {
    let (c, s) = resultant(angles);
    let r = c.hypot(s);
    if r < 1e-12 {
        None
    } else {
        Some(angle::wrap_tau(s.atan2(c)))
    }
}

/// Mean resultant length `R ∈ [0, 1]`: 1 for perfectly concentrated angles,
/// 0 for uniformly dispersed ones.
///
/// ```
/// use tagspin_geom::circular::resultant_length;
/// assert!((resultant_length(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
/// ```
pub fn resultant_length(angles: &[f64]) -> f64 {
    let (c, s) = resultant(angles);
    c.hypot(s)
}

/// Circular variance `1 - R ∈ [0, 1]`.
pub fn variance(angles: &[f64]) -> f64 {
    1.0 - resultant_length(angles)
}

/// Circular standard deviation `sqrt(-2 ln R)`, in radians.
///
/// For tightly concentrated data this approaches the linear standard
/// deviation; it diverges as the data spreads toward uniformity. Returns
/// `f64::INFINITY` when `R == 0` and `None` on empty input.
pub fn std_dev(angles: &[f64]) -> Option<f64> {
    if angles.is_empty() {
        return None;
    }
    let r = resultant_length(angles);
    if r <= 0.0 {
        Some(f64::INFINITY)
    } else {
        Some((-2.0 * r.ln()).sqrt())
    }
}

/// Weighted circular mean.
///
/// Used when fusing bearing estimates whose reliability differs (e.g. the
/// spectrum peak powers of multiple spinning tags). Returns `None` when the
/// inputs are empty, lengths mismatch, total weight is non-positive, or the
/// resultant vanishes.
pub fn weighted_mean(angles: &[f64], weights: &[f64]) -> Option<f64> {
    if angles.is_empty() || angles.len() != weights.len() {
        return None;
    }
    let (mut c, mut s, mut w_total) = (0.0, 0.0, 0.0);
    for (&a, &w) in angles.iter().zip(weights) {
        if w < 0.0 {
            return None;
        }
        c += w * a.cos();
        s += w * a.sin();
        w_total += w;
    }
    if w_total <= 0.0 || c.hypot(s) < 1e-12 {
        None
    } else {
        Some(angle::wrap_tau(s.atan2(c)))
    }
}

/// Mean absolute angular deviation of `angles` from a reference angle, in
/// radians. Useful as a scalar error metric for bearing estimates.
pub fn mean_abs_deviation(angles: &[f64], reference: f64) -> f64 {
    if angles.is_empty() {
        return 0.0;
    }
    angles
        .iter()
        .map(|&a| angle::separation(a, reference))
        .sum::<f64>()
        / angles.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI, TAU};

    #[test]
    fn mean_wraps_correctly() {
        // Angles straddling the 0/2π seam.
        let m = mean(&[0.2, TAU - 0.2]).unwrap();
        assert!(m < 1e-9 || TAU - m < 1e-9, "mean = {m}");
    }

    #[test]
    fn mean_of_concentrated() {
        let m = mean(&[1.0, 1.1, 0.9]).unwrap();
        assert!((m - 1.0).abs() < 1e-9);
    }

    #[test]
    fn mean_of_uniform_is_none() {
        let quad = [0.0, FRAC_PI_2, PI, 3.0 * FRAC_PI_2];
        assert!(mean(&quad).is_none());
        assert!(mean(&[]).is_none());
    }

    #[test]
    fn variance_bounds() {
        assert!(variance(&[0.5; 10]) < 1e-12);
        let v = variance(&[0.0, PI]);
        assert!((v - 1.0).abs() < 1e-9);
    }

    #[test]
    fn std_dev_small_angle_matches_linear() {
        // Tight cluster: circular std ≈ linear std.
        let xs = [0.00, 0.01, -0.01, 0.02, -0.02];
        let circ = std_dev(&xs).unwrap();
        let mean_lin = xs.iter().sum::<f64>() / xs.len() as f64;
        let lin = (xs.iter().map(|x| (x - mean_lin).powi(2)).sum::<f64>() / xs.len() as f64).sqrt();
        assert!((circ - lin).abs() < 1e-4, "circ={circ} lin={lin}");
    }

    #[test]
    fn std_dev_empty_is_none() {
        assert!(std_dev(&[]).is_none());
    }

    #[test]
    fn weighted_mean_degenerates_to_mean() {
        let xs = [0.3, 0.5, 0.4];
        let w = [1.0, 1.0, 1.0];
        let wm = weighted_mean(&xs, &w).unwrap();
        let m = mean(&xs).unwrap();
        assert!((wm - m).abs() < 1e-12);
    }

    #[test]
    fn weighted_mean_respects_weights() {
        let wm = weighted_mean(&[0.0, PI / 2.0], &[1.0, 0.0]).unwrap();
        assert!(wm.abs() < 1e-12 || (TAU - wm) < 1e-12);
    }

    #[test]
    fn weighted_mean_rejects_bad_input() {
        assert!(weighted_mean(&[0.0], &[]).is_none());
        assert!(weighted_mean(&[0.0], &[-1.0]).is_none());
        assert!(weighted_mean(&[], &[]).is_none());
    }

    #[test]
    fn mad_is_zero_on_reference() {
        assert_eq!(mean_abs_deviation(&[1.0, 1.0], 1.0), 0.0);
        assert_eq!(mean_abs_deviation(&[], 1.0), 0.0);
        assert!((mean_abs_deviation(&[0.9, 1.1], 1.0) - 0.1).abs() < 1e-12);
    }
}
