//! Property-based tests for the geometry substrate.

use proptest::prelude::*;
use tagspin_geom::line3::{nearest_point_to_lines, Line3};
use tagspin_geom::vec3::Direction3;
use tagspin_geom::{angle, circular, Line2, Vec2, Vec3};

fn arb_vec2() -> impl Strategy<Value = Vec2> {
    (-10.0f64..10.0, -10.0f64..10.0).prop_map(|(x, y)| Vec2::new(x, y))
}

fn arb_vec3() -> impl Strategy<Value = Vec3> {
    (-10.0f64..10.0, -10.0f64..10.0, -10.0f64..10.0).prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Wrapping is idempotent and lands in the canonical ranges:
    /// `wrap_tau` in `[0, 2π)`, `wrap_pi` in `(-π, π]`.
    #[test]
    fn wrap_idempotent_and_bounded(x in -1e4f64..1e4) {
        let t = angle::wrap_tau(x);
        prop_assert!((0.0..std::f64::consts::TAU).contains(&t));
        prop_assert!((angle::wrap_tau(t) - t).abs() < 1e-12);
        let p = angle::wrap_pi(x);
        prop_assert!(-std::f64::consts::PI < p && p <= std::f64::consts::PI);
        prop_assert!(angle::separation(angle::wrap_pi(p), p) < 1e-12);
    }

    /// Wrapping is 2π-periodic: adding whole turns never changes the
    /// canonical representative (up to float rounding of `k·2π`).
    #[test]
    fn wrap_periodic(x in -50.0f64..50.0, k in -8i32..8) {
        let shifted = x + k as f64 * std::f64::consts::TAU;
        prop_assert!(angle::separation(angle::wrap_tau(shifted), angle::wrap_tau(x)) < 1e-9);
        prop_assert!(angle::separation(angle::wrap_pi(shifted), angle::wrap_pi(x)) < 1e-9);
    }

    /// Round trip between the two canonical ranges: `wrap_tau` and
    /// `wrap_pi` pick representatives of the same residue class, and
    /// `diff` recovers the signed separation between them as zero.
    #[test]
    fn wrap_representations_agree(x in -1e4f64..1e4) {
        let t = angle::wrap_tau(x);
        let p = angle::wrap_pi(x);
        prop_assert!(angle::separation(t, p) < 1e-9);
        prop_assert!(angle::diff(t, p).abs() < 1e-9);
        // diff is antisymmetric where it is not on the ±π branch cut.
        let d = angle::diff(x, t + 0.1);
        prop_assert!((angle::diff(t + 0.1, x) + d).abs() < 1e-9);
    }

    /// Vector space axioms (the subset that floating point honors).
    #[test]
    fn vec_axioms(a in arb_vec3(), b in arb_vec3(), s in -5.0f64..5.0) {
        prop_assert!(((a + b) - (b + a)).norm() < 1e-12);
        prop_assert!(((a + b) * s - (a * s + b * s)).norm() < 1e-9);
        prop_assert!((a - a).norm() < 1e-12);
        // Cauchy–Schwarz.
        prop_assert!(a.dot(b).abs() <= a.norm() * b.norm() + 1e-9);
        // Cross product orthogonality.
        let c = a.cross(b);
        prop_assert!(c.dot(a).abs() < 1e-6);
        prop_assert!(c.dot(b).abs() < 1e-6);
    }

    /// Triangle inequality for both metric types.
    #[test]
    fn triangle_inequality(a in arb_vec3(), b in arb_vec3(), c in arb_vec3()) {
        prop_assert!(a.distance(c) <= a.distance(b) + b.distance(c) + 1e-9);
        let (p, q, r) = (a.xy(), b.xy(), c.xy());
        prop_assert!(p.distance(r) <= p.distance(q) + q.distance(r) + 1e-9);
    }

    /// Rotation preserves norms and composes additively.
    #[test]
    fn rotation_isometry(v in arb_vec2(), t1 in -7.0f64..7.0, t2 in -7.0f64..7.0) {
        prop_assert!((v.rotated(t1).norm() - v.norm()).abs() < 1e-9);
        prop_assert!((v.rotated(t1).rotated(t2) - v.rotated(t1 + t2)).norm() < 1e-9);
    }

    /// Spherical round trip: unit vector → (azimuth, polar) → unit vector.
    #[test]
    fn spherical_roundtrip(v in arb_vec3()) {
        prop_assume!(v.norm() > 1e-6);
        let u = v.normalized().expect("nonzero");
        let d = Direction3::new(u.azimuth(), u.polar());
        prop_assert!((d.unit() - u).norm() < 1e-9);
    }

    /// A point constructed on a line has zero distance to it; shifting it
    /// perpendicular by `d` yields distance `d`.
    #[test]
    fn line2_distance_semantics(o in arb_vec2(), bearing in 0.0f64..std::f64::consts::TAU,
                                t in -5.0f64..5.0, d in 0.0f64..5.0) {
        let l = Line2::from_bearing(o, bearing);
        let on = l.point_at(t);
        prop_assert!(l.distance(on) < 1e-9);
        let off = on + l.direction.perp() * d;
        prop_assert!((l.distance(off) - d).abs() < 1e-9);
        prop_assert!((l.project(on) - t).abs() < 1e-9);
    }

    /// Two lines through a common point intersect at it (when not
    /// near-parallel).
    #[test]
    fn line2_common_point(p in arb_vec2(), b1 in 0.0f64..std::f64::consts::TAU,
                          db in 0.3f64..2.8) {
        let b2 = b1 + db;
        let l1 = Line2::from_bearing(p - Vec2::from_bearing(b1) * 3.0, b1);
        let l2 = Line2::from_bearing(p - Vec2::from_bearing(b2) * 2.0, b2);
        let x = l1.intersect(&l2).expect("bearings differ by >0.3 rad");
        prop_assert!((x - p).norm() < 1e-6, "got {x}, want {p}");
    }

    /// nearest_point_to_lines on lines through a common point returns it.
    #[test]
    fn line3_common_point(p in arb_vec3(), o1 in arb_vec3(), o2 in arb_vec3(), o3 in arb_vec3()) {
        prop_assume!((p - o1).norm() > 0.5);
        prop_assume!((p - o2).norm() > 0.5);
        prop_assume!((p - o3).norm() > 0.5);
        // Require genuinely distinct directions (not near-parallel).
        let d1 = (p - o1).normalized().expect("checked");
        let d2 = (p - o2).normalized().expect("checked");
        let d3 = (p - o3).normalized().expect("checked");
        prop_assume!(d1.cross(d2).norm() > 0.2);
        prop_assume!(d1.cross(d3).norm() > 0.2);
        let lines = [
            Line3::through(o1, p).expect("distinct"),
            Line3::through(o2, p).expect("distinct"),
            Line3::through(o3, p).expect("distinct"),
        ];
        let x = nearest_point_to_lines(&lines, None).expect("non-degenerate");
        prop_assert!((x - p).norm() < 1e-6, "got {x}, want {p}");
    }

    /// Circular mean is rotation-equivariant: mean(θ + c) = mean(θ) + c.
    #[test]
    fn circular_mean_equivariant(
        base in proptest::collection::vec(0.0f64..1.0, 2..20),
        shift in 0.0f64..std::f64::consts::TAU,
    ) {
        // Concentrated cluster so the mean exists.
        let m0 = circular::mean(&base).expect("concentrated");
        let shifted: Vec<f64> = base.iter().map(|a| a + shift).collect();
        let m1 = circular::mean(&shifted).expect("concentrated");
        prop_assert!(angle::separation(m1, m0 + shift) < 1e-9);
    }

    /// Pose off-boresight is zero exactly toward the facing direction.
    #[test]
    fn pose_boresight(pos in arb_vec3(), facing in 0.0f64..std::f64::consts::TAU, r in 0.5f64..5.0) {
        let pose = tagspin_geom::Pose::new(pos, facing);
        let target = pos + Vec2::from_bearing(facing).with_z(0.0) * r;
        prop_assert!(pose.off_boresight(target).abs() < 1e-9);
    }
}
