//! Fixture binary, staged as `src/bin/app.rs`: under the v2 rule set
//! binaries get L1 — a panicking entry point is a crash in the field.

fn main() {
    let port: Option<u16> = std::env::args().nth(1).and_then(|a| a.parse().ok());
    let port = port.unwrap(); // binaries get L1: fires here
    println!("{port}");
}
