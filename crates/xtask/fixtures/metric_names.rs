//! Fixture metric-name registry for the L8 self-test, staged as
//! `crates/core/src/obs/names.rs`. One const is fully wired (silent),
//! one is missing from the doc inventory, one is never referenced.

/// Referenced by the fixture observer and documented: silent.
pub const ENGINE_CACHE_HIT: &str = "engine.cache.hit";

/// Referenced but absent from the doc inventory: L8 fires here.
pub const ENGINE_UNDOCUMENTED: &str = "engine.undocumented";

/// Documented but never referenced by the observer: L8 fires here.
pub const SESSION_ORPHANED: &str = "session.orphaned";
