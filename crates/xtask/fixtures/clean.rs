//! Lint self-test fixture: the same constructs as `violations.rs`, but
//! either written in the blessed idiom or carrying a justified escape
//! hatch. The analyzer must report nothing here.

pub fn l1_allowed(v: Option<u32>) -> u32 {
    // lint:allow(no-panic) fixture: invariant documented here
    v.unwrap()
}

pub fn l2_blessed(phase: f64) -> f64 {
    tagspin_geom::angle::wrap_tau(phase)
}

pub fn l3_epsilon(a: f64) -> bool {
    tagspin_dsp::float::exactly_zero(a)
}

pub fn l4_typed(s: &str) -> Result<u32, std::num::ParseIntError> {
    s.parse()
}

pub fn l5_annotated(i: usize) -> f64 {
    // lint:allow(lossy-cast) fixture index is tiny, exact in f64
    i as f64
}

pub fn strings_are_stripped() -> &'static str {
    // Pattern text inside a string literal must not trip any rule.
    "call .unwrap() then x.rem_euclid(TAU) and a == 0.0 as f64"
}
