//! Lint self-test fixture: the same constructs as `violations.rs`, but
//! either written in the blessed idiom or carrying a justified escape
//! hatch. The analyzer must report nothing here — including L9, so
//! every public item carries a doc comment.

/// L1 escape hatch: a comment-token allow marker on the line above.
pub fn l1_allowed(v: Option<u32>) -> u32 {
    // lint:allow(no-panic) fixture: invariant documented here
    v.unwrap()
}

/// L2 blessed idiom: wrap via `tagspin_geom::angle`.
pub fn l2_blessed(phase: f64) -> f64 {
    tagspin_geom::angle::wrap_tau(phase)
}

/// L3 blessed idiom: tolerance compare via the dsp float helpers.
pub fn l3_epsilon(a: f64) -> bool {
    tagspin_dsp::float::exactly_zero(a)
}

/// L4 blessed idiom: a typed error.
pub fn l4_typed(s: &str) -> Result<u32, std::num::ParseIntError> {
    s.parse()
}

/// L5 escape hatch: annotated cast.
pub fn l5_annotated(i: usize) -> f64 {
    // lint:allow(lossy-cast) fixture index is tiny, exact in f64
    i as f64
}

/// L6 blessed idiom: the guard is dropped before emission.
pub fn l6_drop_before_emit(obs: &ObsHandle, cache: &CacheLock) {
    let guard = cache.lock();
    let hit = guard.probe();
    drop(guard);
    obs.emit(|| hit);
}

/// L7 blessed idiom: every ordering carries a justification note.
pub fn l7_justified(c: &std::sync::atomic::AtomicU64) {
    // ordering: relaxed — monotonic tally, read only via snapshots
    c.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
}

/// Pattern text inside a string literal must not trip any rule.
pub fn strings_are_stripped() -> &'static str {
    "call .unwrap() then x.rem_euclid(TAU) and a == 0.0 as f64"
}
