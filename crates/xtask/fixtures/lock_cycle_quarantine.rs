//! Lock-order fixture, reverse half: acquires `journal` then `cache` —
//! the opposite order from `lock_cycle_session.rs`. Staged as
//! `crates/demo/src/quarantine.rs` by the self-test, this closes a
//! two-module cycle in the workspace lock-order graph.

/// Acquire the journal, then the cache while the journal guard is live.
pub fn reverse(store: &Store) -> u32 {
    let journal = store.journal.lock();
    let cache = store.cache.lock(); // nested: journal -> cache
    cache.merge(journal.generation())
}
