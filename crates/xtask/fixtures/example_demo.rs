//! Fixture example, staged as `examples/demo.rs`: examples keep the
//! L1 exemption — a terse demo may unwrap freely.

fn main() {
    let v: Option<u32> = Some(1);
    println!("{}", v.unwrap());
}
