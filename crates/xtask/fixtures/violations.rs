//! Lint self-test fixture: every rule must fire exactly where marked.
//! This file is never compiled; the integration test feeds it to
//! `analyze_file` under a hot-path library name.

use std::f64::consts::TAU;

pub fn l1_unwrap(v: Option<u32>) -> u32 {
    v.unwrap() // L1 line 8
}

pub fn l2_raw_wrap(phase: f64) -> f64 {
    phase.rem_euclid(TAU) // L2 line 12
}

pub fn l2_manual_wrap(mut d: f64) -> f64 {
    if d > std::f64::consts::PI { d -= TAU; } // L2 line 16
    d
}

pub fn l3_float_eq(a: f64) -> bool {
    a == 0.0 // L3 line 21
}

pub fn l4_stringly(s: &str) -> Result<u32, String> { // L4 line 24
    s.parse().map_err(|_| "bad".to_string())
}

pub fn l5_cast(i: usize) -> f64 {
    i as f64 // L5 line 29
}

#[cfg(test)]
mod tests {
    // Inside a test region none of the expression rules apply.
    #[test]
    fn exempt() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
        assert!(0.25f64.rem_euclid(std::f64::consts::TAU) == 0.25);
    }
}
