//! Lint self-test fixture: every per-file rule must fire exactly at the
//! tilde expectation markers, and nowhere else. This file is never compiled;
//! the integration test feeds it to `analyze_file` under a hot-path
//! library name inside the documented core crates, so L5, the SeqCst
//! hot-path check and L9 are all in scope.

use std::f64::consts::TAU;

/// L1 fires on a bare unwrap in library code.
pub fn l1_unwrap(v: Option<u32>) -> u32 {
    v.unwrap() //~ L1
}

/// An allow marker inside a *string* must not suppress the rule: the
/// v1 engine matched markers on raw source lines and went quiet here.
pub fn l1_marker_in_string(v: Option<u32>) -> u32 {
    let _decoy = "lint:allow(no-panic)";
    v.unwrap() //~ L1
}

/// L2 fires on raw wrap arithmetic outside `geom::angle`.
pub fn l2_raw_wrap(phase: f64) -> f64 {
    phase.rem_euclid(TAU) //~ L2
}

/// L2 also fires on a manual ±π wrap.
pub fn l2_manual_wrap(mut d: f64) -> f64 {
    if d > std::f64::consts::PI { d -= TAU; } //~ L2
    d
}

/// L3 fires on float equality.
pub fn l3_float_eq(a: f64) -> bool {
    a == 0.0 //~ L3
}

/// L4 fires on a stringly-typed public error.
pub fn l4_stringly(s: &str) -> Result<u32, String> { //~ L4
    s.parse().map_err(|_| "bad".to_string())
}

/// L5 fires on an unannotated numeric cast in a hot path.
pub fn l5_cast(i: usize) -> f64 {
    i as f64 //~ L5
}

/// L6 fires when a lock guard is live across observer emission.
pub fn l6_guard_across_emit(obs: &ObsHandle, cache: &CacheLock) {
    let guard = cache.lock();
    obs.emit(|| guard.len()); //~ L6
}

/// L7 fires on a memory ordering without a justification note.
pub fn l7_unjustified(c: &std::sync::atomic::AtomicU64) {
    c.fetch_add(1, std::sync::atomic::Ordering::Relaxed); //~ L7
}

/// L7 rejects `SeqCst` in a hot path even with a note attached.
pub fn l7_seqcst_hot(c: &std::sync::atomic::AtomicU64) {
    // ordering: a note cannot bless SeqCst on the hot path
    c.fetch_add(1, std::sync::atomic::Ordering::SeqCst); //~ L7
}

pub fn l9_undocumented() {} //~ L9

#[cfg(test)]
mod tests {
    // Inside a test region none of the expression rules apply.
    #[test]
    fn exempt() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
        assert!(0.25f64.rem_euclid(std::f64::consts::TAU) == 0.25);
    }
}
