//! Regex-era false positives: every construct here pattern-matches some
//! rule under the v1 line-regex engine but is legal under the v2 token
//! engine. The analyzer must report nothing, even under a hot-path name.

/// `debug_panic!` is not `panic!`: idents now match whole tokens.
pub fn not_a_panic() {
    debug_panic!("only in debug builds");
}

/// `% TAU_HALF` is not `% TAU`: the modulus is a different ident.
pub fn not_a_wrap(phase: f64) -> f64 {
    phase % TAU_HALF
}

/// `std::cmp::Ordering` is not an atomic memory ordering.
pub fn not_an_atomic(a: u32, b: u32) -> bool {
    a.cmp(&b) == std::cmp::Ordering::Less
}

/// `io::Read::read(&mut buf)` takes an argument, so it is not a lock
/// acquisition — no phantom guard may be considered live at the emit.
pub fn not_a_lock(file: &mut std::fs::File, obs: &ObsHandle) -> usize {
    let mut buf = [0u8; 16];
    let n = file.read(&mut buf).unwrap_or_default();
    obs.emit(|| n);
    n
}

/// Rule patterns inside a string literal are not code.
pub fn strings_are_not_scanned() -> &'static str {
    "x.unwrap() then phase % TAU, a == 0.0, i as f64, Ordering::SeqCst"
}
