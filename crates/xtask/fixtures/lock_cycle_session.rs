//! Lock-order fixture, forward half: acquires `cache` then `journal`.
//! Staged as `crates/demo/src/session.rs` by the self-test; on its own
//! this order is fine — the cycle appears only when the reverse order
//! in `lock_cycle_quarantine.rs` joins the workspace graph.

/// Acquire the cache, then the journal while the cache guard is live.
pub fn forward(store: &Store) -> u32 {
    let cache = store.cache.lock();
    let journal = store.journal.lock(); // nested: cache -> journal
    journal.append(cache.generation())
}
