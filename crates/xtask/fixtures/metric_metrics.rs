//! Fixture metrics observer for the L8 self-test, staged as
//! `crates/core/src/obs/metrics.rs`. Registers two consts from the
//! fixture `names.rs` and one raw string literal, which L8 rejects.

/// Register the fixture metrics.
pub fn register(r: &Registry) {
    r.counter(ENGINE_CACHE_HIT);
    r.counter(ENGINE_UNDOCUMENTED);
    r.counter("engine.raw_literal"); // raw literal: L8 fires here
}
