//! Property tests for the hand-rolled lexer underneath the lint engine.
//!
//! Three span invariants hold for *any* input, well-formed Rust or not:
//! every token's byte span is in bounds and on char boundaries, spans
//! are strictly ordered and non-overlapping, and every non-whitespace
//! byte of the source is covered by some token — the lexer may skip
//! whitespace, but it must never silently drop source text, because a
//! dropped byte is a construct no rule can see.
//!
//! Case count follows `PROPTEST_CASES` (default 256).

use proptest::prelude::*;
use xtask::lexer::TokenStream;

/// Assert the three span invariants over one source string.
fn check_spans(src: &str) -> Result<(), proptest::TestCaseError> {
    let ts = TokenStream::lex(src);
    let mut covered = vec![false; src.len()];
    let mut prev_end = 0usize;
    let mut prev_line = 1usize;
    for t in ts.tokens() {
        prop_assert!(
            t.start <= t.end && t.end <= src.len(),
            "span out of bounds: {t:?} over {src:?}"
        );
        prop_assert!(
            src.is_char_boundary(t.start) && src.is_char_boundary(t.end),
            "span splits a char: {t:?} over {src:?}"
        );
        prop_assert!(
            t.start >= prev_end,
            "overlapping or unordered spans at {t:?} over {src:?}"
        );
        prop_assert!(
            t.line >= prev_line,
            "line numbers must be non-decreasing: {t:?} over {src:?}"
        );
        for c in &mut covered[t.start..t.end] {
            *c = true;
        }
        prev_end = t.end;
        prev_line = t.line;
    }
    for (i, ch) in src.char_indices() {
        if !ch.is_whitespace() {
            prop_assert!(
                covered[i],
                "non-whitespace byte {i} ({ch:?}) uncovered in {src:?}"
            );
        }
    }
    Ok(())
}

/// Rust-flavored source fragments: tokens, literals, comments (nested
/// and unterminated), attributes — concatenated into plausible and
/// deliberately broken files alike.
const FRAGMENTS: &[&str] = &[
    "fn spin() ",
    "let x = 0.5f64; ",
    "let y = 1_000; ",
    "let z = 0x_ff; ",
    "\"str \\\" esc\" ",
    "'c' ",
    "'\\n' ",
    "b'\\x7f' ",
    "r\"raw\" ",
    "r#\"raw # quote\"# ",
    "'static ",
    "// line comment\n",
    "/// doc comment\n",
    "//! inner doc\n",
    "/* block /* nested */ */ ",
    "/* unterminated ",
    "\"unterminated ",
    "#[cfg(test)] mod t { } ",
    "x.unwrap() ",
    "Ordering::SeqCst ",
    "phase % TAU ",
    "a == 0.0 ",
    "i as f64 ",
    "::<>(){}[]; ",
    "=> -> ..= ",
    "угол_θ ",
    "\u{a0} ",
    "\t\n  ",
];

/// Concatenations of [`FRAGMENTS`].
fn rustish() -> impl Strategy<Value = String> {
    collection::vec((0usize..FRAGMENTS.len()).prop_map(|i| FRAGMENTS[i]), 0..48)
        .prop_map(|v| v.concat())
}

/// Arbitrary unicode soup (surrogate gaps map to U+FFFD).
fn unicode_soup() -> impl Strategy<Value = String> {
    collection::vec(
        (0u32..0x11_0000).prop_map(|c| char::from_u32(c).unwrap_or('\u{fffd}')),
        0..64,
    )
    .prop_map(|v| v.into_iter().collect())
}

proptest! {
    /// Arbitrary unicode never breaks the span invariants.
    #[test]
    fn spans_sound_on_arbitrary_input(src in unicode_soup()) {
        check_spans(&src)?;
    }

    /// Rust-shaped input (including unterminated literals and comments)
    /// never breaks the span invariants.
    #[test]
    fn spans_sound_on_rustish_input(src in rustish()) {
        check_spans(&src)?;
    }

    /// Lexing is a pure function of the source.
    #[test]
    fn lexing_is_deterministic(src in rustish()) {
        let a = TokenStream::lex(&src);
        let b = TokenStream::lex(&src);
        let pa: Vec<_> = a.tokens().iter().map(|t| (t.kind, t.start, t.end, t.line)).collect();
        let pb: Vec<_> = b.tokens().iter().map(|t| (t.kind, t.start, t.end, t.line)).collect();
        prop_assert_eq!(pa, pb);
    }
}
