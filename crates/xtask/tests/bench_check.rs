//! Self-test for the bench regression gate: identical artifacts must
//! pass, an injected 2x slowdown must fail with a delta table, a broken
//! hardened-vs-permissive (or serve backpressure) invariant must fail
//! even when every baseline metric is within tolerance, and `--bless`
//! must record baselines that a subsequent check accepts.

use std::path::{Path, PathBuf};
use std::process::Command;
use xtask::bench_check::{bless, check, CheckOptions, ARTIFACTS};

const BASELINE_SPECTRUM: &str = include_str!("../fixtures/bench/baseline/BENCH_spectrum.json");
const BASELINE_INGEST: &str = include_str!("../fixtures/bench/baseline/BENCH_ingest.json");
const BASELINE_ROBUSTNESS: &str = include_str!("../fixtures/bench/baseline/BENCH_robustness.json");
const BASELINE_OBS: &str = include_str!("../fixtures/bench/baseline/BENCH_obs.json");
const BASELINE_ESTIMATOR: &str = include_str!("../fixtures/bench/baseline/BENCH_estimator.json");
const BASELINE_SERVE: &str = include_str!("../fixtures/bench/baseline/BENCH_serve.json");
const BASELINE_STORE: &str = include_str!("../fixtures/bench/baseline/BENCH_store.json");
const SLOW_SPECTRUM: &str = include_str!("../fixtures/bench/slow/BENCH_spectrum.json");
const INVERTED_ROBUSTNESS: &str = include_str!("../fixtures/bench/inverted/BENCH_robustness.json");
const INVERTED_SERVE: &str = include_str!("../fixtures/bench/inverted/BENCH_serve.json");
const INVERTED_STORE: &str = include_str!("../fixtures/bench/inverted/BENCH_store.json");

/// Stage a directory holding the seven artifacts with the given contents
/// (the obs, estimator, serve, and store artifacts are never the ones
/// under test, so they stay baseline).
fn stage(tag: &str, spectrum: &str, ingest: &str, robustness: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("xtask-benchcheck-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create staging dir");
    std::fs::write(dir.join("BENCH_spectrum.json"), spectrum).expect("write spectrum");
    std::fs::write(dir.join("BENCH_ingest.json"), ingest).expect("write ingest");
    std::fs::write(dir.join("BENCH_robustness.json"), robustness).expect("write robustness");
    std::fs::write(dir.join("BENCH_obs.json"), BASELINE_OBS).expect("write obs");
    std::fs::write(dir.join("BENCH_estimator.json"), BASELINE_ESTIMATOR).expect("write estimator");
    std::fs::write(dir.join("BENCH_serve.json"), BASELINE_SERVE).expect("write serve");
    std::fs::write(dir.join("BENCH_store.json"), BASELINE_STORE).expect("write store");
    dir
}

fn opts(baselines: &Path, current: &Path) -> CheckOptions {
    CheckOptions {
        baselines: baselines.to_path_buf(),
        current: current.to_path_buf(),
        tolerance: 0.25,
    }
}

#[test]
fn identical_artifacts_pass() {
    let base = stage(
        "idbase",
        BASELINE_SPECTRUM,
        BASELINE_INGEST,
        BASELINE_ROBUSTNESS,
    );
    let cur = stage(
        "idcur",
        BASELINE_SPECTRUM,
        BASELINE_INGEST,
        BASELINE_ROBUSTNESS,
    );
    let report = check(&opts(&base, &cur)).expect("check runs");
    std::fs::remove_dir_all(&base).ok();
    std::fs::remove_dir_all(&cur).ok();
    assert!(
        report.passed(),
        "identical artifacts must pass:\n{report:?}"
    );
    // One row per gated metric per case: 2 spectrum + 4 ingest +
    // 2 robustness + 6 obs + 6 estimator + 3 serve + 2 store.
    assert_eq!(report.rows.len(), 25);
}

#[test]
fn two_x_slowdown_fails_with_delta_table() {
    let base = stage(
        "slowbase",
        BASELINE_SPECTRUM,
        BASELINE_INGEST,
        BASELINE_ROBUSTNESS,
    );
    let cur = stage(
        "slowcur",
        SLOW_SPECTRUM,
        BASELINE_INGEST,
        BASELINE_ROBUSTNESS,
    );
    let report = check(&opts(&base, &cur)).expect("check runs");
    std::fs::remove_dir_all(&base).ok();
    std::fs::remove_dir_all(&cur).ok();
    assert!(!report.passed(), "a 2x slowdown must fail");
    let regressed: Vec<_> = report.rows.iter().filter(|r| r.regressed).collect();
    assert_eq!(
        regressed.len(),
        2,
        "both spectrum cases regressed: {report:?}"
    );
    assert!(regressed.iter().all(|r| r.metric == "mean_ns_fast"));
    let md = report.markdown();
    assert!(
        md.contains("REGRESSED"),
        "table flags the regression:\n{md}"
    );
    assert!(md.contains("+100.0%"), "table carries the delta:\n{md}");
}

#[test]
fn broken_invariant_fails_despite_matching_baseline() {
    // The inverted artifact is its own baseline, so every gated metric is
    // within tolerance — only the hardened <= permissive invariant trips.
    let base = stage(
        "invbase",
        BASELINE_SPECTRUM,
        BASELINE_INGEST,
        INVERTED_ROBUSTNESS,
    );
    let cur = stage(
        "invcur",
        BASELINE_SPECTRUM,
        BASELINE_INGEST,
        INVERTED_ROBUSTNESS,
    );
    let report = check(&opts(&base, &cur)).expect("check runs");
    std::fs::remove_dir_all(&base).ok();
    std::fs::remove_dir_all(&cur).ok();
    assert!(report.rows.iter().all(|r| !r.regressed));
    assert!(!report.passed(), "invariant break must fail the gate");
    assert!(
        report.problems.iter().any(|p| p.contains("invariant")),
        "{report:?}"
    );
}

#[test]
fn broken_serve_invariant_fails_despite_matching_baseline() {
    // Same trick as the robustness test: the inverted serve artifact is
    // its own baseline, so every `shed_rate` row matches — only the hard
    // backpressure invariants (rated must shed nothing, overload_2x must
    // actually shed) can trip the gate.
    let stage_serve = |tag: &str| {
        let dir = stage(tag, BASELINE_SPECTRUM, BASELINE_INGEST, BASELINE_ROBUSTNESS);
        std::fs::write(dir.join("BENCH_serve.json"), INVERTED_SERVE).expect("write serve");
        dir
    };
    let base = stage_serve("srvbase");
    let cur = stage_serve("srvcur");
    let report = check(&opts(&base, &cur)).expect("check runs");
    std::fs::remove_dir_all(&base).ok();
    std::fs::remove_dir_all(&cur).ok();
    assert!(report.rows.iter().all(|r| !r.regressed));
    assert!(!report.passed(), "serve invariant break must fail the gate");
    assert!(
        report.problems.iter().any(|p| p.contains("`rated` shed")),
        "{report:?}"
    );
    assert!(
        report
            .problems
            .iter()
            .any(|p| p.contains("`overload_2x` shed nothing")),
        "{report:?}"
    );
}

#[test]
fn broken_store_invariant_fails_despite_matching_baseline() {
    // The inverted store artifact is its own baseline: `boot_ns` is not a
    // gated metric and `fix_bits_mismatches` matches, so only the hard
    // invariants (warm strictly faster, zero fix divergence) can trip.
    let stage_store = |tag: &str| {
        let dir = stage(tag, BASELINE_SPECTRUM, BASELINE_INGEST, BASELINE_ROBUSTNESS);
        std::fs::write(dir.join("BENCH_store.json"), INVERTED_STORE).expect("write store");
        dir
    };
    let base = stage_store("storebase");
    let cur = stage_store("storecur");
    let report = check(&opts(&base, &cur)).expect("check runs");
    std::fs::remove_dir_all(&base).ok();
    std::fs::remove_dir_all(&cur).ok();
    assert!(!report.passed(), "store invariant break must fail the gate");
    assert!(
        report
            .problems
            .iter()
            .any(|p| p.contains("never change a fix")),
        "{report:?}"
    );
    assert!(
        report
            .problems
            .iter()
            .any(|p| p.contains("not strictly faster")),
        "{report:?}"
    );
}

#[test]
fn missing_baseline_suggests_bless_and_bless_fixes_it() {
    let base = std::env::temp_dir().join(format!("xtask-benchcheck-nobase-{}", std::process::id()));
    let cur = stage(
        "blesscur",
        BASELINE_SPECTRUM,
        BASELINE_INGEST,
        BASELINE_ROBUSTNESS,
    );
    let o = opts(&base, &cur);
    let err = check(&o).expect_err("missing baseline must error");
    assert!(err.to_string().contains("--bless"), "hint missing: {err}");

    let written = bless(&o).expect("bless records baselines");
    assert_eq!(written.len(), ARTIFACTS.len());
    let report = check(&o).expect("check runs after bless");
    std::fs::remove_dir_all(&base).ok();
    std::fs::remove_dir_all(&cur).ok();
    assert!(report.passed(), "freshly blessed baselines must pass");
}

#[test]
fn binary_gates_and_reports() {
    let base = stage(
        "binbase",
        BASELINE_SPECTRUM,
        BASELINE_INGEST,
        BASELINE_ROBUSTNESS,
    );
    let slow = stage(
        "binslow",
        SLOW_SPECTRUM,
        BASELINE_INGEST,
        BASELINE_ROBUSTNESS,
    );

    let run = |current: &Path| {
        Command::new(env!("CARGO_BIN_EXE_xtask"))
            .args(["bench-check", "--baselines"])
            .arg(&base)
            .arg("--current")
            .arg(current)
            .output()
            .expect("run xtask binary")
    };

    let clean = run(&base);
    assert!(
        clean.status.success(),
        "identical artifacts must exit zero: {}",
        String::from_utf8_lossy(&clean.stderr)
    );

    let slow_out = run(&slow);
    std::fs::remove_dir_all(&base).ok();
    std::fs::remove_dir_all(&slow).ok();
    assert!(!slow_out.status.success(), "2x slowdown must exit non-zero");
    let stdout = String::from_utf8_lossy(&slow_out.stdout);
    assert!(
        stdout.contains("| BENCH_spectrum.json |") && stdout.contains("REGRESSED"),
        "binary must print the markdown delta table, got:\n{stdout}"
    );
}

#[test]
fn wider_tolerance_admits_the_slowdown() {
    let base = stage(
        "tolbase",
        BASELINE_SPECTRUM,
        BASELINE_INGEST,
        BASELINE_ROBUSTNESS,
    );
    let slow = stage(
        "tolslow",
        SLOW_SPECTRUM,
        BASELINE_INGEST,
        BASELINE_ROBUSTNESS,
    );
    let mut o = opts(&base, &slow);
    o.tolerance = 1.5;
    let report = check(&o).expect("check runs");
    std::fs::remove_dir_all(&base).ok();
    std::fs::remove_dir_all(&slow).ok();
    assert!(
        report.passed(),
        "+100% is inside a 150% tolerance: {report:?}"
    );
}
