//! Self-test for the lint gate: the `fixtures/violations.rs` file must
//! trip every rule at the marked lines, `fixtures/clean.rs` must pass,
//! and the `xtask lint` binary must exit non-zero with a `file:line`
//! report when pointed at a tree containing violations.

use std::path::Path;
use std::process::Command;
use xtask::{analyze_file, FileKind, Rule};

const VIOLATIONS: &str = include_str!("../fixtures/violations.rs");
const CLEAN: &str = include_str!("../fixtures/clean.rs");

/// A hot-path library name so every rule (including L5) is in scope.
const HOT_REL: &str = "crates/core/src/spectrum.rs";

#[test]
fn violations_fixture_trips_every_rule() {
    let findings = analyze_file(Path::new(HOT_REL), VIOLATIONS, FileKind::Library);
    let hits: Vec<(Rule, usize)> = findings.iter().map(|f| (f.rule, f.line)).collect();
    for (rule, line) in [
        (Rule::NoPanic, 8),
        (Rule::AngleHygiene, 12),
        (Rule::AngleHygiene, 16),
        (Rule::FloatEq, 21),
        (Rule::StringlyError, 24),
        (Rule::LossyCast, 29),
    ] {
        assert!(
            hits.contains(&(rule, line)),
            "expected {rule:?} at line {line}, got {hits:?}"
        );
    }
    // Nothing fires inside the #[cfg(test)] region (lines 32+).
    assert!(
        findings.iter().all(|f| f.line < 32),
        "test region must be exempt: {hits:?}"
    );
}

#[test]
fn clean_fixture_is_silent() {
    let findings = analyze_file(Path::new(HOT_REL), CLEAN, FileKind::Library);
    assert!(
        findings.is_empty(),
        "clean fixture produced findings: {:?}",
        findings.iter().map(|f| f.to_string()).collect::<Vec<_>>()
    );
}

#[test]
fn binary_exits_nonzero_with_file_line_report() {
    // Stage a miniature workspace containing one violating library file.
    let dir = std::env::temp_dir().join(format!("xtask-selftest-{}", std::process::id()));
    let src = dir.join("crates/demo/src");
    std::fs::create_dir_all(&src).expect("create fixture tree");
    std::fs::write(src.join("lib.rs"), VIOLATIONS).expect("write fixture");

    let out = Command::new(env!("CARGO_BIN_EXE_xtask"))
        .args(["lint", "--root"])
        .arg(&dir)
        .output()
        .expect("run xtask binary");
    std::fs::remove_dir_all(&dir).ok();

    assert!(
        !out.status.success(),
        "lint must exit non-zero on violations"
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("crates/demo/src/lib.rs:8:"),
        "report must carry file:line locations, got:\n{stdout}"
    );
}

#[test]
fn binary_exits_zero_on_clean_tree() {
    let dir = std::env::temp_dir().join(format!("xtask-selftest-clean-{}", std::process::id()));
    let src = dir.join("crates/demo/src");
    std::fs::create_dir_all(&src).expect("create fixture tree");
    std::fs::write(src.join("lib.rs"), CLEAN).expect("write fixture");

    let out = Command::new(env!("CARGO_BIN_EXE_xtask"))
        .args(["lint", "--root"])
        .arg(&dir)
        .output()
        .expect("run xtask binary");
    std::fs::remove_dir_all(&dir).ok();

    assert!(out.status.success(), "clean tree must exit zero");
}
