//! Self-tests for the lint gate.
//!
//! The per-file fixtures are marker-driven: `fixtures/violations.rs`
//! carries a `//~ L<n>` comment on every line a rule must fire, and the
//! analyzer's findings must equal that set exactly — no misses, no
//! extras. `fixtures/clean.rs` and `fixtures/false_positive.rs` must be
//! silent. The workspace-level rules (the L6 lock-order graph, the L8
//! inventory cross-check) and the driver semantics (exit codes, the L9
//! warn baseline, `--json`) are exercised against miniature workspaces
//! staged under a temp directory.

use std::path::{Path, PathBuf};
use std::process::Command;
use xtask::{analyze_file, lint_workspace, FileKind, Rule};

const VIOLATIONS: &str = include_str!("../fixtures/violations.rs");
const CLEAN: &str = include_str!("../fixtures/clean.rs");
const FALSE_POSITIVE: &str = include_str!("../fixtures/false_positive.rs");
const LOCK_SESSION: &str = include_str!("../fixtures/lock_cycle_session.rs");
const LOCK_QUARANTINE: &str = include_str!("../fixtures/lock_cycle_quarantine.rs");
const METRIC_NAMES: &str = include_str!("../fixtures/metric_names.rs");
const METRIC_METRICS: &str = include_str!("../fixtures/metric_metrics.rs");
const METRIC_DOC: &str = include_str!("../fixtures/metric_inventory.md");
const BIN_APP: &str = include_str!("../fixtures/bin_app.rs");
const EXAMPLE_DEMO: &str = include_str!("../fixtures/example_demo.rs");

/// A hot-path library name inside the documented core crates, so every
/// rule (L5, the SeqCst hot-path check, L9) is in scope.
const HOT_REL: &str = "crates/core/src/spectrum.rs";

/// Parse the `//~ L<n>` expectation markers out of a fixture: each
/// marker demands exactly one finding of that rule on that line.
fn expected_markers(src: &str) -> Vec<(Rule, usize)> {
    let mut out = Vec::new();
    for (idx, line) in src.lines().enumerate() {
        let Some(pos) = line.find("//~") else {
            continue;
        };
        for code in line[pos + 3..].split_whitespace() {
            let rule = Rule::ALL
                .into_iter()
                .find(|r| r.code() == code)
                .unwrap_or_else(|| panic!("unknown rule code {code:?} in fixture marker"));
            out.push((rule, idx + 1));
        }
    }
    out.sort_by_key(|&(r, l)| (r.code(), l));
    out
}

/// 1-based line of the first fixture line containing `needle`.
fn line_of(src: &str, needle: &str) -> usize {
    src.lines()
        .position(|l| l.contains(needle))
        .unwrap_or_else(|| panic!("needle {needle:?} not in fixture"))
        + 1
}

/// Stage a miniature workspace under a unique temp directory.
fn stage(tag: &str, files: &[(&str, &str)]) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("xtask-selftest-{tag}-{}", std::process::id()));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).expect("clear stale fixture tree");
    }
    for (rel, content) in files {
        let path = dir.join(rel);
        std::fs::create_dir_all(path.parent().expect("rel path has a parent"))
            .expect("create fixture dir");
        std::fs::write(path, content).expect("write fixture file");
    }
    dir
}

/// Run the `xtask lint` binary against a staged root.
fn run_lint(root: &Path, extra: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_xtask"))
        .args(["lint", "--root"])
        .arg(root)
        .args(extra)
        .output()
        .expect("run xtask binary")
}

#[test]
fn violations_fixture_trips_rules_exactly_at_markers() {
    let findings = analyze_file(Path::new(HOT_REL), VIOLATIONS, FileKind::Library);
    let mut hits: Vec<(Rule, usize)> = findings.iter().map(|f| (f.rule, f.line)).collect();
    hits.sort_by_key(|&(r, l)| (r.code(), l));
    let want = expected_markers(VIOLATIONS);
    assert!(
        want.iter().any(|&(r, _)| r == Rule::NoPanic)
            && want.iter().any(|&(r, _)| r == Rule::LockDiscipline)
            && want.iter().any(|&(r, _)| r == Rule::AtomicOrdering)
            && want.iter().any(|&(r, _)| r == Rule::DocCoverage),
        "fixture must cover the v2 rules: {want:?}"
    );
    assert_eq!(
        hits,
        want,
        "findings must match the //~ markers exactly; got {:?}",
        findings.iter().map(|f| f.to_string()).collect::<Vec<_>>()
    );
}

#[test]
fn clean_fixture_is_silent() {
    let findings = analyze_file(Path::new(HOT_REL), CLEAN, FileKind::Library);
    assert!(
        findings.is_empty(),
        "clean fixture produced findings: {:?}",
        findings.iter().map(|f| f.to_string()).collect::<Vec<_>>()
    );
}

#[test]
fn false_positive_fixture_is_silent() {
    let findings = analyze_file(Path::new(HOT_REL), FALSE_POSITIVE, FileKind::Library);
    assert!(
        findings.is_empty(),
        "regex-era constructs must not trip the token engine: {:?}",
        findings.iter().map(|f| f.to_string()).collect::<Vec<_>>()
    );
}

#[test]
fn lock_order_cycle_detected_across_modules() {
    let dir = stage(
        "cycle",
        &[
            ("crates/demo/src/session.rs", LOCK_SESSION),
            ("crates/demo/src/quarantine.rs", LOCK_QUARANTINE),
        ],
    );
    let findings = lint_workspace(&dir).expect("lint staged tree");
    std::fs::remove_dir_all(&dir).ok();

    let cycles: Vec<(String, usize)> = findings
        .iter()
        .filter(|f| f.rule == Rule::LockDiscipline)
        .map(|f| (f.file.to_string_lossy().replace('\\', "/"), f.line))
        .collect();
    assert_eq!(
        cycles,
        vec![
            (
                "crates/demo/src/quarantine.rs".to_string(),
                line_of(LOCK_QUARANTINE, "nested: journal -> cache"),
            ),
            (
                "crates/demo/src/session.rs".to_string(),
                line_of(LOCK_SESSION, "nested: cache -> journal"),
            ),
        ],
        "both edges of the cycle must be reported: {findings:?}"
    );
    assert!(
        findings
            .iter()
            .filter(|f| f.rule == Rule::LockDiscipline)
            .all(|f| f.message.contains("lock-order cycle")),
        "{findings:?}"
    );
    // Either file alone is acyclic: one consistent order is fine.
    let dir = stage("acyclic", &[("crates/demo/src/session.rs", LOCK_SESSION)]);
    let findings = lint_workspace(&dir).expect("lint staged tree");
    std::fs::remove_dir_all(&dir).ok();
    assert!(
        findings.is_empty(),
        "a single consistent order must pass: {findings:?}"
    );
}

#[test]
fn metric_inventory_cross_checked_both_directions() {
    let dir = stage(
        "metrics",
        &[
            ("crates/core/src/obs/names.rs", METRIC_NAMES),
            ("crates/core/src/obs/metrics.rs", METRIC_METRICS),
            ("docs/OBSERVABILITY.md", METRIC_DOC),
        ],
    );
    let findings = lint_workspace(&dir).expect("lint staged tree");
    std::fs::remove_dir_all(&dir).ok();

    let l8: Vec<(String, usize, &str)> = findings
        .iter()
        .filter(|f| f.rule == Rule::MetricNameHygiene)
        .map(|f| {
            (
                f.file.to_string_lossy().replace('\\', "/"),
                f.line,
                f.message.as_str(),
            )
        })
        .collect();
    assert_eq!(l8.len(), 4, "expected 4 L8 findings: {l8:?}");

    // Code -> docs: a const missing from the inventory.
    assert!(
        l8.contains(&(
            "crates/core/src/obs/names.rs".to_string(),
            line_of(METRIC_NAMES, "\"engine.undocumented\""),
            "metric `engine.undocumented` (ENGINE_UNDOCUMENTED) is emitted but missing \
             from the inventory in docs/OBSERVABILITY.md",
        )),
        "{l8:?}"
    );
    // Docs -> code: a stale documented name.
    assert!(
        l8.iter()
            .any(|(file, line, msg)| file == "docs/OBSERVABILITY.md"
                && *line == line_of(METRIC_DOC, "doc.stale")
                && msg.contains("no matching const")),
        "{l8:?}"
    );
    // Declared but never referenced by the observer.
    assert!(
        l8.iter()
            .any(|(file, line, msg)| file == "crates/core/src/obs/names.rs"
                && *line == line_of(METRIC_NAMES, "\"session.orphaned\"")
                && msg.contains("never referenced")),
        "{l8:?}"
    );
    // Raw literal at a registration site.
    assert!(
        l8.iter()
            .any(|(file, line, msg)| file == "crates/core/src/obs/metrics.rs"
                && *line == line_of(METRIC_METRICS, "engine.raw_literal")
                && msg.contains("raw metric-name literal")),
        "{l8:?}"
    );
}

#[test]
fn binaries_get_l1_examples_keep_exemption() {
    let dir = stage(
        "classify",
        &[
            ("src/bin/app.rs", BIN_APP),
            ("examples/demo.rs", EXAMPLE_DEMO),
        ],
    );
    let out = run_lint(&dir, &[]);
    std::fs::remove_dir_all(&dir).ok();

    assert!(
        !out.status.success(),
        "the binary's unwrap must fail the gate"
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains(&format!(
            "src/bin/app.rs:{}: L1",
            line_of(BIN_APP, "fires here")
        )),
        "src/bin/** must get L1 under v2, got:\n{stdout}"
    );
    assert!(
        !stdout.contains("examples/demo.rs"),
        "examples keep the L1 exemption, got:\n{stdout}"
    );
}

#[test]
fn binary_exits_nonzero_with_file_line_report() {
    let dir = stage("errors", &[("crates/demo/src/lib.rs", VIOLATIONS)]);
    let out = run_lint(&dir, &[]);
    std::fs::remove_dir_all(&dir).ok();

    assert!(
        !out.status.success(),
        "lint must exit non-zero on violations"
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains(&format!(
            "crates/demo/src/lib.rs:{}:",
            line_of(VIOLATIONS, "v.unwrap() //~ L1")
        )),
        "report must carry file:line locations, got:\n{stdout}"
    );
}

#[test]
fn binary_exits_zero_on_clean_tree() {
    let dir = stage("clean", &[("crates/demo/src/lib.rs", CLEAN)]);
    let out = run_lint(&dir, &[]);
    std::fs::remove_dir_all(&dir).ok();
    assert!(out.status.success(), "clean tree must exit zero");
}

#[test]
fn l9_warns_gate_against_tracked_baseline() {
    const UNDOCUMENTED: &str =
        "//! Fixture library.\n\n/// Documented.\npub fn documented() {}\n\npub fn undocumented() {}\n";
    let baseline = |budget: usize| {
        format!("{{\"schema\": \"tagspin-lint-baseline/v1\", \"warn_budget\": {budget}}}")
    };

    // Warn-level findings alone, no tracked baseline: report but pass.
    let dir = stage("warn", &[("crates/core/src/lib.rs", UNDOCUMENTED)]);
    let out = run_lint(&dir, &[]);
    assert!(
        out.status.success(),
        "L9 is warn-only without a baseline: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("L9(doc-coverage)"),
        "the warning must still be reported"
    );

    // A tracked budget of 0 turns the same tree into a failure.
    std::fs::create_dir_all(dir.join("crates/xtask")).expect("create baseline dir");
    std::fs::write(dir.join("crates/xtask/lint-baseline.json"), baseline(0))
        .expect("write baseline");
    let out = run_lint(&dir, &[]);
    assert!(
        !out.status.success(),
        "warn count above the baseline must fail"
    );
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("exceeds the tracked baseline"),
        "stderr must name the gate: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // A budget that covers the count passes again.
    std::fs::write(dir.join("crates/xtask/lint-baseline.json"), baseline(1))
        .expect("write baseline");
    let out = run_lint(&dir, &[]);
    std::fs::remove_dir_all(&dir).ok();
    assert!(
        out.status.success(),
        "warn count within the baseline must pass"
    );
}

#[test]
fn json_export_is_schema_valid() {
    let dir = stage("json", &[("crates/demo/src/lib.rs", VIOLATIONS)]);
    let json_path = dir.join("lint.json");
    let out = run_lint(
        &dir,
        &["--json", "--json-out", json_path.to_str().expect("utf8")],
    );
    let written = std::fs::read_to_string(&json_path).expect("read --json-out file");
    std::fs::remove_dir_all(&dir).ok();

    assert!(!out.status.success(), "--json must not mask the exit code");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(stdout, written, "--json-out must mirror stdout");

    let doc = xtask::json::parse(&stdout).expect("stdout is valid JSON");
    assert_eq!(
        doc.get("schema").and_then(|s| s.as_str()),
        Some("tagspin-lint/v1")
    );
    assert_eq!(
        doc.get("rules").and_then(|r| r.as_arr()).map(|a| a.len()),
        Some(9),
        "all nine rules must be declared"
    );
    let findings = doc
        .get("findings")
        .and_then(|f| f.as_arr())
        .expect("findings array");
    assert!(!findings.is_empty());
    for f in findings {
        assert!(f.get("file").and_then(|v| v.as_str()).is_some(), "{f:?}");
        assert!(f.get("line").and_then(|v| v.as_num()).is_some(), "{f:?}");
        assert!(f.get("code").and_then(|v| v.as_str()).is_some(), "{f:?}");
        assert!(f.get("rule").and_then(|v| v.as_str()).is_some(), "{f:?}");
        assert!(
            matches!(
                f.get("severity").and_then(|v| v.as_str()),
                Some("error" | "warn")
            ),
            "{f:?}"
        );
        assert!(f.get("message").and_then(|v| v.as_str()).is_some(), "{f:?}");
    }
    let errors = doc
        .get("counts")
        .and_then(|c| c.get("error"))
        .and_then(|n| n.as_num())
        .expect("error count");
    let warns = doc
        .get("counts")
        .and_then(|c| c.get("warn"))
        .and_then(|n| n.as_num())
        .expect("warn count");
    assert_eq!(errors as usize + warns as usize, findings.len());
}

#[test]
fn json_stdout_is_pure_on_a_clean_tree() {
    // The success banner must not trail the JSON document — a consumer
    // piping `--json` into a parser sees exactly one JSON value.
    let dir = stage("json-clean", &[("crates/demo/src/lib.rs", CLEAN)]);
    let out = run_lint(&dir, &["--json"]);
    std::fs::remove_dir_all(&dir).ok();

    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    let doc = xtask::json::parse(stdout.trim()).expect("stdout is a single JSON document");
    assert_eq!(
        doc.get("findings")
            .and_then(|f| f.as_arr())
            .map(|a| a.len()),
        Some(0)
    );
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("clean"),
        "the banner moves to stderr under --json"
    );
}
