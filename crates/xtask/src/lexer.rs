//! A hand-rolled, dependency-free Rust lexer for the lint engine.
//!
//! The v1 analyzer worked on a *stripped* copy of each file (strings and
//! comments blanked) and matched substrings per line. That design could
//! not see token boundaries (`debug_panic!` matched the `panic!` rule),
//! could not attach trivia (an allow-marker inside a *string literal*
//! suppressed findings), and knew nothing about scopes. This module is
//! the v2 foundation: the full source is tokenized into spanned tokens —
//! identifiers, literals, multi-char operators — with comments kept as
//! first-class trivia so escape hatches and `// ordering:` justifications
//! are only honored where they belong.
//!
//! Invariants (pinned by proptests in `tests/lexer_props.rs`):
//!
//! * every token span is in-bounds and lies on UTF-8 boundaries,
//! * spans are strictly increasing and non-overlapping,
//! * every non-whitespace byte of the source is covered by some token.
//!
//! The lexer never fails: malformed input (unterminated strings or block
//! comments) produces a token running to end-of-file, which is the right
//! behavior for a linter that must not crash on a half-saved buffer.

/// What a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`fn`, `unwrap`, `r#async`).
    Ident,
    /// A lifetime (`'a`, `'static`).
    Lifetime,
    /// A numeric literal, suffix included (`1`, `2.0`, `1e-3`, `7f64`).
    Num,
    /// A string literal: `"…"`, `r"…"`, `r#"…"#`, `b"…"` and friends.
    Str,
    /// A char or byte-char literal (`'x'`, `b'\n'`).
    Char,
    /// A non-doc line comment (`// …`).
    LineComment,
    /// A doc comment (`/// …`, `//! …`, `/** … */`, `/*! … */`).
    DocComment,
    /// A non-doc block comment (`/* … */`, nesting respected).
    BlockComment,
    /// An operator or punctuation token, longest-match multi-char
    /// (`::`, `==`, `!=`, `->`, `..=`, …) or a single character.
    Punct,
}

impl TokenKind {
    /// Whether this token is trivia (a comment) rather than code.
    pub fn is_comment(self) -> bool {
        matches!(
            self,
            TokenKind::LineComment | TokenKind::DocComment | TokenKind::BlockComment
        )
    }
}

/// One token: kind plus byte span plus the 1-based line it starts on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// What the token is.
    pub kind: TokenKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// 1-based line number of `start`.
    pub line: usize,
}

/// A lexed file: every token (comments included) plus the index of the
/// *significant* (non-comment) tokens the rules actually match on.
#[derive(Debug)]
pub struct TokenStream<'a> {
    src: &'a str,
    tokens: Vec<Token>,
    /// Indices into `tokens` of the non-comment tokens, in order.
    sig: Vec<usize>,
}

/// Multi-character operators, longest first so matching is greedy.
const MULTI_PUNCT: [&str; 25] = [
    "<<=", ">>=", "..=", "...", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=", "..", "?.",
];

impl<'a> TokenStream<'a> {
    /// Tokenize `src`. Never fails; see the module docs for the contract.
    pub fn lex(src: &'a str) -> Self {
        let mut lx = Lexer {
            src,
            bytes: src.as_bytes(),
            pos: 0,
            line: 1,
            tokens: Vec::new(),
        };
        lx.run();
        let sig = lx
            .tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| !t.kind.is_comment())
            .map(|(i, _)| i)
            .collect();
        TokenStream {
            src,
            tokens: lx.tokens,
            sig,
        }
    }

    /// The source this stream was lexed from.
    pub fn source(&self) -> &'a str {
        self.src
    }

    /// All tokens, comments included.
    pub fn tokens(&self) -> &[Token] {
        &self.tokens
    }

    /// Indices (into [`TokenStream::tokens`]) of non-comment tokens.
    pub fn significant(&self) -> &[usize] {
        &self.sig
    }

    /// The source text of one token.
    pub fn text(&self, tok: &Token) -> &'a str {
        &self.src[tok.start..tok.end]
    }

    /// The `n`-th significant token, if any.
    pub fn sig_token(&self, n: usize) -> Option<&Token> {
        self.sig.get(n).map(|&i| &self.tokens[i])
    }

    /// The text of the `n`-th significant token (`""` past the end).
    pub fn sig_text(&self, n: usize) -> &'a str {
        self.sig_token(n).map(|t| self.text(t)).unwrap_or("")
    }

    /// Number of significant tokens.
    pub fn sig_len(&self) -> usize {
        self.sig.len()
    }
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: usize,
    tokens: Vec<Token>,
}

impl Lexer<'_> {
    fn run(&mut self) {
        while self.pos < self.bytes.len() {
            let b = self.bytes[self.pos];
            match b {
                b' ' | b'\t' | b'\r' => self.pos += 1,
                b'\n' => {
                    self.pos += 1;
                    self.line += 1;
                }
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'"' => self.string(self.pos),
                b'b' if self.peek(1) == Some(b'"') => self.string(self.pos + 1),
                b'r' if self.raw_string_ahead(1) => self.raw_string(self.pos + 1),
                b'b' if self.peek(1) == Some(b'r') && self.raw_string_ahead(2) => {
                    self.raw_string(self.pos + 2)
                }
                b'b' if self.peek(1) == Some(b'\'') => self.char_or_lifetime(self.pos + 1),
                b'\'' => self.char_or_lifetime(self.pos),
                b'r' if self.peek(1) == Some(b'#') && self.ident_start(self.pos + 2) => {
                    // Raw identifier `r#foo`.
                    let start = self.pos;
                    self.pos += 2;
                    self.consume_ident();
                    self.push(TokenKind::Ident, start);
                }
                _ if b.is_ascii_digit() => self.number(),
                _ if b == b'_' || b.is_ascii_alphabetic() || b >= 0x80 => {
                    let start = self.pos;
                    self.consume_ident();
                    self.push(TokenKind::Ident, start);
                }
                _ => self.punct(),
            }
        }
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    fn ident_start(&self, at: usize) -> bool {
        self.bytes
            .get(at)
            .is_some_and(|&b| b == b'_' || b.is_ascii_alphabetic() || b >= 0x80)
    }

    /// Push a token spanning `start..self.pos`, counting its newlines so
    /// `self.line` stays the line of the *next* token.
    fn push(&mut self, kind: TokenKind, start: usize) {
        let line = self.line;
        self.line += self.bytes[start..self.pos]
            .iter()
            .filter(|&&b| b == b'\n')
            .count();
        self.tokens.push(Token {
            kind,
            start,
            end: self.pos,
            line,
        });
    }

    fn consume_ident(&mut self) {
        while self.pos < self.bytes.len() {
            let b = self.bytes[self.pos];
            if b == b'_' || b.is_ascii_alphanumeric() {
                self.pos += 1;
            } else if b >= 0x80 {
                // Non-ASCII identifier char: skip the whole codepoint.
                self.pos += 1;
                while self.bytes.get(self.pos).is_some_and(|&c| c & 0xC0 == 0x80) {
                    self.pos += 1;
                }
            } else {
                break;
            }
        }
    }

    fn line_comment(&mut self) {
        let start = self.pos;
        let rest = &self.src[self.pos..];
        let len = rest.find('\n').unwrap_or(rest.len());
        self.pos += len;
        let text = &self.src[start..self.pos];
        let kind =
            if (text.starts_with("///") && !text.starts_with("////")) || text.starts_with("//!") {
                TokenKind::DocComment
            } else {
                TokenKind::LineComment
            };
        self.push(kind, start);
    }

    fn block_comment(&mut self) {
        let start = self.pos;
        let text_kind = {
            let t = &self.src[self.pos..];
            if (t.starts_with("/**") && !t.starts_with("/***") && !t.starts_with("/**/"))
                || t.starts_with("/*!")
            {
                TokenKind::DocComment
            } else {
                TokenKind::BlockComment
            }
        };
        self.pos += 2;
        let mut depth = 1usize;
        while self.pos < self.bytes.len() && depth > 0 {
            if self.bytes[self.pos] == b'/' && self.peek(1) == Some(b'*') {
                depth += 1;
                self.pos += 2;
            } else if self.bytes[self.pos] == b'*' && self.peek(1) == Some(b'/') {
                depth -= 1;
                self.pos += 2;
            } else {
                self.pos += 1;
            }
        }
        self.push(text_kind, start);
    }

    /// Ordinary (escaped) string literal; `quote` is the index of `"`.
    fn string(&mut self, quote: usize) {
        let start = self.pos;
        let mut j = quote + 1;
        while j < self.bytes.len() {
            match self.bytes[j] {
                b'\\' => j += 2,
                b'"' => {
                    j += 1;
                    break;
                }
                _ => j += 1,
            }
        }
        self.pos = j.min(self.bytes.len());
        self.push(TokenKind::Str, start);
    }

    /// Whether `r`/`br` at the current position starts a raw string:
    /// `#`* followed by `"` beginning at `self.pos + at`.
    fn raw_string_ahead(&self, at: usize) -> bool {
        let mut j = self.pos + at;
        while self.bytes.get(j) == Some(&b'#') {
            j += 1;
        }
        self.bytes.get(j) == Some(&b'"')
    }

    /// Raw string starting with hashes at `hashes_at`.
    fn raw_string(&mut self, hashes_at: usize) {
        let start = self.pos;
        let mut j = hashes_at;
        let mut hashes = 0usize;
        while self.bytes.get(j) == Some(&b'#') {
            hashes += 1;
            j += 1;
        }
        // j is at the opening quote.
        let body = j + 1;
        let closer: String = std::iter::once('"')
            .chain(std::iter::repeat_n('#', hashes))
            .collect();
        let end = self.src[body.min(self.src.len())..]
            .find(&closer)
            .map(|n| body + n + closer.len())
            .unwrap_or(self.bytes.len());
        self.pos = end;
        self.push(TokenKind::Str, start);
    }

    /// Disambiguate a char literal from a lifetime. `quote` is the index
    /// of the opening `'` (`self.pos` may be one earlier for `b'…'`).
    fn char_or_lifetime(&mut self, quote: usize) {
        let start = self.pos;
        let next = self.bytes.get(quote + 1).copied();
        let is_lifetime = match next {
            Some(b) if b == b'_' || b.is_ascii_alphabetic() => {
                // `'a` followed by another quote is the char 'a'; anything
                // else ident-like is a lifetime.
                let mut j = quote + 2;
                while self
                    .bytes
                    .get(j)
                    .is_some_and(|&c| c == b'_' || c.is_ascii_alphanumeric())
                {
                    j += 1;
                }
                self.bytes.get(j) != Some(&b'\'') || j == quote + 1
            }
            _ => false,
        };
        if is_lifetime && start == quote {
            self.pos = quote + 1;
            while self
                .bytes
                .get(self.pos)
                .is_some_and(|&c| c == b'_' || c.is_ascii_alphanumeric())
            {
                self.pos += 1;
            }
            self.push(TokenKind::Lifetime, start);
            return;
        }
        // Char literal: scan to the closing quote, honoring escapes.
        let mut j = quote + 1;
        match self.bytes.get(j) {
            Some(b'\\') => {
                j += 2;
                while j < self.bytes.len() && self.bytes[j] != b'\'' && self.bytes[j] != b'\n' {
                    j += 1;
                }
                if self.bytes.get(j) == Some(&b'\'') {
                    j += 1;
                }
            }
            Some(_) => {
                j += 1;
                while self.bytes.get(j).is_some_and(|&c| c & 0xC0 == 0x80) {
                    j += 1;
                }
                if self.bytes.get(j) == Some(&b'\'') {
                    j += 1;
                }
            }
            None => {}
        }
        self.pos = j.min(self.bytes.len());
        if self.pos <= start {
            // Degenerate (`'` at EOF): emit it as punct to keep coverage.
            self.pos = start + 1;
            self.push(TokenKind::Punct, start);
            return;
        }
        self.push(TokenKind::Char, start);
    }

    fn number(&mut self) {
        let start = self.pos;
        // Radix prefix?
        if self.bytes[self.pos] == b'0'
            && matches!(
                self.peek(1),
                Some(b'x') | Some(b'X') | Some(b'o') | Some(b'b')
            )
        {
            self.pos += 2;
            while self
                .bytes
                .get(self.pos)
                .is_some_and(|&b| b.is_ascii_alphanumeric() || b == b'_')
            {
                self.pos += 1;
            }
            self.push(TokenKind::Num, start);
            return;
        }
        let mut seen_dot = false;
        while self.pos < self.bytes.len() {
            let b = self.bytes[self.pos];
            if b.is_ascii_digit() || b == b'_' {
                self.pos += 1;
            } else if b == b'.' && !seen_dot {
                // `1.` or `1.5` but not `1..2` or `1.method()`.
                match self.peek(1) {
                    Some(n) if n.is_ascii_digit() => {
                        seen_dot = true;
                        self.pos += 1;
                    }
                    Some(b'.') => break,
                    Some(n) if n == b'_' || n.is_ascii_alphabetic() => break,
                    _ => {
                        seen_dot = true;
                        self.pos += 1;
                    }
                }
            } else if (b == b'e' || b == b'E')
                && self.peek(1).is_some_and(|n| {
                    n.is_ascii_digit()
                        || ((n == b'+' || n == b'-')
                            && self.peek(2).is_some_and(|m| m.is_ascii_digit()))
                })
            {
                self.pos += 2; // the `e` and the sign-or-digit
                seen_dot = true; // an exponent makes it float-like
            } else if b.is_ascii_alphabetic() {
                // Suffix (`f64`, `u32`, `usize`).
                self.consume_ident();
                break;
            } else {
                break;
            }
        }
        self.push(TokenKind::Num, start);
    }

    fn punct(&mut self) {
        let start = self.pos;
        let rest = &self.src[self.pos..];
        for op in MULTI_PUNCT {
            if rest.starts_with(op) {
                self.pos += op.len();
                self.push(TokenKind::Punct, start);
                return;
            }
        }
        // Single byte — or a whole codepoint for stray non-ASCII.
        self.pos += 1;
        while self.bytes.get(self.pos).is_some_and(|&c| c & 0xC0 == 0x80) {
            self.pos += 1;
        }
        self.push(TokenKind::Punct, start);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        let ts = TokenStream::lex(src);
        ts.tokens()
            .iter()
            .map(|t| (t.kind, ts.text(t).to_string()))
            .collect()
    }

    #[test]
    fn idents_keywords_and_puncts() {
        let toks = kinds("fn f(x: f64) -> bool { x != 0.5 }");
        let texts: Vec<&str> = toks.iter().map(|(_, s)| s.as_str()).collect();
        assert_eq!(
            texts,
            vec!["fn", "f", "(", "x", ":", "f64", ")", "->", "bool", "{", "x", "!=", "0.5", "}"]
        );
        assert_eq!(toks[12].0, TokenKind::Num);
        assert_eq!(toks[7].0, TokenKind::Punct);
    }

    #[test]
    fn comments_are_trivia_with_doc_flag() {
        let toks = kinds("/// doc\n// plain\n/*! inner */ /* block */ x");
        assert_eq!(toks[0].0, TokenKind::DocComment);
        assert_eq!(toks[1].0, TokenKind::LineComment);
        assert_eq!(toks[2].0, TokenKind::DocComment);
        assert_eq!(toks[3].0, TokenKind::BlockComment);
        assert_eq!(toks[4].0, TokenKind::Ident);
        let ts = TokenStream::lex("/// doc\nfn x() {}");
        assert_eq!(ts.significant().len(), 6, "comment excluded from sig");
    }

    #[test]
    fn strings_chars_lifetimes() {
        let toks = kinds(r##"let s = r#"panic!("x")"#; let c = '%'; let l: &'static str = "q";"##);
        let strs: Vec<_> = toks.iter().filter(|(k, _)| *k == TokenKind::Str).collect();
        assert_eq!(strs.len(), 2);
        assert!(toks
            .iter()
            .any(|(k, s)| *k == TokenKind::Char && s == "'%'"));
        assert!(toks
            .iter()
            .any(|(k, s)| *k == TokenKind::Lifetime && s == "'static"));
    }

    #[test]
    fn numbers_with_suffixes_and_ranges() {
        let toks = kinds("1..2 1.5e-3 0x1F 7f64 1_000 x.0");
        let nums: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Num)
            .map(|(_, s)| s.as_str())
            .collect();
        assert_eq!(nums, vec!["1", "2", "1.5e-3", "0x1F", "7f64", "1_000", "0"]);
        assert!(toks
            .iter()
            .any(|(k, s)| *k == TokenKind::Punct && s == ".."));
    }

    #[test]
    fn method_call_on_literal_is_not_a_float() {
        let toks = kinds("1.max(2)");
        assert_eq!(toks[0], (TokenKind::Num, "1".to_string()));
        assert_eq!(toks[1], (TokenKind::Punct, ".".to_string()));
        assert_eq!(toks[2], (TokenKind::Ident, "max".to_string()));
    }

    #[test]
    fn lines_are_tracked_across_multiline_tokens() {
        let src = "a\n/* two\nlines */ b\n\"s\ntr\" c";
        let ts = TokenStream::lex(src);
        let by_text: Vec<(String, usize)> = ts
            .tokens()
            .iter()
            .map(|t| (ts.text(t).to_string(), t.line))
            .collect();
        assert_eq!(by_text[0], ("a".to_string(), 1));
        assert_eq!(by_text[1].1, 2, "block comment starts on line 2");
        assert_eq!(by_text[2], ("b".to_string(), 3));
        assert_eq!(by_text[4], ("c".to_string(), 5));
    }

    #[test]
    fn unterminated_inputs_do_not_panic() {
        for src in ["\"open", "/* open", "r#\"open", "'", "b'"] {
            let ts = TokenStream::lex(src);
            assert!(!ts.tokens().is_empty(), "{src:?} lexed to nothing");
        }
    }

    #[test]
    fn spans_cover_all_non_whitespace() {
        let src = "fn f() { let x = \"s\"; // c\n x + 'a' }";
        let ts = TokenStream::lex(src);
        let mut covered = vec![false; src.len()];
        for t in ts.tokens() {
            for c in covered.iter_mut().take(t.end).skip(t.start) {
                *c = true;
            }
        }
        for (i, b) in src.bytes().enumerate() {
            if !b.is_ascii_whitespace() {
                assert!(covered[i], "byte {i} ({:?}) uncovered", b as char);
            }
        }
    }
}
