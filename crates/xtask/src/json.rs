//! The dependency-free JSON reader shared by the artifact gates.
//!
//! The workspace's machine-readable artifacts — `BENCH_*.json` from the
//! bench crate and `tagspin-metrics/v1` exports from the observability
//! layer — are written by hand-rolled serializers in a deliberately flat
//! dialect. This module is the matching reader: strings, numbers, bools,
//! `null`, arrays and objects, nothing exotic (no unicode escapes, no
//! duplicate-key policy beyond first-wins lookup). It exists so the gate
//! binaries stay dependency-free, and it is public so the workspace's
//! round-trip tests can parse what the serializers emit.

/// A parsed JSON value, covering exactly the artifact dialect.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always read as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in document order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup (first match wins); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Serialize a value in the artifact dialect: pretty-printed with
/// two-space indents, keys in document order, numbers in shortest-f64
/// form. Everything this emits round-trips through [`parse`].
pub fn to_string(value: &Value) -> String {
    let mut out = String::new();
    write_value(value, 0, &mut out);
    out.push('\n');
    out
}

fn write_value(value: &Value, indent: usize, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Num(n) => write_num(*n, out),
        Value::Str(s) => write_str(s, out),
        Value::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('\n');
                push_indent(indent + 1, out);
                write_value(item, indent + 1, out);
            }
            out.push('\n');
            push_indent(indent, out);
            out.push(']');
        }
        Value::Obj(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('\n');
                push_indent(indent + 1, out);
                write_str(key, out);
                out.push_str(": ");
                write_value(val, indent + 1, out);
            }
            out.push('\n');
            push_indent(indent, out);
            out.push('}');
        }
    }
}

fn push_indent(levels: usize, out: &mut String) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn write_num(n: f64, out: &mut String) {
    if n.fract() == 0.0 && n.abs() < 1e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            _ => out.push(c),
        }
    }
    out.push('"');
}

/// Parse one complete JSON document (trailing garbage is an error).
///
/// # Errors
///
/// A human-readable description with a byte offset.
pub fn parse(text: &str) -> Result<Value, String> {
    Parser::new(text).document()
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        match self.peek() {
            Some(b) if b == byte => {
                self.pos += 1;
                Ok(())
            }
            other => Err(format!(
                "expected `{}` at byte {}, found {:?}",
                byte as char,
                self.pos,
                other.map(|b| b as char)
            )),
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            )),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(pairs));
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            let val = self.value()?;
            pairs.push((key, val));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                other => {
                    return Err(format!(
                        "expected `,` or `}}` at byte {}, found {:?}",
                        self.pos,
                        other.map(|b| b as char)
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                other => {
                    return Err(format!(
                        "expected `,` or `]` at byte {}, found {:?}",
                        self.pos,
                        other.map(|b| b as char)
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    // The artifact dialect rarely emits escapes, but
                    // tolerate the simple ones so hand-edited files parse.
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        other => {
                            return Err(format!(
                                "unsupported escape {:?} at byte {}",
                                other.map(|b| *b as char),
                                self.pos
                            ))
                        }
                    }
                    self.pos += 1;
                }
                Some(&b) => {
                    out.push(b as char);
                    self.pos += 1;
                }
                None => return Err("unterminated string".to_string()),
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("invalid number bytes at {start}"))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|e| format!("bad number `{text}` at byte {start}: {e}"))
    }

    fn document(mut self) -> Result<Value, String> {
        let v = self.value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(format!("trailing garbage at byte {}", self.pos));
        }
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_value_kind() {
        let v = parse(
            r#"{"s": "x", "n": -1.5e3, "b": true, "z": null, "a": [1, false, "y"], "o": {}}"#,
        )
        .expect("parse");
        assert_eq!(v.get("s").and_then(Value::as_str), Some("x"));
        assert_eq!(v.get("n").and_then(Value::as_num), Some(-1500.0));
        assert_eq!(v.get("b"), Some(&Value::Bool(true)));
        assert_eq!(v.get("z"), Some(&Value::Null));
        assert_eq!(
            v.get("a"),
            Some(&Value::Arr(vec![
                Value::Num(1.0),
                Value::Bool(false),
                Value::Str("y".into())
            ]))
        );
        assert_eq!(v.get("o"), Some(&Value::Obj(Vec::new())));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn rejects_truncation_and_trailing_garbage() {
        assert!(parse("{\"a\": 1").is_err());
        assert!(parse("{} x").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn unescapes_simple_escapes() {
        let v = parse(r#"{"k": "a\"b\\c\nd"}"#).expect("parse");
        assert_eq!(v.get("k").and_then(Value::as_str), Some("a\"b\\c\nd"));
    }

    #[test]
    fn emitter_round_trips() {
        let v = Value::Obj(vec![
            ("s".to_string(), Value::Str("a\"b\\c\nd".to_string())),
            ("n".to_string(), Value::Num(-1.5)),
            ("i".to_string(), Value::Num(42.0)),
            ("b".to_string(), Value::Bool(true)),
            ("z".to_string(), Value::Null),
            (
                "a".to_string(),
                Value::Arr(vec![Value::Num(1.0), Value::Str("x".to_string())]),
            ),
            ("eo".to_string(), Value::Obj(Vec::new())),
            ("ea".to_string(), Value::Arr(Vec::new())),
        ]);
        let text = to_string(&v);
        assert_eq!(parse(&text).expect("round-trip"), v);
    }
}
