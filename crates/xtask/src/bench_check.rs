//! `cargo xtask bench-check`: the benchmark regression gate.
//!
//! Compares freshly generated `BENCH_*.json` artifacts against the
//! committed baselines under `bench/baselines/` and fails when a
//! lower-is-better metric regresses past the configured tolerance
//! (default 25%, sized for quick-mode jitter on shared CI runners).
//!
//! Seven artifacts are checked, one per bench schema:
//!
//! | artifact               | schema                        | gated metrics |
//! |------------------------|-------------------------------|---------------|
//! | `BENCH_spectrum.json`  | `tagspin-bench-spectrum/v1`   | `mean_ns_fast` |
//! | `BENCH_ingest.json`    | `tagspin-bench-ingest/v1`     | `mean_ingest_ns`, `mean_fix_refresh_ns` |
//! | `BENCH_robustness.json`| `tagspin-bench-robustness/v1` | `median_err_on_m` |
//! | `BENCH_obs.json`       | `tagspin-bench-obs/v1`        | `mean_ingest_ns`, `min_fix_refresh_ns` |
//! | `BENCH_estimator.json` | `tagspin-bench-estimator/v1`  | `median_err_spectrum_m`, `median_err_ml_m`, `median_err_hybrid_m` |
//! | `BENCH_serve.json`     | `tagspin-bench-serve/v1`      | `shed_rate` |
//! | `BENCH_store.json`     | `tagspin-bench-store/v1`      | `fix_bits_mismatches` |
//!
//! The obs artifact measures the same streaming fixture under three
//! observer arms (disabled `NullObserver`, `MetricsObserver`,
//! `RecordingObserver`). Gating its per-arm means against the baseline
//! keeps both the disabled path *and* the enabled paths from silently
//! growing; the disabled-path-vs-pre-instrumentation claim is separately
//! covered by `BENCH_ingest.json`, whose baseline predates the
//! observability layer and is deliberately not re-blessed.
//!
//! The robustness artifact additionally carries a *hard invariant*,
//! independent of any baseline: at every fault rate of at least 10% the
//! hardened (quarantine-on) arm must not lose to the permissive arm on
//! median 2D error. That is the paper-level claim the fault-injection
//! subsystem exists to defend; a tolerance cannot excuse breaking it.
//!
//! The estimator artifact carries its own hard invariants, defending the
//! claims the ML backend shipped under: on the clean canonical scenario
//! (fault rate 0) the ML and hybrid arms must match or beat the spectrum
//! arm's median 2D error within a small quick-median jitter slack, and at
//! every fault rate of at least 10% they must degrade no worse than the
//! hardened spectrum arm within a slightly wider slack.
//!
//! The serve artifact's hard invariants defend the fleet daemon's
//! backpressure contract: every case must conserve its accounting
//! (`reports_accepted + reports_shed == reports_sent`); the `rated` case
//! (paced below the pinned service capacity) must shed nothing; the
//! `overload_2x` case must actually shed (proof the drive really
//! overloaded the queues instead of blocking) while its p99 fix latency
//! stays under a generous absolute bound — a full shard queue may delay
//! a query, never starve it.
//!
//! The store artifact's hard invariants defend the calibration store's
//! warm-boot contract: both the `cold` and `warm` cases must be present;
//! the warm boot must be *strictly faster* than the cold one (the warm
//! path's work — read, CRC, decode, spot-check — is a strict subset of
//! the cold path's trig build plus persist, so this holds on any
//! machine); the warm case must actually hit the store and the cold case
//! must actually populate it; and `fix_bits_mismatches` must be exactly
//! zero in every case — a store, cold or warm, must never change a fix.
//!
//! `--bless` copies the current artifacts over the baselines instead of
//! comparing, after validating that each parses with the expected schema.
//!
//! The JSON involved is the flat hand-rolled dialect the bench crate
//! emits, read with the dependency-free parser in [`crate::json`] rather
//! than a serde dependency.

use crate::json::{self, Value};
use std::fmt;
use std::path::{Path, PathBuf};

/// A bench artifact the gate knows how to compare.
#[derive(Debug, Clone, Copy)]
pub struct ArtifactSpec {
    /// File name, identical under the baselines and current directories.
    pub file: &'static str,
    /// Required value of the document's `schema` field.
    pub schema: &'static str,
    /// Lower-is-better numeric per-case metrics held to the baseline.
    pub metrics: &'static [&'static str],
}

/// The seven gated artifacts.
pub const ARTIFACTS: [ArtifactSpec; 7] = [
    ArtifactSpec {
        file: "BENCH_spectrum.json",
        schema: "tagspin-bench-spectrum/v1",
        metrics: &["mean_ns_fast"],
    },
    ArtifactSpec {
        file: "BENCH_ingest.json",
        schema: "tagspin-bench-ingest/v1",
        metrics: &["mean_ingest_ns", "mean_fix_refresh_ns"],
    },
    ArtifactSpec {
        file: "BENCH_robustness.json",
        schema: "tagspin-bench-robustness/v1",
        metrics: &["median_err_on_m"],
    },
    ArtifactSpec {
        file: "BENCH_obs.json",
        schema: "tagspin-bench-obs/v1",
        metrics: &["mean_ingest_ns", "min_fix_refresh_ns"],
    },
    ArtifactSpec {
        file: "BENCH_estimator.json",
        schema: "tagspin-bench-estimator/v1",
        metrics: &[
            "median_err_spectrum_m",
            "median_err_ml_m",
            "median_err_hybrid_m",
        ],
    },
    ArtifactSpec {
        file: "BENCH_serve.json",
        schema: "tagspin-bench-serve/v1",
        metrics: &["shed_rate"],
    },
    ArtifactSpec {
        file: "BENCH_store.json",
        schema: "tagspin-bench-store/v1",
        metrics: &["fix_bits_mismatches"],
    },
];

/// How the gate runs: where to find files and how much slack to allow.
#[derive(Debug, Clone)]
pub struct CheckOptions {
    /// Directory holding the committed baseline artifacts.
    pub baselines: PathBuf,
    /// Directory holding the freshly generated artifacts.
    pub current: PathBuf,
    /// Relative slack on lower-is-better metrics (0.25 = +25% allowed).
    pub tolerance: f64,
}

/// One compared metric, ready for the delta table.
#[derive(Debug, Clone)]
pub struct DeltaRow {
    /// Artifact file name.
    pub artifact: &'static str,
    /// Case name inside the artifact.
    pub case: String,
    /// Metric name.
    pub metric: &'static str,
    /// Baseline value.
    pub baseline: f64,
    /// Current value.
    pub current: f64,
    /// Whether the current value regressed past tolerance.
    pub regressed: bool,
}

impl DeltaRow {
    /// Relative change, `+0.50` meaning 50% slower/worse.
    pub fn delta(&self) -> f64 {
        if self.baseline.abs() < f64::EPSILON {
            if self.current.abs() < f64::EPSILON {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            self.current / self.baseline - 1.0
        }
    }
}

/// Everything the gate concluded: the per-metric table plus hard failures
/// that are not tied to a single table row (missing files, bad schemas,
/// broken invariants, vanished cases).
#[derive(Debug, Default)]
pub struct CheckReport {
    /// Per-metric comparisons, in artifact/case order.
    pub rows: Vec<DeltaRow>,
    /// Failures not expressible as a table row.
    pub problems: Vec<String>,
}

impl CheckReport {
    /// True when nothing regressed and no structural problem was found.
    pub fn passed(&self) -> bool {
        self.problems.is_empty() && self.rows.iter().all(|r| !r.regressed)
    }

    /// Render the delta table (and any problems) as GitHub-flavored
    /// markdown, suitable for `$GITHUB_STEP_SUMMARY`.
    pub fn markdown(&self) -> String {
        let mut out = String::from("### Bench regression gate\n\n");
        out.push_str("| artifact | case | metric | baseline | current | delta | status |\n");
        out.push_str("|---|---|---|---:|---:|---:|---|\n");
        for r in &self.rows {
            let delta = r.delta();
            let delta_str = if delta.is_infinite() {
                "inf".to_string()
            } else {
                format!("{:+.1}%", delta * 100.0)
            };
            out.push_str(&format!(
                "| {} | {} | {} | {:.4} | {:.4} | {} | {} |\n",
                r.artifact,
                r.case,
                r.metric,
                r.baseline,
                r.current,
                delta_str,
                if r.regressed { "REGRESSED" } else { "ok" },
            ));
        }
        if !self.problems.is_empty() {
            out.push_str("\n**Problems:**\n\n");
            for p in &self.problems {
                out.push_str(&format!("- {p}\n"));
            }
        }
        out.push_str(&format!(
            "\n{}\n",
            if self.passed() {
                "All benchmarks within tolerance."
            } else {
                "Benchmark regression detected."
            }
        ));
        out
    }
}

/// A failure of the gate machinery itself (as opposed to a regression,
/// which is a [`CheckReport`] outcome).
#[derive(Debug)]
pub enum BenchCheckError {
    /// A file could not be read or written.
    Io {
        /// The path involved.
        path: PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
    /// A baseline artifact is missing entirely.
    MissingBaseline {
        /// The absent path.
        path: PathBuf,
    },
    /// An artifact failed to parse or had the wrong schema.
    Malformed {
        /// The offending path.
        path: PathBuf,
        /// What went wrong.
        detail: String,
    },
}

impl fmt::Display for BenchCheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BenchCheckError::Io { path, source } => {
                write!(f, "{}: {source}", path.display())
            }
            BenchCheckError::MissingBaseline { path } => write!(
                f,
                "missing baseline {}; generate the artifacts and run \
                 `cargo xtask bench-check --bless` to record them",
                path.display()
            ),
            BenchCheckError::Malformed { path, detail } => {
                write!(f, "{}: {detail}", path.display())
            }
        }
    }
}

impl std::error::Error for BenchCheckError {}

/// One bench case: its name and every numeric field.
#[derive(Debug, Clone)]
pub struct BenchCase {
    /// The case's `name` field.
    pub name: String,
    /// All numeric fields, in document order.
    pub metrics: Vec<(String, f64)>,
}

impl BenchCase {
    /// Look up a numeric field by name.
    pub fn metric(&self, name: &str) -> Option<f64> {
        self.metrics
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| *v)
    }
}

/// A parsed bench artifact: schema tag plus flat cases.
#[derive(Debug, Clone)]
pub struct BenchDoc {
    /// The document's `schema` field.
    pub schema: String,
    /// The document's cases.
    pub cases: Vec<BenchCase>,
}

/// Parse a bench artifact from its JSON text. Internal: callers go
/// through [`check`]/[`bless`], which wrap the error with the file path.
fn parse_doc(text: &str) -> Result<BenchDoc, String> {
    let root = json::parse(text)?;
    let schema = root
        .get("schema")
        .and_then(Value::as_str)
        .ok_or("missing string `schema` field")?
        .to_string();
    let cases_val = root.get("cases").ok_or("missing `cases` field")?;
    let Value::Arr(items) = cases_val else {
        return Err("`cases` is not an array".to_string());
    };
    let mut cases = Vec::with_capacity(items.len());
    for (i, item) in items.iter().enumerate() {
        let Value::Obj(pairs) = item else {
            return Err(format!("case {i} is not an object"));
        };
        let name = item
            .get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("case {i} has no string `name`"))?
            .to_string();
        let metrics = pairs
            .iter()
            .filter_map(|(k, v)| v.as_num().map(|n| (k.clone(), n)))
            .collect();
        cases.push(BenchCase { name, metrics });
    }
    Ok(BenchDoc { schema, cases })
}

fn load_doc(path: &Path, want_schema: &str) -> Result<BenchDoc, BenchCheckError> {
    let text = std::fs::read_to_string(path).map_err(|source| BenchCheckError::Io {
        path: path.to_path_buf(),
        source,
    })?;
    let doc = parse_doc(&text).map_err(|detail| BenchCheckError::Malformed {
        path: path.to_path_buf(),
        detail,
    })?;
    if doc.schema != want_schema {
        return Err(BenchCheckError::Malformed {
            path: path.to_path_buf(),
            detail: format!("schema `{}`, expected `{want_schema}`", doc.schema),
        });
    }
    Ok(doc)
}

/// The robustness invariant: at fault rates of at least this, hardened
/// must not lose to permissive on median error.
const INVARIANT_MIN_RATE: f64 = 0.1;

fn robustness_invariant(doc: &BenchDoc, problems: &mut Vec<String>) {
    for case in &doc.cases {
        let (Some(rate), Some(on), Some(off)) = (
            case.metric("fault_rate"),
            case.metric("median_err_on_m"),
            case.metric("median_err_off_m"),
        ) else {
            problems.push(format!(
                "robustness case `{}` lacks fault_rate/median fields",
                case.name
            ));
            continue;
        };
        if rate >= INVARIANT_MIN_RATE && on > off {
            problems.push(format!(
                "robustness invariant broken at fault rate {:.0}%: hardened median \
                 {on:.4} m exceeds permissive {off:.4} m (case `{}`)",
                rate * 100.0,
                case.name
            ));
        }
    }
}

/// Estimator invariant slack on the clean (fault rate 0) scenario:
/// absorbs quick-mode median jitter while still meaning "matches".
const ESTIMATOR_CLEAN_SLACK_M: f64 = 0.002;

/// Estimator invariant slack at fault rates of at least
/// [`INVARIANT_MIN_RATE`]: ML/hybrid must degrade no worse than the
/// hardened spectrum arm within this margin.
const ESTIMATOR_FAULT_SLACK_M: f64 = 0.005;

fn estimator_invariant(doc: &BenchDoc, problems: &mut Vec<String>) {
    for case in &doc.cases {
        let (Some(rate), Some(spectrum), Some(ml), Some(hybrid)) = (
            case.metric("fault_rate"),
            case.metric("median_err_spectrum_m"),
            case.metric("median_err_ml_m"),
            case.metric("median_err_hybrid_m"),
        ) else {
            problems.push(format!(
                "estimator case `{}` lacks fault_rate/median fields",
                case.name
            ));
            continue;
        };
        let (slack, claim) = if rate <= 0.0 {
            (
                ESTIMATOR_CLEAN_SLACK_M,
                "match or beat spectrum on the clean scenario",
            )
        } else if rate >= INVARIANT_MIN_RATE {
            (
                ESTIMATOR_FAULT_SLACK_M,
                "degrade no worse than hardened spectrum",
            )
        } else {
            continue;
        };
        for (arm, err) in [("ml", ml), ("hybrid", hybrid)] {
            if err > spectrum + slack {
                problems.push(format!(
                    "estimator invariant broken at fault rate {:.0}%: {arm} median \
                     {err:.4} m must {claim} ({spectrum:.4} m + {slack:.3} m slack, \
                     case `{}`)",
                    rate * 100.0,
                    case.name
                ));
            }
        }
    }
}

/// Absolute ceiling on the `overload_2x` p99 fix-latency, nanoseconds.
/// Generous (2 s) on purpose: the claim is "bounded, never starved", not
/// a micro-latency target, and it must hold on loaded CI runners.
const SERVE_P99_BOUND_NS: f64 = 2e9;

fn serve_invariant(doc: &BenchDoc, problems: &mut Vec<String>) {
    for case in &doc.cases {
        let (Some(sent), Some(accepted), Some(shed)) = (
            case.metric("reports_sent"),
            case.metric("reports_accepted"),
            case.metric("reports_shed"),
        ) else {
            problems.push(format!(
                "serve case `{}` lacks reports_sent/accepted/shed fields",
                case.name
            ));
            continue;
        };
        if (accepted + shed - sent).abs() > 0.5 {
            problems.push(format!(
                "serve accounting broken in case `{}`: accepted {accepted:.0} + \
                 shed {shed:.0} != sent {sent:.0} — a report went missing untyped",
                case.name
            ));
        }
        match case.name.as_str() {
            "rated" if shed > 0.0 => {
                problems.push(format!(
                    "serve invariant broken: `rated` shed {shed:.0} of {sent:.0} \
                     reports — below rated load the queues must absorb everything"
                ));
            }
            "overload_2x" => {
                if shed <= 0.0 {
                    problems.push(
                        "serve invariant broken: `overload_2x` shed nothing — the \
                         drive did not overload the queues (or the daemon blocked \
                         instead of shedding)"
                            .to_string(),
                    );
                }
                match case.metric("p99_fix_latency_ns") {
                    Some(p99) if p99 > SERVE_P99_BOUND_NS => problems.push(format!(
                        "serve invariant broken: `overload_2x` p99 fix latency \
                         {:.0} ms exceeds the {:.0} ms bound — queries must stay \
                         answerable under overload",
                        p99 / 1e6,
                        SERVE_P99_BOUND_NS / 1e6
                    )),
                    Some(_) => {}
                    None => problems
                        .push("serve case `overload_2x` lacks p99_fix_latency_ns".to_string()),
                }
            }
            _ => {}
        }
    }
    for required in ["rated", "overload_2x"] {
        if !doc.cases.iter().any(|c| c.name == required) {
            problems.push(format!("serve artifact lacks required case `{required}`"));
        }
    }
}

fn store_invariant(doc: &BenchDoc, problems: &mut Vec<String>) {
    for required in ["cold", "warm"] {
        if !doc.cases.iter().any(|c| c.name == required) {
            problems.push(format!("store artifact lacks required case `{required}`"));
        }
    }
    for case in &doc.cases {
        match case.metric("fix_bits_mismatches") {
            Some(m) if m > 0.0 => problems.push(format!(
                "store invariant broken: case `{}` has {m:.0} fix bit-mismatches — \
                 a calibration store must never change a fix",
                case.name
            )),
            Some(_) => {}
            None => problems.push(format!(
                "store case `{}` lacks fix_bits_mismatches",
                case.name
            )),
        }
    }
    let cold = doc.cases.iter().find(|c| c.name == "cold");
    let warm = doc.cases.iter().find(|c| c.name == "warm");
    if let (Some(cold), Some(warm)) = (cold, warm) {
        match (cold.metric("boot_ns"), warm.metric("boot_ns")) {
            (Some(c), Some(w)) if w >= c => problems.push(format!(
                "store invariant broken: warm boot {:.1} ms is not strictly faster \
                 than cold boot {:.1} ms — the store is not paying for itself",
                w / 1e6,
                c / 1e6
            )),
            (Some(_), Some(_)) => {}
            _ => problems.push("store cold/warm cases lack boot_ns".to_string()),
        }
        if cold.metric("store_persisted").is_none_or(|p| p <= 0.0) {
            problems.push(
                "store invariant broken: `cold` persisted nothing — the warm case \
                 would be measuring an empty store"
                    .to_string(),
            );
        }
        if warm.metric("store_hits").is_none_or(|h| h <= 0.0) {
            problems.push(
                "store invariant broken: `warm` hit the store zero times — every \
                 table was rebuilt from scratch"
                    .to_string(),
            );
        }
    }
}

/// Compare the current artifacts against the baselines.
///
/// # Errors
///
/// Fails fast on unreadable or malformed files and on missing baselines
/// (with a `--bless` hint); regressions are reported through the returned
/// [`CheckReport`], not as errors.
pub fn check(opts: &CheckOptions) -> Result<CheckReport, BenchCheckError> {
    let mut report = CheckReport::default();
    for spec in ARTIFACTS {
        let base_path = opts.baselines.join(spec.file);
        if !base_path.is_file() {
            return Err(BenchCheckError::MissingBaseline { path: base_path });
        }
        let base = load_doc(&base_path, spec.schema)?;
        let cur = load_doc(&opts.current.join(spec.file), spec.schema)?;

        for bc in &base.cases {
            let Some(cc) = cur.cases.iter().find(|c| c.name == bc.name) else {
                report.problems.push(format!(
                    "{}: case `{}` present in baseline but missing from current run",
                    spec.file, bc.name
                ));
                continue;
            };
            for &metric in spec.metrics {
                let (Some(b), Some(c)) = (bc.metric(metric), cc.metric(metric)) else {
                    report.problems.push(format!(
                        "{}: case `{}` lacks metric `{metric}`",
                        spec.file, bc.name
                    ));
                    continue;
                };
                // Lower is better; the epsilon absorbs the artifacts'
                // fixed-point formatting of near-zero values.
                let regressed = c > b * (1.0 + opts.tolerance) + 1e-9;
                report.rows.push(DeltaRow {
                    artifact: spec.file,
                    case: bc.name.clone(),
                    metric,
                    baseline: b,
                    current: c,
                    regressed,
                });
            }
        }
        if spec.schema == "tagspin-bench-robustness/v1" {
            robustness_invariant(&cur, &mut report.problems);
        }
        if spec.schema == "tagspin-bench-estimator/v1" {
            estimator_invariant(&cur, &mut report.problems);
        }
        if spec.schema == "tagspin-bench-serve/v1" {
            serve_invariant(&cur, &mut report.problems);
        }
        if spec.schema == "tagspin-bench-store/v1" {
            store_invariant(&cur, &mut report.problems);
        }
    }
    Ok(report)
}

/// Record the current artifacts as the new baselines (`--bless`).
///
/// Each artifact is parsed and schema-checked before being copied, so a
/// truncated or mis-schemaed file cannot become a baseline. Returns the
/// list of baseline paths written.
///
/// # Errors
///
/// Fails on unreadable/malformed current artifacts or an unwritable
/// baselines directory.
pub fn bless(opts: &CheckOptions) -> Result<Vec<PathBuf>, BenchCheckError> {
    std::fs::create_dir_all(&opts.baselines).map_err(|source| BenchCheckError::Io {
        path: opts.baselines.clone(),
        source,
    })?;
    let mut written = Vec::new();
    for spec in ARTIFACTS {
        let cur_path = opts.current.join(spec.file);
        // Validate before copying.
        load_doc(&cur_path, spec.schema)?;
        let text = std::fs::read_to_string(&cur_path).map_err(|source| BenchCheckError::Io {
            path: cur_path.clone(),
            source,
        })?;
        let dest = opts.baselines.join(spec.file);
        std::fs::write(&dest, text).map_err(|source| BenchCheckError::Io {
            path: dest.clone(),
            source,
        })?;
        written.push(dest);
    }
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPECTRUM: &str = r#"{
  "schema": "tagspin-bench-spectrum/v1",
  "cases": [
    {"name": "office", "azimuth_steps": 360, "polar_steps": 1, "snapshots": 200, "mean_ns_exhaustive": 100000, "mean_ns_fast": 12000, "speedup": 8.333}
  ]
}"#;

    #[test]
    fn parses_the_bench_dialect() {
        let doc = parse_doc(SPECTRUM).expect("parse");
        assert_eq!(doc.schema, "tagspin-bench-spectrum/v1");
        assert_eq!(doc.cases.len(), 1);
        assert_eq!(doc.cases[0].name, "office");
        assert_eq!(doc.cases[0].metric("mean_ns_fast"), Some(12000.0));
        assert_eq!(doc.cases[0].metric("missing"), None);
    }

    #[test]
    fn tolerates_null_and_rejects_garbage() {
        let doc =
            parse_doc(r#"{"schema": "s", "cases": [{"name": "w", "max_reports": null, "x": 1}]}"#)
                .expect("null ok");
        assert_eq!(doc.cases[0].metric("max_reports"), None);
        assert!(parse_doc("{\"schema\": \"s\"").is_err());
        assert!(parse_doc("[]").is_err());
        assert!(parse_doc("{\"cases\": []}").is_err());
    }

    #[test]
    fn delta_row_handles_zero_baseline() {
        let row = DeltaRow {
            artifact: "a",
            case: "c".into(),
            metric: "m",
            baseline: 0.0,
            current: 0.0,
            regressed: false,
        };
        assert!(row.delta().abs() < 1e-12);
        let row = DeltaRow {
            baseline: 0.0,
            current: 1.0,
            ..row
        };
        assert!(row.delta().is_infinite());
    }

    #[test]
    fn markdown_lists_rows_and_problems() {
        let report = CheckReport {
            rows: vec![DeltaRow {
                artifact: "BENCH_spectrum.json",
                case: "office".into(),
                metric: "mean_ns_fast",
                baseline: 100.0,
                current: 260.0,
                regressed: true,
            }],
            problems: vec!["something vanished".into()],
        };
        assert!(!report.passed());
        let md = report.markdown();
        assert!(md.contains("| BENCH_spectrum.json | office | mean_ns_fast |"));
        assert!(md.contains("+160.0%"));
        assert!(md.contains("REGRESSED"));
        assert!(md.contains("something vanished"));
    }

    #[test]
    fn invariant_flags_hardened_losing() {
        let doc = parse_doc(
            r#"{"schema": "tagspin-bench-robustness/v1", "cases": [
                {"name": "rate_000", "fault_rate": 0.00, "median_err_on_m": 0.02, "median_err_off_m": 0.02},
                {"name": "rate_020", "fault_rate": 0.20, "median_err_on_m": 5.00, "median_err_off_m": 0.03}
            ]}"#,
        )
        .expect("parse");
        let mut problems = Vec::new();
        robustness_invariant(&doc, &mut problems);
        assert_eq!(problems.len(), 1, "{problems:?}");
        assert!(problems[0].contains("rate_020"));
    }

    #[test]
    fn estimator_invariant_flags_ml_losing_clean_row() {
        let doc = parse_doc(
            r#"{"schema": "tagspin-bench-estimator/v1", "cases": [
                {"name": "rate_000", "fault_rate": 0.00, "median_err_spectrum_m": 0.006, "median_err_ml_m": 0.020, "median_err_hybrid_m": 0.007},
                {"name": "rate_030", "fault_rate": 0.30, "median_err_spectrum_m": 0.021, "median_err_ml_m": 0.015, "median_err_hybrid_m": 0.050}
            ]}"#,
        )
        .expect("parse");
        let mut problems = Vec::new();
        estimator_invariant(&doc, &mut problems);
        // Clean-row ml loses by 14 mm; 30%-row hybrid degrades 29 mm worse.
        assert_eq!(problems.len(), 2, "{problems:?}");
        assert!(problems[0].contains("rate_000") && problems[0].contains("ml"));
        assert!(problems[1].contains("rate_030") && problems[1].contains("hybrid"));
    }

    #[test]
    fn estimator_invariant_allows_slack_and_skips_low_rates() {
        let doc = parse_doc(
            r#"{"schema": "tagspin-bench-estimator/v1", "cases": [
                {"name": "rate_000", "fault_rate": 0.00, "median_err_spectrum_m": 0.006, "median_err_ml_m": 0.007, "median_err_hybrid_m": 0.007},
                {"name": "rate_005", "fault_rate": 0.05, "median_err_spectrum_m": 0.014, "median_err_ml_m": 0.090, "median_err_hybrid_m": 0.090},
                {"name": "rate_030", "fault_rate": 0.30, "median_err_spectrum_m": 0.021, "median_err_ml_m": 0.025, "median_err_hybrid_m": 0.025}
            ]}"#,
        )
        .expect("parse");
        let mut problems = Vec::new();
        estimator_invariant(&doc, &mut problems);
        assert!(problems.is_empty(), "{problems:?}");
    }

    #[test]
    fn estimator_invariant_flags_missing_fields() {
        let doc = parse_doc(
            r#"{"schema": "tagspin-bench-estimator/v1", "cases": [
                {"name": "rate_000", "fault_rate": 0.00, "median_err_spectrum_m": 0.006}
            ]}"#,
        )
        .expect("parse");
        let mut problems = Vec::new();
        estimator_invariant(&doc, &mut problems);
        assert_eq!(problems.len(), 1, "{problems:?}");
        assert!(problems[0].contains("lacks"));
    }

    /// A serve artifact satisfying every hard invariant.
    const SERVE_OK: &str = r#"{"schema": "tagspin-bench-serve/v1", "cases": [
        {"name": "peak", "reports_sent": 20000, "reports_accepted": 20000, "reports_shed": 0, "shed_rate": 0.0, "p99_fix_latency_ns": 150000000},
        {"name": "rated", "reports_sent": 20000, "reports_accepted": 20000, "reports_shed": 0, "shed_rate": 0.0, "p99_fix_latency_ns": 250000000},
        {"name": "overload_2x", "reports_sent": 20000, "reports_accepted": 11000, "reports_shed": 9000, "shed_rate": 0.45, "p99_fix_latency_ns": 200000000}
    ]}"#;

    fn serve_problems(json: &str) -> Vec<String> {
        let doc = parse_doc(json).expect("parse");
        let mut problems = Vec::new();
        serve_invariant(&doc, &mut problems);
        problems
    }

    #[test]
    fn serve_invariant_passes_a_conforming_artifact() {
        let problems = serve_problems(SERVE_OK);
        assert!(problems.is_empty(), "{problems:?}");
    }

    #[test]
    fn serve_invariant_flags_broken_accounting() {
        // 500 reports vanish untyped from the rated case.
        let problems = serve_problems(&SERVE_OK.replace(
            r#""rated", "reports_sent": 20000, "reports_accepted": 20000, "reports_shed": 0"#,
            r#""rated", "reports_sent": 20000, "reports_accepted": 19500, "reports_shed": 0"#,
        ));
        // The missing 500 both break conservation and (being absorbed
        // silently, not shed) keep `rated` at zero shed, so exactly the
        // accounting problem fires.
        assert_eq!(problems.len(), 1, "{problems:?}");
        assert!(problems[0].contains("accounting"), "{problems:?}");
    }

    #[test]
    fn serve_invariant_flags_shedding_below_rated_load() {
        let problems = serve_problems(&SERVE_OK.replace(
            r#""rated", "reports_sent": 20000, "reports_accepted": 20000, "reports_shed": 0"#,
            r#""rated", "reports_sent": 20000, "reports_accepted": 19000, "reports_shed": 1000"#,
        ));
        assert_eq!(problems.len(), 1, "{problems:?}");
        assert!(problems[0].contains("`rated` shed"), "{problems:?}");
    }

    #[test]
    fn serve_invariant_flags_overload_that_never_shed() {
        let problems = serve_problems(&SERVE_OK.replace(
            r#""overload_2x", "reports_sent": 20000, "reports_accepted": 11000, "reports_shed": 9000"#,
            r#""overload_2x", "reports_sent": 20000, "reports_accepted": 20000, "reports_shed": 0"#,
        ));
        assert_eq!(problems.len(), 1, "{problems:?}");
        assert!(
            problems[0].contains("`overload_2x` shed nothing"),
            "{problems:?}"
        );
    }

    #[test]
    fn serve_invariant_bounds_overload_fix_latency() {
        // 3 s p99 breaches the 2 s never-starved bound.
        let problems = serve_problems(&SERVE_OK.replace(
            "\"p99_fix_latency_ns\": 200000000",
            "\"p99_fix_latency_ns\": 3000000000",
        ));
        assert_eq!(problems.len(), 1, "{problems:?}");
        assert!(problems[0].contains("p99 fix latency"), "{problems:?}");
        // And the field must exist at all on the overload case.
        let problems = serve_problems(&SERVE_OK.replace(
            "\"p99_fix_latency_ns\": 200000000",
            "\"p99_fix_latency_ns\": null",
        ));
        assert_eq!(problems.len(), 1, "{problems:?}");
        assert!(
            problems[0].contains("lacks p99_fix_latency_ns"),
            "{problems:?}"
        );
    }

    #[test]
    fn serve_invariant_requires_the_load_cases() {
        let problems = serve_problems(
            r#"{"schema": "tagspin-bench-serve/v1", "cases": [
                {"name": "peak", "reports_sent": 100, "reports_accepted": 100, "reports_shed": 0}
            ]}"#,
        );
        assert_eq!(problems.len(), 2, "{problems:?}");
        assert!(
            problems.iter().any(|p| p.contains("`rated`")),
            "{problems:?}"
        );
        assert!(
            problems.iter().any(|p| p.contains("`overload_2x`")),
            "{problems:?}"
        );
    }

    #[test]
    fn serve_invariant_flags_missing_accounting_fields() {
        let problems = serve_problems(
            r#"{"schema": "tagspin-bench-serve/v1", "cases": [
                {"name": "rated", "reports_sent": 100},
                {"name": "overload_2x", "reports_sent": 100, "reports_accepted": 80, "reports_shed": 20, "p99_fix_latency_ns": 100}
            ]}"#,
        );
        assert_eq!(problems.len(), 1, "{problems:?}");
        assert!(
            problems[0].contains("lacks reports_sent/accepted/shed"),
            "{problems:?}"
        );
    }

    /// A store artifact satisfying every hard invariant.
    const STORE_OK: &str = r#"{"schema": "tagspin-bench-store/v1", "cases": [
        {"name": "cold", "tables": 6, "boot_ns": 42000000, "ns_per_table": 7000000, "store_hits": 0, "store_persisted": 6, "fix_bits_mismatches": 0},
        {"name": "warm", "tables": 6, "boot_ns": 9000000, "ns_per_table": 1500000, "store_hits": 6, "store_persisted": 0, "fix_bits_mismatches": 0}
    ]}"#;

    fn store_problems(json: &str) -> Vec<String> {
        let doc = parse_doc(json).expect("parse");
        let mut problems = Vec::new();
        store_invariant(&doc, &mut problems);
        problems
    }

    #[test]
    fn store_invariant_passes_a_conforming_artifact() {
        let problems = store_problems(STORE_OK);
        assert!(problems.is_empty(), "{problems:?}");
    }

    #[test]
    fn store_invariant_flags_fix_divergence() {
        let problems = store_problems(&STORE_OK.replace(
            r#""store_hits": 6, "store_persisted": 0, "fix_bits_mismatches": 0"#,
            r#""store_hits": 6, "store_persisted": 0, "fix_bits_mismatches": 3"#,
        ));
        assert_eq!(problems.len(), 1, "{problems:?}");
        assert!(problems[0].contains("never change a fix"), "{problems:?}");
    }

    #[test]
    fn store_invariant_flags_warm_not_faster() {
        // Warm boot exactly as slow as cold: strict inequality required.
        let problems = store_problems(&STORE_OK.replace(
            "\"name\": \"warm\", \"tables\": 6, \"boot_ns\": 9000000",
            "\"name\": \"warm\", \"tables\": 6, \"boot_ns\": 42000000",
        ));
        assert_eq!(problems.len(), 1, "{problems:?}");
        assert!(problems[0].contains("not strictly faster"), "{problems:?}");
    }

    #[test]
    fn store_invariant_flags_cold_that_persisted_nothing() {
        let problems = store_problems(&STORE_OK.replace(
            r#""store_hits": 0, "store_persisted": 6"#,
            r#""store_hits": 0, "store_persisted": 0"#,
        ));
        assert_eq!(problems.len(), 1, "{problems:?}");
        assert!(
            problems[0].contains("`cold` persisted nothing"),
            "{problems:?}"
        );
    }

    #[test]
    fn store_invariant_flags_warm_that_never_hit() {
        let problems = store_problems(&STORE_OK.replace(
            r#""store_hits": 6, "store_persisted": 0"#,
            r#""store_hits": 0, "store_persisted": 0"#,
        ));
        assert_eq!(problems.len(), 1, "{problems:?}");
        assert!(
            problems[0].contains("`warm` hit the store zero times"),
            "{problems:?}"
        );
    }

    #[test]
    fn store_invariant_requires_both_cases() {
        let problems = store_problems(
            r#"{"schema": "tagspin-bench-store/v1", "cases": [
                {"name": "cold", "boot_ns": 1, "store_persisted": 1, "fix_bits_mismatches": 0}
            ]}"#,
        );
        assert_eq!(problems.len(), 1, "{problems:?}");
        assert!(problems[0].contains("`warm`"), "{problems:?}");
    }

    #[test]
    fn store_invariant_flags_missing_mismatch_field() {
        let problems = store_problems(&STORE_OK.replace(
            r#""store_hits": 6, "store_persisted": 0, "fix_bits_mismatches": 0"#,
            r#""store_hits": 6, "store_persisted": 0, "fix_bits_mismatches": null"#,
        ));
        assert_eq!(problems.len(), 1, "{problems:?}");
        assert!(
            problems[0].contains("lacks fix_bits_mismatches"),
            "{problems:?}"
        );
    }

    #[test]
    fn invariant_ignores_low_rates() {
        let doc = parse_doc(
            r#"{"schema": "tagspin-bench-robustness/v1", "cases": [
                {"name": "rate_005", "fault_rate": 0.05, "median_err_on_m": 9.0, "median_err_off_m": 0.01}
            ]}"#,
        )
        .expect("parse");
        let mut problems = Vec::new();
        robustness_invariant(&doc, &mut problems);
        assert!(problems.is_empty(), "{problems:?}");
    }
}
