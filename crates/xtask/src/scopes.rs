//! Scope and trivia analysis over a [`TokenStream`].
//!
//! Two layers sit between the raw token stream and the rules:
//!
//! * [`Scopes`] — brace matching over the significant tokens, the kind
//!   of item each brace opens (`fn` body, `impl` block, struct body, …),
//!   and `#[cfg(test)]` region tracking. Rules use it to skip test code,
//!   to know whether a `pub` sits at item position (L9), and to find the
//!   end of the block a lock guard lives in (L6).
//! * [`Trivia`] — the comment tokens, indexed by line. Escape hatches
//!   (`lint:allow(...)`, `lint:allow-file(...)`) and `// ordering:`
//!   justifications are only honored here, *inside comments* — the v1
//!   engine read them off raw source lines, so a string literal
//!   containing `lint:allow-file(no-panic)` silently disabled the rule.

use crate::lexer::{TokenKind, TokenStream};

/// What kind of item a brace-delimited scope belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScopeKind {
    /// Top level of the file (no enclosing brace).
    File,
    /// A `mod name { … }` body.
    Mod,
    /// An inherent `impl Type { … }` block.
    ImplInherent,
    /// A `impl Trait for Type { … }` block.
    ImplTrait,
    /// A `trait Name { … }` body.
    Trait,
    /// A `struct` / `enum` / `union` body.
    Adt,
    /// A function body.
    FnBody,
    /// Any other brace: blocks, match arms, struct literals, closures.
    NonItem,
}

/// Scope structure of one file, indexed by *significant* token position.
#[derive(Debug)]
pub struct Scopes {
    /// Innermost enclosing scope kind per significant token.
    kind_at: Vec<ScopeKind>,
    /// Significant index of the innermost open `{` per significant token.
    enclosing_open: Vec<Option<usize>>,
    /// For each significant `{`, the significant index of its `}`.
    brace_match: Vec<Option<usize>>,
    /// Per significant token: inside a `#[cfg(test)]` / `#[test]` region.
    test_at: Vec<bool>,
    /// Per 1-based source line: inside a test region (index 0 unused).
    test_lines: Vec<bool>,
}

/// Item keyword pending before the next `{` decides its scope kind.
#[derive(Clone, Copy, PartialEq)]
enum Pending {
    Fn,
    Mod,
    Trait,
    Impl { has_for: bool },
    Adt,
}

impl Scopes {
    /// Analyze the significant tokens of `ts`.
    pub fn analyze(ts: &TokenStream<'_>) -> Self {
        let n = ts.sig_len();
        let line_count = ts.source().lines().count();
        let mut kind_at = vec![ScopeKind::File; n];
        let mut enclosing_open = vec![None; n];
        let mut brace_match = vec![None; n];
        let mut test_at = vec![false; n];
        let mut test_lines = vec![false; line_count + 2];

        // Stack of (open sig index, scope kind, was-test-region-entry).
        let mut stack: Vec<(usize, ScopeKind, bool)> = Vec::new();
        let mut pending: Option<Pending> = None;
        // `#[cfg(test)]`-ish attribute seen; armed until `{` or `;`.
        let mut test_pending = false;
        // Depth at which we are already inside a test region.
        let mut test_depth: Option<usize> = None;
        let mut angle_depth: i32 = 0;

        let mut i = 0;
        while i < n {
            let tok = *ts.sig_token(i).expect("index in range");
            let text = ts.sig_text(i);

            let in_test = test_depth.is_some();
            kind_at[i] = stack.last().map(|s| s.1).unwrap_or(ScopeKind::File);
            enclosing_open[i] = stack.last().map(|s| s.0);
            test_at[i] = in_test || test_pending;
            if test_at[i] {
                mark_line(&mut test_lines, tok.line);
            }

            // Attributes: consumed wholesale so their contents never feed
            // the keyword state machine; test-ness is decided here.
            if text == "#" && ts.sig_text(i + 1) == "[" {
                let (end, is_test) = scan_attribute(ts, i + 1);
                for j in i..=end.min(n.saturating_sub(1)) {
                    kind_at[j] = kind_at[i];
                    enclosing_open[j] = enclosing_open[i];
                    test_at[j] = test_at[i];
                    if let Some(t) = ts.sig_token(j) {
                        if test_at[i] {
                            mark_line(&mut test_lines, t.line);
                        }
                    }
                }
                if is_test && !in_test {
                    test_pending = true;
                    if let Some(t) = ts.sig_token(i) {
                        mark_line(&mut test_lines, t.line);
                    }
                }
                i = end + 1;
                continue;
            }

            match (tok.kind, text) {
                (TokenKind::Punct, "{") => {
                    let kind = match pending.take() {
                        Some(Pending::Fn) => ScopeKind::FnBody,
                        Some(Pending::Mod) => ScopeKind::Mod,
                        Some(Pending::Trait) => ScopeKind::Trait,
                        Some(Pending::Impl { has_for: true }) => ScopeKind::ImplTrait,
                        Some(Pending::Impl { has_for: false }) => ScopeKind::ImplInherent,
                        Some(Pending::Adt) => ScopeKind::Adt,
                        None => ScopeKind::NonItem,
                    };
                    let entering_test = test_pending && test_depth.is_none();
                    if entering_test {
                        test_depth = Some(stack.len());
                        test_pending = false;
                    }
                    test_at[i] = test_depth.is_some();
                    if test_at[i] {
                        mark_line(&mut test_lines, tok.line);
                    }
                    stack.push((i, kind, entering_test));
                    angle_depth = 0;
                }
                (TokenKind::Punct, "}") => {
                    pending = None;
                    if let Some((open, _, was_entry)) = stack.pop() {
                        brace_match[open] = Some(i);
                        if was_entry {
                            // Mark every line of the region closed here.
                            if let (Some(o), c) = (ts.sig_token(open), tok) {
                                for l in o.line..=c.line {
                                    mark_line(&mut test_lines, l);
                                }
                            }
                            test_depth = None;
                        }
                    }
                    test_at[i] = test_depth.is_some();
                }
                (TokenKind::Punct, ";") => {
                    pending = None;
                    test_pending = false;
                }
                (TokenKind::Ident, kw) => {
                    if pending.is_none() {
                        pending = match kw {
                            "fn" => Some(Pending::Fn),
                            "mod" => Some(Pending::Mod),
                            "trait" => Some(Pending::Trait),
                            "impl" => {
                                angle_depth = 0;
                                Some(Pending::Impl { has_for: false })
                            }
                            "struct" | "enum" | "union" => Some(Pending::Adt),
                            _ => None,
                        };
                    } else if let Some(Pending::Impl { has_for: false }) = pending {
                        // `impl Trait for Type`: a bare `for` at angle
                        // depth 0 not starting an HRTB (`for<'a>`).
                        if kw == "for" && angle_depth <= 0 && ts.sig_text(i + 1) != "<" {
                            pending = Some(Pending::Impl { has_for: true });
                        }
                    }
                }
                (TokenKind::Punct, p) if pending == Some(Pending::Impl { has_for: false }) => {
                    angle_depth += match p {
                        "<" => 1,
                        ">" => -1,
                        "<<" => 2,
                        ">>" => -2,
                        _ => 0,
                    };
                }
                _ => {}
            }
            i += 1;
        }
        Scopes {
            kind_at,
            enclosing_open,
            brace_match,
            test_at,
            test_lines,
        }
    }

    /// The innermost scope kind enclosing significant token `i`.
    pub fn kind_at(&self, i: usize) -> ScopeKind {
        self.kind_at.get(i).copied().unwrap_or(ScopeKind::File)
    }

    /// Whether significant token `i` is inside a test region.
    pub fn in_test(&self, i: usize) -> bool {
        self.test_at.get(i).copied().unwrap_or(false)
    }

    /// Whether a 1-based source line is inside a test region.
    pub fn line_in_test(&self, line: usize) -> bool {
        self.test_lines.get(line).copied().unwrap_or(false)
    }

    /// Significant index of the `}` closing the block that encloses
    /// significant token `i` (`None` at file scope or when unmatched).
    pub fn enclosing_block_end(&self, i: usize) -> Option<usize> {
        let open = (*self.enclosing_open.get(i)?)?;
        *self.brace_match.get(open)?
    }

    /// Matching `}` for a significant `{` at index `open`.
    pub fn brace_match(&self, open: usize) -> Option<usize> {
        *self.brace_match.get(open)?
    }
}

fn mark_line(lines: &mut [bool], line: usize) {
    if let Some(slot) = lines.get_mut(line) {
        *slot = true;
    }
}

/// Scan an attribute starting at the `[` at significant index `open`.
/// Returns (significant index of the matching `]`, whether the attribute
/// marks test-only code: `#[test]`, `#[cfg(test)]`, `#[cfg(any(test,…))]`
/// — but not `#[cfg(not(test))]`).
fn scan_attribute(ts: &TokenStream<'_>, open: usize) -> (usize, bool) {
    let mut depth = 0usize;
    let mut idents: Vec<&str> = Vec::new();
    let mut j = open;
    while j < ts.sig_len() {
        let text = ts.sig_text(j);
        match text {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            _ => {
                if ts.sig_token(j).is_some_and(|t| t.kind == TokenKind::Ident) {
                    idents.push(text);
                }
            }
        }
        j += 1;
    }
    let has = |w: &str| idents.contains(&w);
    let is_test = if idents.as_slice() == ["test"] {
        true
    } else {
        has("cfg") && has("test") && !has("not")
    };
    (j, is_test)
}

/// The comment tokens of a file, indexed for marker lookups.
#[derive(Debug)]
pub struct Trivia {
    /// (first line, last line, text) per comment token, in order.
    comments: Vec<(usize, usize, String)>,
}

impl Trivia {
    /// Collect the comments of `ts`.
    pub fn collect(ts: &TokenStream<'_>) -> Self {
        let comments = ts
            .tokens()
            .iter()
            .filter(|t| t.kind.is_comment())
            .map(|t| {
                let text = ts.text(t);
                let last = t.line + text.matches('\n').count();
                (t.line, last, text.to_string())
            })
            .collect();
        Trivia { comments }
    }

    fn comment_on(&self, line: usize, needle: &str) -> bool {
        self.comments
            .iter()
            .any(|(a, b, text)| *a <= line && line <= *b && text.contains(needle))
    }

    /// Whether a `lint:allow(<rule>)` comment covers `line` or the line
    /// above it.
    pub fn allows(&self, line: usize, rule_name: &str) -> bool {
        let marker = format!("lint:allow({rule_name})");
        self.comment_on(line, &marker) || (line > 1 && self.comment_on(line - 1, &marker))
    }

    /// Whether a `lint:allow-file(<rule>)` comment appears anywhere.
    pub fn allows_file(&self, rule_name: &str) -> bool {
        let marker = format!("lint:allow-file({rule_name})");
        self.comments
            .iter()
            .any(|(_, _, text)| text.contains(marker.as_str()))
    }

    /// Whether an `ordering:` justification comment covers `line` or the
    /// line above it (L7).
    pub fn has_ordering_note(&self, line: usize) -> bool {
        self.comment_on(line, "ordering:") || (line > 1 && self.comment_on(line - 1, "ordering:"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scopes(src: &str) -> (TokenStream<'_>, Scopes) {
        let ts = TokenStream::lex(src);
        let sc = Scopes::analyze(&ts);
        (ts, sc)
    }

    /// Significant index of the first token with this text.
    fn sig_idx(ts: &TokenStream<'_>, text: &str) -> usize {
        (0..ts.sig_len())
            .find(|&i| ts.sig_text(i) == text)
            .unwrap_or_else(|| panic!("token {text:?} not found"))
    }

    #[test]
    fn scope_kinds_follow_item_keywords() {
        let src = "\
mod m {
    impl Foo { fn f(&self) { let x = Bar { a: 1 }; } }
    impl Iterator for Foo { fn next(&mut self) {} }
    struct S { field: u8 }
    trait T { fn g(); }
}
";
        let (ts, sc) = scopes(src);
        assert_eq!(sc.kind_at(sig_idx(&ts, "impl") + 1), ScopeKind::Mod);
        assert_eq!(sc.kind_at(sig_idx(&ts, "f")), ScopeKind::ImplInherent);
        assert_eq!(sc.kind_at(sig_idx(&ts, "a")), ScopeKind::NonItem);
        assert_eq!(sc.kind_at(sig_idx(&ts, "next")), ScopeKind::ImplTrait);
        assert_eq!(sc.kind_at(sig_idx(&ts, "field")), ScopeKind::Adt);
        assert_eq!(sc.kind_at(sig_idx(&ts, "g")), ScopeKind::Trait);
    }

    #[test]
    fn inherent_impl_scope() {
        let src = "impl Foo { fn m(&self) {} }";
        let (ts, sc) = scopes(src);
        assert_eq!(sc.kind_at(sig_idx(&ts, "m")), ScopeKind::ImplInherent);
    }

    #[test]
    fn cfg_test_region_covers_module() {
        let src = "\
fn live() {}
#[cfg(test)]
mod tests {
    fn t() { x.unwrap(); }
}
fn also_live() {}
";
        let (ts, sc) = scopes(src);
        assert!(!sc.in_test(sig_idx(&ts, "live")));
        assert!(sc.in_test(sig_idx(&ts, "unwrap")));
        assert!(!sc.in_test(sig_idx(&ts, "also_live")));
        assert!(sc.line_in_test(3));
        assert!(sc.line_in_test(4));
        assert!(!sc.line_in_test(1));
        assert!(!sc.line_in_test(6));
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        let src = "#[cfg(not(test))]\nfn live() { x.unwrap(); }\n";
        let (ts, sc) = scopes(src);
        assert!(!sc.in_test(sig_idx(&ts, "unwrap")));
    }

    #[test]
    fn test_attr_fn_is_a_test_region() {
        let src = "#[test]\nfn t() { x.unwrap(); }\nfn live() {}\n";
        let (ts, sc) = scopes(src);
        assert!(sc.in_test(sig_idx(&ts, "unwrap")));
        assert!(!sc.in_test(sig_idx(&ts, "live")));
    }

    #[test]
    fn enclosing_block_end_finds_the_closing_brace() {
        let src = "fn f() { let g = x.lock(); g.use_it(); } fn h() {}";
        let (ts, sc) = scopes(src);
        let g = sig_idx(&ts, "g");
        let end = sc.enclosing_block_end(g).expect("in a block");
        assert_eq!(ts.sig_text(end), "}");
        // The close must come before `fn h`.
        assert!(end < sig_idx(&ts, "h"));
    }

    #[test]
    fn trivia_markers_only_count_in_comments() {
        let src = "\
let s = \"lint:allow-file(no-panic)\";
// lint:allow(float-eq) tolerance is exact here
let x = 1;
// ordering: counter only
let y = 2;
";
        let ts = TokenStream::lex(src);
        let tv = Trivia::collect(&ts);
        assert!(!tv.allows_file("no-panic"), "string is not a marker");
        assert!(tv.allows(2, "float-eq"));
        assert!(tv.allows(3, "float-eq"), "line below marker is covered");
        assert!(!tv.allows(5, "float-eq"));
        assert!(tv.has_ordering_note(5));
        assert!(!tv.has_ordering_note(1));
    }

    #[test]
    fn attribute_contents_do_not_confuse_scopes() {
        let src = "#[derive(Debug, Clone)]\npub struct S { pub x: u8 }\n";
        let (ts, sc) = scopes(src);
        assert_eq!(sc.kind_at(sig_idx(&ts, "x")), ScopeKind::Adt);
    }
}
