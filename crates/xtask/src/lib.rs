//! Domain-aware static-analysis gate for the Tagspin workspace.
//!
//! `cargo xtask lint` runs a dependency-free, token-stream analyzer over
//! the workspace sources and enforces nine rules the Rust compiler
//! cannot see (see `docs/LINTS.md` for the catalogue and rationale):
//!
//! * **L1 `no-panic`** — no `.unwrap()` / `.expect(` / `panic!(` in
//!   non-test library *or binary* code.
//! * **L2 `angle-hygiene`** — all phase wrapping goes through
//!   `tagspin_geom::angle`; raw `% TAU`, `rem_euclid(TAU)` or manual ±π
//!   wrap arithmetic outside `crates/geom/src/angle.rs` is an error.
//! * **L3 `float-eq`** — no `==` / `!=` against floating-point values
//!   outside tests.
//! * **L4 `stringly-error`** — no `Result<_, String>` in public APIs.
//! * **L5 `lossy-cast`** — numeric `as` casts in designated hot-path
//!   files must be annotated.
//! * **L6 `lock-discipline`** — no lock guard live across a call into
//!   `Observer::emit` or a spectrum recompute, and a workspace-wide
//!   lock-acquisition-order graph must be acyclic.
//! * **L7 `atomic-ordering`** — every `Ordering::` literal outside
//!   `obs/metrics.rs` carries a `// ordering:` justification; `SeqCst`
//!   is rejected in ingest/recompute hot paths outright.
//! * **L8 `metric-name-hygiene`** — metric names emitted by the metrics
//!   observer and the inventory in `docs/OBSERVABILITY.md` must match in
//!   both directions.
//! * **L9 `doc-coverage`** — public items in the core crates carry doc
//!   comments (warn-level, tracked against a count baseline).
//!
//! Every rule honors a line-level escape hatch — a
//! `// lint:allow(<rule>)` comment on the offending line or the line
//! above — and a file-level `// lint:allow-file(<rule>)`. Markers are
//! only honored inside *comment tokens*: the v1 engine matched them on
//! raw source lines, so a string literal containing a marker silently
//! disabled the rule.
//!
//! The analyzer is built on a hand-rolled lexer (`lexer`), brace/scope
//! analysis (`scopes`) and token-level rules (`rules`); findings export
//! as human text or machine-readable `tagspin-lint/v1` JSON.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench_check;
pub mod json;
pub mod lexer;
pub mod rules;
pub mod scopes;

use std::fmt;
use std::path::{Path, PathBuf};

use lexer::TokenStream;
use scopes::{Scopes, Trivia};

/// A lint rule identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    /// L1: no `.unwrap()` / `.expect(` / `panic!(` in library/binary code.
    NoPanic,
    /// L2: phase wrapping only via `tagspin_geom::angle`.
    AngleHygiene,
    /// L3: no float `==` / `!=` outside tests.
    FloatEq,
    /// L4: no `Result<_, String>` in public APIs.
    StringlyError,
    /// L5: annotated numeric casts in hot paths.
    LossyCast,
    /// L6: no lock guard live across observer emission or recompute;
    /// acyclic lock-acquisition order.
    LockDiscipline,
    /// L7: justified memory orderings outside the metrics module.
    AtomicOrdering,
    /// L8: emitted metric names equal the documented inventory.
    MetricNameHygiene,
    /// L9: doc comments on public items in the core crates.
    DocCoverage,
}

/// How a finding affects the exit status.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Fails the lint gate.
    Error,
    /// Reported, and gated only against the tracked count baseline.
    Warn,
}

impl Severity {
    /// Stable lowercase name used in reports and JSON.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warn => "warn",
        }
    }
}

impl Rule {
    /// Every rule, in report order.
    pub const ALL: [Rule; 9] = [
        Rule::NoPanic,
        Rule::AngleHygiene,
        Rule::FloatEq,
        Rule::StringlyError,
        Rule::LossyCast,
        Rule::LockDiscipline,
        Rule::AtomicOrdering,
        Rule::MetricNameHygiene,
        Rule::DocCoverage,
    ];

    /// Stable lowercase name used in reports and `lint:allow(...)`.
    pub fn name(self) -> &'static str {
        match self {
            Rule::NoPanic => "no-panic",
            Rule::AngleHygiene => "angle-hygiene",
            Rule::FloatEq => "float-eq",
            Rule::StringlyError => "stringly-error",
            Rule::LossyCast => "lossy-cast",
            Rule::LockDiscipline => "lock-discipline",
            Rule::AtomicOrdering => "atomic-ordering",
            Rule::MetricNameHygiene => "metric-name-hygiene",
            Rule::DocCoverage => "doc-coverage",
        }
    }

    /// Short code (`L1`..`L9`) used in reports.
    pub fn code(self) -> &'static str {
        match self {
            Rule::NoPanic => "L1",
            Rule::AngleHygiene => "L2",
            Rule::FloatEq => "L3",
            Rule::StringlyError => "L4",
            Rule::LossyCast => "L5",
            Rule::LockDiscipline => "L6",
            Rule::AtomicOrdering => "L7",
            Rule::MetricNameHygiene => "L8",
            Rule::DocCoverage => "L9",
        }
    }

    /// Gate severity: L1–L8 fail the build, L9 is tracked-warn.
    pub fn severity(self) -> Severity {
        match self {
            Rule::DocCoverage => Severity::Warn,
            _ => Severity::Error,
        }
    }
}

/// One rule violation at a source location.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Path relative to the workspace root.
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// The violated rule.
    pub rule: Rule,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}({}): {}",
            self.file.display(),
            self.line,
            self.rule.code(),
            self.rule.name(),
            self.message
        )
    }
}

/// How a source file participates in the rule set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// A library source file (`crates/*/src/**`, root `src/lib.rs`).
    Library,
    /// A binary source (`src/bin/**`, `crates/*/src/bin/**`).
    Binary,
    /// An example (`examples/**`).
    Example,
    /// A benchmark (`crates/*/benches/**`).
    Bench,
    /// An integration test (`tests/**` at any level).
    Test,
}

impl FileKind {
    /// Whether L1 (`no-panic`) applies to this kind of file. Under v2
    /// this includes binaries: a panicking `src/bin/**` entry point is a
    /// crash in the field, not a shrug — only examples, benches and
    /// tests keep the exemption.
    pub fn checks_panics(self) -> bool {
        matches!(self, FileKind::Library | FileKind::Binary)
    }

    /// Whether L2/L3/L6/L7 apply (everything except test code).
    pub fn checks_expressions(self) -> bool {
        !matches!(self, FileKind::Test)
    }

    /// Whether L4 applies (public API surface lives in libraries).
    pub fn checks_signatures(self) -> bool {
        matches!(self, FileKind::Library)
    }
}

/// Files whose numeric casts must be annotated (L5): the angle-spectrum
/// and DSP kernels where a silent float→int truncation or an index→f64
/// precision loss would corrupt results rather than crash.
const HOT_PATHS: &[&str] = &[
    "crates/core/src/spectrum.rs",
    "crates/core/src/spectrum/engine.rs",
    "crates/core/src/locate/plane.rs",
    "crates/core/src/locate/space.rs",
    "crates/dsp/src/fourier.rs",
    "crates/dsp/src/peak.rs",
    "crates/dsp/src/window.rs",
    "crates/dsp/src/unwrap.rs",
];

/// The one file allowed to contain raw wrap arithmetic (L2).
const ANGLE_MODULE: &str = "crates/geom/src/angle.rs";

/// The one file whose atomics need no per-site justification (L7): the
/// metrics cells are the sanctioned relaxed-atomics nest, documented as
/// a whole in `docs/OBSERVABILITY.md`.
const METRICS_MODULE: &str = "crates/core/src/obs/metrics.rs";

/// The metric-name inventory sources cross-checked by L8.
const METRIC_NAMES_RS: &str = "crates/core/src/obs/names.rs";
const METRICS_RS: &str = "crates/core/src/obs/metrics.rs";
const OBSERVABILITY_MD: &str = "docs/OBSERVABILITY.md";

/// Classify a workspace-relative path, or `None` if it should not be
/// scanned at all.
pub fn classify(rel: &Path) -> Option<FileKind> {
    let s = rel.to_string_lossy().replace('\\', "/");
    if !s.ends_with(".rs") {
        return None;
    }
    // Tooling, vendored stubs and build artifacts are out of scope.
    if s.starts_with("crates/xtask/") || s.starts_with("vendor/") || s.starts_with("target/") {
        return None;
    }
    if s.starts_with("tests/") || s.contains("/tests/") {
        return Some(FileKind::Test);
    }
    if s.starts_with("examples/") || s.contains("/examples/") {
        return Some(FileKind::Example);
    }
    if s.contains("/benches/") {
        return Some(FileKind::Bench);
    }
    if s.contains("/bin/") {
        return Some(FileKind::Binary);
    }
    if s.starts_with("src/") || s.contains("/src/") {
        return Some(FileKind::Library);
    }
    None
}

/// Analyze one file's contents with the per-file rules (L1–L7, L9).
pub fn analyze_file(rel: &Path, source: &str, kind: FileKind) -> Vec<Finding> {
    analyze_file_ext(rel, source, kind).0
}

/// [`analyze_file`] plus the file's lock-acquisition-order edges, which
/// the workspace pass aggregates for L6 cycle detection.
pub fn analyze_file_ext(
    rel: &Path,
    source: &str,
    kind: FileKind,
) -> (Vec<Finding>, Vec<rules::LockEdge>) {
    let rel_str = rel.to_string_lossy().replace('\\', "/");
    let ts = TokenStream::lex(source);
    let sc = Scopes::analyze(&ts);
    let tv = Trivia::collect(&ts);

    let ctx = rules::FileContext {
        rel: &rel_str,
        kind,
        ts: &ts,
        sc: &sc,
        tv: &tv,
        is_hot_path: HOT_PATHS.contains(&rel_str.as_str()),
        is_angle_module: rel_str == ANGLE_MODULE,
        is_metrics_module: rel_str == METRICS_MODULE,
    };

    let mut findings = Vec::new();
    rules::no_panic(&ctx, &mut findings);
    rules::angle_hygiene(&ctx, &mut findings);
    rules::float_eq(&ctx, &mut findings);
    rules::stringly_error(&ctx, &mut findings);
    rules::lossy_cast(&ctx, &mut findings);
    rules::lock_discipline(&ctx, &mut findings);
    rules::atomic_ordering(&ctx, &mut findings);
    rules::doc_coverage(&ctx, &mut findings);
    let edges = rules::lock_order_edges(&ctx);

    let findings = findings
        .into_iter()
        .map(|(line, rule, message)| Finding {
            file: rel.to_path_buf(),
            line,
            rule,
            message,
        })
        .collect();
    (findings, edges)
}

/// Recursively collect `.rs` files under `dir` (workspace-relative paths).
fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let abs = root.join(dir);
    if !abs.is_dir() {
        return Ok(());
    }
    for entry in std::fs::read_dir(&abs)? {
        let entry = entry?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.starts_with('.') || name == "target" || name == "vendor" {
            continue;
        }
        let rel = dir.join(&*name);
        let ty = entry.file_type()?;
        if ty.is_dir() {
            collect_rs_files(root, &rel, out)?;
        } else if name.ends_with(".rs") {
            out.push(rel);
        }
    }
    Ok(())
}

/// Run the L8 metric-name cross-check if the workspace carries the
/// inventory sources; a tree without them (fixture stages, early
/// bootstraps) simply has no L8 surface.
fn metric_hygiene_findings(root: &Path) -> Vec<Finding> {
    let names_src = std::fs::read_to_string(root.join(METRIC_NAMES_RS));
    let doc_src = std::fs::read_to_string(root.join(OBSERVABILITY_MD));
    let (Ok(names_src), Ok(doc_src)) = (names_src, doc_src) else {
        return Vec::new();
    };
    let metrics_src = std::fs::read_to_string(root.join(METRICS_RS)).unwrap_or_default();
    rules::metric_name_hygiene(&names_src, &metrics_src, &doc_src)
        .into_iter()
        .map(|(which, line, message)| Finding {
            file: PathBuf::from(match which {
                "doc" => OBSERVABILITY_MD,
                "metrics" => METRICS_RS,
                _ => METRIC_NAMES_RS,
            }),
            line,
            rule: Rule::MetricNameHygiene,
            message,
        })
        .collect()
}

/// Run the full lint pass over a workspace rooted at `root`: per-file
/// rules, the workspace lock-order graph (L6), and the metric-name
/// cross-check (L8).
///
/// Findings come back sorted by file then line.
///
/// # Errors
///
/// Returns `Err` if the workspace cannot be read.
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    let mut files = Vec::new();
    for top in ["crates", "src", "tests", "examples"] {
        collect_rs_files(root, Path::new(top), &mut files)?;
    }
    files.sort();

    let mut findings = Vec::new();
    let mut edges = Vec::new();
    let mut edge_files: Vec<(String, PathBuf)> = Vec::new();
    for rel in &files {
        let Some(kind) = classify(rel) else { continue };
        let source = std::fs::read_to_string(root.join(rel))?;
        let (file_findings, file_edges) = analyze_file_ext(rel, &source, kind);
        findings.extend(file_findings);
        for e in &file_edges {
            edge_files.push((e.module.clone(), rel.clone()));
        }
        edges.extend(file_edges);
    }

    for (module, line, message) in rules::lock_order_cycles(&edges) {
        let file = edge_files
            .iter()
            .find(|(m, _)| *m == module)
            .map(|(_, f)| f.clone())
            .unwrap_or_else(|| PathBuf::from(module));
        findings.push(Finding {
            file,
            line,
            rule: Rule::LockDiscipline,
            message,
        });
    }

    findings.extend(metric_hygiene_findings(root));
    findings.sort_by(|a, b| a.file.cmp(&b.file).then(a.line.cmp(&b.line)));
    Ok(findings)
}

/// Serialize findings as a `tagspin-lint/v1` document.
pub fn findings_to_json(findings: &[Finding]) -> json::Value {
    let errors = findings
        .iter()
        .filter(|f| f.rule.severity() == Severity::Error)
        .count();
    let warns = findings.len() - errors;
    let list = findings
        .iter()
        .map(|f| {
            json::Value::Obj(vec![
                (
                    "file".to_string(),
                    json::Value::Str(f.file.to_string_lossy().replace('\\', "/")),
                ),
                ("line".to_string(), json::Value::Num(f.line as f64)),
                (
                    "code".to_string(),
                    json::Value::Str(f.rule.code().to_string()),
                ),
                (
                    "rule".to_string(),
                    json::Value::Str(f.rule.name().to_string()),
                ),
                (
                    "severity".to_string(),
                    json::Value::Str(f.rule.severity().name().to_string()),
                ),
                ("message".to_string(), json::Value::Str(f.message.clone())),
            ])
        })
        .collect();
    json::Value::Obj(vec![
        (
            "schema".to_string(),
            json::Value::Str("tagspin-lint/v1".to_string()),
        ),
        (
            "rules".to_string(),
            json::Value::Arr(
                Rule::ALL
                    .iter()
                    .map(|r| {
                        json::Value::Obj(vec![
                            ("code".to_string(), json::Value::Str(r.code().to_string())),
                            ("name".to_string(), json::Value::Str(r.name().to_string())),
                            (
                                "severity".to_string(),
                                json::Value::Str(r.severity().name().to_string()),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "counts".to_string(),
            json::Value::Obj(vec![
                ("error".to_string(), json::Value::Num(errors as f64)),
                ("warn".to_string(), json::Value::Num(warns as f64)),
            ]),
        ),
        ("findings".to_string(), json::Value::Arr(list)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_v2_matrix() {
        use FileKind::*;
        let cases = [
            ("crates/core/src/session.rs", Some(Library)),
            ("src/bin/tagspin.rs", Some(Binary)),
            ("crates/bench/src/bin/reproduce.rs", Some(Binary)),
            ("examples/locate_2d.rs", Some(Example)),
            ("crates/core/examples/demo.rs", Some(Example)),
            ("crates/bench/benches/ingest.rs", Some(Bench)),
            ("tests/golden_traces.rs", Some(Test)),
            ("crates/core/tests/api.rs", Some(Test)),
            ("crates/xtask/src/lib.rs", None),
            ("vendor/proptest/src/lib.rs", None),
            ("README.md", None),
        ];
        for (path, expected) in cases {
            assert_eq!(classify(Path::new(path)), expected, "{path}");
        }
    }

    #[test]
    fn binaries_check_panics_examples_do_not() {
        assert!(FileKind::Library.checks_panics());
        assert!(FileKind::Binary.checks_panics(), "v2: binaries get L1");
        assert!(!FileKind::Example.checks_panics());
        assert!(!FileKind::Bench.checks_panics());
        assert!(!FileKind::Test.checks_panics());
    }

    #[test]
    fn json_export_shape() {
        let findings = vec![Finding {
            file: PathBuf::from("crates/core/src/a.rs"),
            line: 7,
            rule: Rule::LockDiscipline,
            message: "guard across emit".to_string(),
        }];
        let v = findings_to_json(&findings);
        assert_eq!(
            v.get("schema").and_then(|s| s.as_str()),
            Some("tagspin-lint/v1")
        );
        assert_eq!(
            v.get("counts")
                .and_then(|c| c.get("error"))
                .and_then(|n| n.as_num()),
            Some(1.0)
        );
        let text = json::to_string(&v);
        let back = json::parse(&text).expect("round-trips");
        assert_eq!(
            back.get("findings")
                .and_then(|f| f.as_arr())
                .map(|a| a.len()),
            Some(1)
        );
    }
}
