//! Domain-aware static-analysis gate for the Tagspin workspace.
//!
//! `cargo xtask lint` runs a dependency-light, line/AST-lite analyzer over
//! the workspace sources and enforces five rules the Rust compiler cannot
//! see (see `docs/LINTS.md` for the catalogue and rationale):
//!
//! * **L1 `no-panic`** — no `.unwrap()` / `.expect(` / `panic!(` in
//!   non-test library code.
//! * **L2 `angle-hygiene`** — all phase wrapping goes through
//!   `tagspin_geom::angle`; raw `% TAU`, `rem_euclid(TAU)` or manual ±π
//!   wrap arithmetic outside `crates/geom/src/angle.rs` is an error.
//! * **L3 `float-eq`** — no `==` / `!=` against floating-point values
//!   outside tests.
//! * **L4 `stringly-error`** — no `Result<_, String>` in public APIs.
//! * **L5 `lossy-cast`** — numeric `as` casts in designated hot-path
//!   files must be annotated.
//!
//! Every rule honors a line-level escape hatch — a
//! `// lint:allow(<rule>)` comment on the offending line or the line
//! above — and a file-level `// lint:allow-file(<rule>)`.
//!
//! The analyzer works on a *stripped* view of each file (string literals,
//! char literals and comments blanked out, positions preserved) and
//! tracks `#[cfg(test)]` module spans by brace matching, so it does not
//! need a full Rust parser.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench_check;
pub mod json;
pub mod rules;
pub mod strip;

use std::fmt;
use std::path::{Path, PathBuf};

/// A lint rule identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    /// L1: no `.unwrap()` / `.expect(` / `panic!(` in library code.
    NoPanic,
    /// L2: phase wrapping only via `tagspin_geom::angle`.
    AngleHygiene,
    /// L3: no float `==` / `!=` outside tests.
    FloatEq,
    /// L4: no `Result<_, String>` in public APIs.
    StringlyError,
    /// L5: annotated numeric casts in hot paths.
    LossyCast,
}

impl Rule {
    /// Stable lowercase name used in reports and `lint:allow(...)`.
    pub fn name(self) -> &'static str {
        match self {
            Rule::NoPanic => "no-panic",
            Rule::AngleHygiene => "angle-hygiene",
            Rule::FloatEq => "float-eq",
            Rule::StringlyError => "stringly-error",
            Rule::LossyCast => "lossy-cast",
        }
    }

    /// Short code (`L1`..`L5`) used in reports.
    pub fn code(self) -> &'static str {
        match self {
            Rule::NoPanic => "L1",
            Rule::AngleHygiene => "L2",
            Rule::FloatEq => "L3",
            Rule::StringlyError => "L4",
            Rule::LossyCast => "L5",
        }
    }
}

/// One rule violation at a source location.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Path relative to the workspace root.
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// The violated rule.
    pub rule: Rule,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}({}): {}",
            self.file.display(),
            self.line,
            self.rule.code(),
            self.rule.name(),
            self.message
        )
    }
}

/// How a source file participates in the rule set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// A library source file (`crates/*/src/**`, root `src/lib.rs`).
    Library,
    /// A binary source (`src/bin/**`, `crates/*/src/bin/**`).
    Binary,
    /// An example (`examples/**`).
    Example,
    /// A benchmark (`crates/*/benches/**`).
    Bench,
    /// An integration test (`tests/**` at any level).
    Test,
}

impl FileKind {
    /// Whether L1 (`no-panic`) applies to this kind of file.
    pub fn checks_panics(self) -> bool {
        matches!(self, FileKind::Library)
    }

    /// Whether L2/L3 apply (everything except test code).
    pub fn checks_expressions(self) -> bool {
        !matches!(self, FileKind::Test)
    }

    /// Whether L4 applies (public API surface lives in libraries).
    pub fn checks_signatures(self) -> bool {
        matches!(self, FileKind::Library)
    }
}

/// Files whose numeric casts must be annotated (L5): the angle-spectrum
/// and DSP kernels where a silent float→int truncation or an index→f64
/// precision loss would corrupt results rather than crash.
const HOT_PATHS: &[&str] = &[
    "crates/core/src/spectrum.rs",
    "crates/core/src/spectrum/engine.rs",
    "crates/core/src/locate/plane.rs",
    "crates/core/src/locate/space.rs",
    "crates/dsp/src/fourier.rs",
    "crates/dsp/src/peak.rs",
    "crates/dsp/src/window.rs",
    "crates/dsp/src/unwrap.rs",
];

/// The one file allowed to contain raw wrap arithmetic (L2).
const ANGLE_MODULE: &str = "crates/geom/src/angle.rs";

/// Classify a workspace-relative path, or `None` if it should not be
/// scanned at all.
pub fn classify(rel: &Path) -> Option<FileKind> {
    let s = rel.to_string_lossy().replace('\\', "/");
    if !s.ends_with(".rs") {
        return None;
    }
    // Tooling, vendored stubs and build artifacts are out of scope.
    if s.starts_with("crates/xtask/") || s.starts_with("vendor/") || s.starts_with("target/") {
        return None;
    }
    if s.starts_with("tests/") || s.contains("/tests/") {
        return Some(FileKind::Test);
    }
    if s.starts_with("examples/") || s.contains("/examples/") {
        return Some(FileKind::Example);
    }
    if s.contains("/benches/") {
        return Some(FileKind::Bench);
    }
    if s.contains("/bin/") {
        return Some(FileKind::Binary);
    }
    if s.starts_with("src/") || s.contains("/src/") {
        return Some(FileKind::Library);
    }
    None
}

/// Analyze one file's contents.
pub fn analyze_file(rel: &Path, source: &str, kind: FileKind) -> Vec<Finding> {
    let rel_str = rel.to_string_lossy().replace('\\', "/");
    let stripped = strip::strip_source(source);
    let test_lines = strip::test_region_lines(&stripped);
    let original_lines: Vec<&str> = source.lines().collect();
    let stripped_lines: Vec<&str> = stripped.lines().collect();

    let ctx = rules::FileContext {
        rel: &rel_str,
        kind,
        original_lines: &original_lines,
        stripped_lines: &stripped_lines,
        test_lines: &test_lines,
        is_hot_path: HOT_PATHS.contains(&rel_str.as_str()),
        is_angle_module: rel_str == ANGLE_MODULE,
    };

    let mut findings = Vec::new();
    rules::no_panic(&ctx, &mut findings);
    rules::angle_hygiene(&ctx, &mut findings);
    rules::float_eq(&ctx, &mut findings);
    rules::stringly_error(&ctx, &mut findings);
    rules::lossy_cast(&ctx, &mut findings);

    findings
        .into_iter()
        .map(|(line, rule, message)| Finding {
            file: rel.to_path_buf(),
            line,
            rule,
            message,
        })
        .collect()
}

/// Recursively collect `.rs` files under `dir` (workspace-relative paths).
fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let abs = root.join(dir);
    if !abs.is_dir() {
        return Ok(());
    }
    for entry in std::fs::read_dir(&abs)? {
        let entry = entry?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.starts_with('.') || name == "target" || name == "vendor" {
            continue;
        }
        let rel = dir.join(&*name);
        let ty = entry.file_type()?;
        if ty.is_dir() {
            collect_rs_files(root, &rel, out)?;
        } else if name.ends_with(".rs") {
            out.push(rel);
        }
    }
    Ok(())
}

/// Run the full lint pass over a workspace rooted at `root`.
///
/// Findings come back sorted by file then line.
///
/// # Errors
///
/// Returns `Err` if the workspace cannot be read.
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    let mut files = Vec::new();
    for top in ["crates", "src", "tests", "examples"] {
        collect_rs_files(root, Path::new(top), &mut files)?;
    }
    files.sort();

    let mut findings = Vec::new();
    for rel in &files {
        let Some(kind) = classify(rel) else { continue };
        let source = std::fs::read_to_string(root.join(rel))?;
        findings.extend(analyze_file(rel, &source, kind));
    }
    findings.sort_by(|a, b| a.file.cmp(&b.file).then(a.line.cmp(&b.line)));
    Ok(findings)
}
