//! Source stripping and test-region detection.
//!
//! The analyzer never parses Rust properly; instead it works on a
//! *stripped* copy of each file in which comments, string literals and
//! char literals are blanked with spaces (newlines preserved), so that
//! byte and line positions in the stripped text match the original.
//! Pattern matching on the stripped text cannot be fooled by a `panic!`
//! inside a doc comment or an error message containing `% TAU`.

/// Blank out comments and string/char literals, preserving positions.
pub fn strip_source(src: &str) -> String {
    let bytes = src.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;

    // Writes `n` source bytes as spaces (newlines kept).
    fn blank(out: &mut Vec<u8>, bytes: &[u8], from: usize, to: usize) {
        for &b in &bytes[from..to] {
            out.push(if b == b'\n' { b'\n' } else { b' ' });
        }
    }

    while i < bytes.len() {
        let b = bytes[i];
        let next = bytes.get(i + 1).copied();

        // Line comment (also covers `///` and `//!` doc comments).
        if b == b'/' && next == Some(b'/') {
            let end = src[i..].find('\n').map(|n| i + n).unwrap_or(bytes.len());
            blank(&mut out, bytes, i, end);
            i = end;
            continue;
        }

        // Block comment, possibly nested.
        if b == b'/' && next == Some(b'*') {
            let mut depth = 1;
            let mut j = i + 2;
            while j < bytes.len() && depth > 0 {
                if bytes[j] == b'/' && bytes.get(j + 1) == Some(&b'*') {
                    depth += 1;
                    j += 2;
                } else if bytes[j] == b'*' && bytes.get(j + 1) == Some(&b'/') {
                    depth -= 1;
                    j += 2;
                } else {
                    j += 1;
                }
            }
            blank(&mut out, bytes, i, j);
            i = j;
            continue;
        }

        // Raw string literal r"..." / r#"..."# (and br variants).
        if (b == b'r' || (b == b'b' && next == Some(b'r'))) && !prev_is_ident(&out) {
            let start = if b == b'b' { i + 2 } else { i + 1 };
            let mut hashes = 0;
            let mut j = start;
            while bytes.get(j) == Some(&b'#') {
                hashes += 1;
                j += 1;
            }
            if bytes.get(j) == Some(&b'"') {
                // Find closing quote followed by `hashes` hashes.
                let closer: String = std::iter::once('"')
                    .chain(std::iter::repeat_n('#', hashes))
                    .collect();
                let body_start = j + 1;
                let end = src[body_start..]
                    .find(&closer)
                    .map(|n| body_start + n + closer.len())
                    .unwrap_or(bytes.len());
                blank(&mut out, bytes, i, end);
                i = end;
                continue;
            }
        }

        // Ordinary string literal (and b"...").
        if b == b'"' || (b == b'b' && next == Some(b'"') && !prev_is_ident(&out)) {
            let mut j = if b == b'b' { i + 2 } else { i + 1 };
            while j < bytes.len() {
                match bytes[j] {
                    b'\\' => j += 2,
                    b'"' => {
                        j += 1;
                        break;
                    }
                    _ => j += 1,
                }
            }
            blank(&mut out, bytes, i, j.min(bytes.len()));
            i = j.min(bytes.len());
            continue;
        }

        // Char literal vs lifetime: treat as a char literal only when it
        // closes within a couple of characters (`'x'`, `'\n'`, `'\\'`,
        // `'\u{..}'`); otherwise it is a lifetime and passes through.
        if b == b'\'' && !prev_is_ident(&out) {
            let lit_end = char_literal_end(bytes, i);
            if let Some(end) = lit_end {
                blank(&mut out, bytes, i, end);
                i = end;
                continue;
            }
        }

        out.push(b);
        i += 1;
    }

    // The input was valid UTF-8 and we only replaced whole runs with
    // ASCII spaces, but a literal may have started mid-codepoint if the
    // file was unusual; fall back lossily rather than panic.
    String::from_utf8(out).unwrap_or_else(|e| String::from_utf8_lossy(e.as_bytes()).into_owned())
}

/// Whether the previously emitted byte continues an identifier — used to
/// distinguish `r"..."` from an identifier ending in `r`, and `'a` in
/// `Vec<'a>` from a char literal.
fn prev_is_ident(out: &[u8]) -> bool {
    matches!(out.last(), Some(&c) if c == b'_' || c.is_ascii_alphanumeric())
}

/// If a char literal starts at `i`, return the index one past its closing
/// quote; `None` if this is a lifetime.
fn char_literal_end(bytes: &[u8], i: usize) -> Option<usize> {
    let mut j = i + 1;
    match bytes.get(j) {
        Some(b'\\') => {
            // Escape: skip the backslash and the escaped char, then scan
            // to the closing quote (covers `\u{1F600}`).
            j += 2;
            while j < bytes.len() && bytes[j] != b'\'' && bytes[j] != b'\n' {
                j += 1;
            }
            (bytes.get(j) == Some(&b'\'')).then_some(j + 1)
        }
        Some(_) => {
            // One (possibly multi-byte) char then a quote.
            j += 1;
            while j < bytes.len() && bytes[j] & 0xC0 == 0x80 {
                j += 1; // continuation bytes of a multi-byte char
            }
            (bytes.get(j) == Some(&b'\'')).then_some(j + 1)
        }
        None => None,
    }
}

/// Line numbers (1-based) that fall inside `#[cfg(test)]` module bodies.
///
/// Works on stripped source: finds `#[cfg(test)]` attributes, then the
/// `{` that opens the following item, and brace-matches to its close.
pub fn test_region_lines(stripped: &str) -> Vec<bool> {
    let lines: Vec<&str> = stripped.lines().collect();
    let mut in_test = vec![false; lines.len() + 1];

    let mut byte_of_line = Vec::with_capacity(lines.len());
    let mut acc = 0;
    for l in &lines {
        byte_of_line.push(acc);
        acc += l.len() + 1;
    }

    for (idx, line) in lines.iter().enumerate() {
        let t = line.trim_start();
        if !(t.starts_with("#[cfg(test)]") || t.starts_with("#[cfg(all(test")) {
            continue;
        }
        // Find the opening brace of the annotated item.
        let mut open = None;
        'search: for (j, l) in lines.iter().enumerate().skip(idx) {
            let from = if j == idx {
                line.find(']').map(|p| p + 1).unwrap_or(0)
            } else {
                0
            };
            if let Some(p) = l[from.min(l.len())..].find('{') {
                open = Some(byte_of_line[j] + from.min(l.len()) + p);
                break 'search;
            }
            // Stop if another item clearly started without a brace.
            if j > idx + 8 {
                break;
            }
        }
        let Some(open) = open else { continue };

        // Brace-match from `open`.
        let bytes = stripped.as_bytes();
        let mut depth = 0usize;
        let mut end = bytes.len();
        for (k, &b) in bytes.iter().enumerate().skip(open) {
            match b {
                b'{' => depth += 1,
                b'}' => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        end = k;
                        break;
                    }
                }
                _ => {}
            }
        }

        // Mark covered lines.
        let start_line = idx;
        let end_line = byte_of_line
            .partition_point(|&p| p <= end)
            .saturating_sub(1);
        for flag in in_test
            .iter_mut()
            .take(end_line.min(lines.len() - 1) + 1)
            .skip(start_line)
        {
            *flag = true;
        }
    }
    in_test.truncate(lines.len());
    in_test
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_comments_and_strings() {
        let src = r#"let x = "panic!(oops)"; // panic!(no)
/* panic!(nope) */ let y = 1;"#;
        let s = strip_source(src);
        assert!(!s.contains("panic!"), "stripped: {s}");
        assert!(s.contains("let x ="));
        assert!(s.contains("let y = 1;"));
        assert_eq!(s.lines().count(), src.lines().count());
    }

    #[test]
    fn strips_raw_strings_and_chars() {
        let src = r##"let r = r#"x.unwrap()"#; let c = '%'; let l: &'static str = "";"##;
        let s = strip_source(src);
        assert!(!s.contains("unwrap"));
        assert!(!s.contains('%'));
        assert!(s.contains("'static"), "lifetime survived: {s}");
    }

    #[test]
    fn escaped_quote_in_char() {
        let s = strip_source(r"let q = '\''; let x = 1;");
        assert!(s.contains("let x = 1;"));
    }

    #[test]
    fn nested_block_comments() {
        let s = strip_source("/* a /* b */ panic!() */ keep");
        assert!(!s.contains("panic"));
        assert!(s.contains("keep"));
    }

    #[test]
    fn finds_test_regions() {
        let src = "\
fn real() {}

#[cfg(test)]
mod tests {
    #[test]
    fn t() { x.unwrap(); }
}

fn also_real() {}
";
        let stripped = strip_source(src);
        let flags = test_region_lines(&stripped);
        assert!(!flags[0], "fn real is not test code");
        assert!(flags[3], "mod tests is test code");
        assert!(flags[5], "body is test code");
        assert!(!flags[8], "fn also_real is not test code");
    }
}
