//! Entry point for `cargo xtask <command>`.

use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: cargo xtask lint [--root <dir>] [--json] [--json-out <file>]");
    eprintln!("       cargo xtask golden [--bless]");
    eprintln!(
        "       cargo xtask bench-check [--baselines <dir>] [--current <dir>] \
         [--tolerance <frac>] [--bless]"
    );
    eprintln!();
    eprintln!("commands:");
    eprintln!("  lint         run the domain-aware static-analysis gate (see docs/LINTS.md)");
    eprintln!("               --json prints a tagspin-lint/v1 report on stdout;");
    eprintln!("               --json-out <file> writes it to a file as well");
    eprintln!("  golden       run the golden-trace suite; --bless regenerates tests/golden/");
    eprintln!("  bench-check  compare BENCH_*.json against bench/baselines/; --bless records");
    eprintln!("               the current artifacts as the new baselines");
    ExitCode::from(2)
}

fn workspace_root() -> PathBuf {
    // crates/xtask -> crates -> workspace root.
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(|p| p.parent())
        .map(PathBuf::from)
        .unwrap_or(manifest)
}

/// Run (or re-bless) the golden fixtures by driving the root package's
/// `golden_traces`, `golden_metrics` and `golden_incremental` integration
/// tests with `GOLDEN_BLESS` set.
fn golden(mut args: impl Iterator<Item = String>) -> ExitCode {
    let mut bless = false;
    for arg in args.by_ref() {
        match arg.as_str() {
            "--bless" => bless = true,
            other => {
                eprintln!("unknown argument `{other}`");
                return usage();
            }
        }
    }
    let mut cmd = std::process::Command::new(env!("CARGO"));
    cmd.args([
        "test",
        "-p",
        "tagspin",
        "--test",
        "golden_traces",
        "--test",
        "golden_metrics",
        "--test",
        "golden_incremental",
    ])
    .current_dir(workspace_root())
    .env("GOLDEN_BLESS", if bless { "1" } else { "0" });
    match cmd.status() {
        Ok(status) if status.success() => {
            if bless {
                println!("xtask golden: fixtures regenerated under tests/golden/");
            } else {
                println!("xtask golden: fixtures match");
            }
            ExitCode::SUCCESS
        }
        Ok(_) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("xtask golden: failed to spawn cargo: {e}");
            ExitCode::FAILURE
        }
    }
}

/// The `bench-check` subcommand: benchmark regression gate (see
/// `xtask::bench_check`). Exit 0 = within tolerance, 1 = regression or
/// machinery failure, 2 = bad usage.
fn bench_check_cmd(mut args: impl Iterator<Item = String>) -> ExitCode {
    let root = workspace_root();
    let mut opts = xtask::bench_check::CheckOptions {
        baselines: root.join("bench/baselines"),
        current: root.clone(),
        tolerance: 0.25,
    };
    let mut bless = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--baselines" => {
                let Some(dir) = args.next() else {
                    eprintln!("--baselines requires a directory argument");
                    return usage();
                };
                opts.baselines = PathBuf::from(dir);
            }
            "--current" => {
                let Some(dir) = args.next() else {
                    eprintln!("--current requires a directory argument");
                    return usage();
                };
                opts.current = PathBuf::from(dir);
            }
            "--tolerance" => {
                let Some(frac) = args.next().and_then(|v| v.parse::<f64>().ok()) else {
                    eprintln!("--tolerance requires a numeric fraction (e.g. 0.25)");
                    return usage();
                };
                if !(0.0..10.0).contains(&frac) {
                    eprintln!("--tolerance must be in [0, 10)");
                    return usage();
                }
                opts.tolerance = frac;
            }
            "--bless" => bless = true,
            other => {
                eprintln!("unknown argument `{other}`");
                return usage();
            }
        }
    }

    if bless {
        return match xtask::bench_check::bless(&opts) {
            Ok(written) => {
                for path in written {
                    println!("xtask bench-check: blessed {}", path.display());
                }
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("xtask bench-check: {e}");
                ExitCode::FAILURE
            }
        };
    }

    match xtask::bench_check::check(&opts) {
        Ok(report) => {
            print!("{}", report.markdown());
            if report.passed() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("xtask bench-check: {e}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(cmd) = args.next() else {
        return usage();
    };
    match cmd.as_str() {
        "lint" => {}
        "golden" => return golden(args),
        "bench-check" => return bench_check_cmd(args),
        other => {
            eprintln!("unknown command `{other}`");
            return usage();
        }
    }

    let mut root = workspace_root();
    let mut json_stdout = false;
    let mut json_out: Option<PathBuf> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                let Some(dir) = args.next() else {
                    eprintln!("--root requires a directory argument");
                    return usage();
                };
                root = PathBuf::from(dir);
            }
            "--json" => json_stdout = true,
            "--json-out" => {
                let Some(path) = args.next() else {
                    eprintln!("--json-out requires a file argument");
                    return usage();
                };
                json_out = Some(PathBuf::from(path));
            }
            other => {
                eprintln!("unknown argument `{other}`");
                return usage();
            }
        }
    }

    let findings = match xtask::lint_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!(
                "xtask lint: failed to read workspace at {}: {e}",
                root.display()
            );
            return ExitCode::FAILURE;
        }
    };

    if json_stdout || json_out.is_some() {
        let doc = xtask::json::to_string(&xtask::findings_to_json(&findings));
        if let Some(path) = &json_out {
            if let Err(e) = std::fs::write(path, &doc) {
                eprintln!("xtask lint: failed to write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        }
        if json_stdout {
            print!("{doc}");
        }
    }

    let errors: Vec<_> = findings
        .iter()
        .filter(|f| f.rule.severity() == xtask::Severity::Error)
        .collect();
    let warns: Vec<_> = findings
        .iter()
        .filter(|f| f.rule.severity() == xtask::Severity::Warn)
        .collect();

    if !json_stdout {
        for f in &findings {
            println!("{f}");
        }
    }

    // Warn-level rules (L9) gate against a tracked count baseline: the
    // count may shrink freely but growing it fails the gate. A missing
    // baseline file means warn-only.
    let warn_budget = read_warn_baseline(&root);
    let warn_over = warn_budget.is_some_and(|budget| warns.len() > budget);

    if errors.is_empty() && !warn_over {
        if findings.is_empty() {
            // With --json the document owns stdout; keep it parseable.
            if json_stdout {
                eprintln!("xtask lint: clean (rules L1-L9, root {})", root.display());
            } else {
                println!("xtask lint: clean (rules L1-L9, root {})", root.display());
            }
        } else {
            eprintln!(
                "xtask lint: {} warning(s), within baseline ({})",
                warns.len(),
                warn_budget.map_or("none tracked".to_string(), |b| b.to_string())
            );
        }
        return ExitCode::SUCCESS;
    }

    let mut by_rule: Vec<(&str, usize)> = Vec::new();
    for f in &findings {
        match by_rule.iter_mut().find(|(name, _)| *name == f.rule.name()) {
            Some((_, n)) => *n += 1,
            None => by_rule.push((f.rule.name(), 1)),
        }
    }
    let summary: Vec<String> = by_rule
        .iter()
        .map(|(name, n)| format!("{n} {name}"))
        .collect();
    eprintln!(
        "xtask lint: {} error(s), {} warning(s) ({})",
        errors.len(),
        warns.len(),
        summary.join(", ")
    );
    if warn_over {
        eprintln!(
            "xtask lint: warn count {} exceeds the tracked baseline {} \
             (crates/xtask/lint-baseline.json)",
            warns.len(),
            warn_budget.unwrap_or(0)
        );
    }
    ExitCode::FAILURE
}

/// Read the tracked warn-count baseline (`crates/xtask/lint-baseline.json`,
/// schema `tagspin-lint-baseline/v1`). `None` = no baseline tracked.
fn read_warn_baseline(root: &std::path::Path) -> Option<usize> {
    let text = std::fs::read_to_string(root.join("crates/xtask/lint-baseline.json")).ok()?;
    let doc = xtask::json::parse(&text).ok()?;
    if doc.get("schema").and_then(|s| s.as_str()) != Some("tagspin-lint-baseline/v1") {
        return None;
    }
    let n = doc.get("warn_budget").and_then(|n| n.as_num())?;
    if n.is_finite() && n >= 0.0 {
        Some(n as usize)
    } else {
        None
    }
}
