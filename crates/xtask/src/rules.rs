//! The nine lint rules, evaluated over the token stream.
//!
//! Each per-file rule walks the *significant* (non-comment) tokens of
//! one file via [`FileContext`] and appends `(line, rule, message)`
//! tuples. Test regions are skipped through [`crate::scopes::Scopes`],
//! and the escape hatches (`// lint:allow(<rule>)` on the same or the
//! preceding line, `// lint:allow-file(<rule>)` anywhere) are honored
//! only when they appear inside comment tokens — a marker inside a
//! string literal is just a string.
//!
//! L6's lock-acquisition-order edges and L8's metric-name cross-check
//! are workspace-level analyses driven from [`crate::lint_workspace`];
//! this module provides their building blocks
//! ([`lock_order_edges`], [`metric_name_hygiene`]).

use crate::lexer::{TokenKind, TokenStream};
use crate::scopes::{ScopeKind, Scopes, Trivia};
use crate::{FileKind, Rule};

/// Everything the per-file rules need to know about one file.
pub struct FileContext<'a> {
    /// Workspace-relative path with `/` separators.
    pub rel: &'a str,
    /// How the file participates in the rule set.
    pub kind: FileKind,
    /// The lexed token stream.
    pub ts: &'a TokenStream<'a>,
    /// Brace/scope/test-region analysis.
    pub sc: &'a Scopes,
    /// Comment tokens (allow markers, ordering notes).
    pub tv: &'a Trivia,
    /// Whether L5 applies to this file.
    pub is_hot_path: bool,
    /// Whether this file is `crates/geom/src/angle.rs` (exempt from L2).
    pub is_angle_module: bool,
    /// Whether this file is `crates/core/src/obs/metrics.rs` (exempt
    /// from L7: the metrics cells are the one sanctioned atomics nest).
    pub is_metrics_module: bool,
}

/// One `(line, rule, message)` finding.
pub type Sink = Vec<(usize, Rule, String)>;

impl FileContext<'_> {
    /// Text of the `i`-th significant token (`""` out of range).
    fn t(&self, i: usize) -> &str {
        self.ts.sig_text(i)
    }

    /// 1-based line of the `i`-th significant token.
    fn line(&self, i: usize) -> usize {
        self.ts.sig_token(i).map(|t| t.line).unwrap_or(0)
    }

    fn emit(&self, out: &mut Sink, i: usize, rule: Rule, message: String) {
        let line = self.line(i);
        if !(self.tv.allows(line, rule.name()) || self.tv.allows_file(rule.name())) {
            out.push((line, rule, message));
        }
    }
}

/// Walk a `seg::seg::…::last` path forward from an ident at `i`.
/// Returns `(first_seg, last_seg, index_one_past_the_path)`.
fn path_forward<'a>(ctx: &'a FileContext<'_>, i: usize) -> (&'a str, &'a str, usize) {
    let first = ctx.t(i);
    let mut last = first;
    let mut j = i;
    while ctx.t(j + 1) == "::"
        && ctx
            .ts
            .sig_token(j + 2)
            .is_some_and(|t| t.kind == TokenKind::Ident)
    {
        j += 2;
        last = ctx.t(j);
    }
    (first, last, j + 1)
}

/// Walk a path *backward* from an ident at `i` to its first segment.
fn path_back(ctx: &FileContext<'_>, i: usize) -> usize {
    let mut j = i;
    while j >= 2
        && ctx.t(j - 1) == "::"
        && ctx
            .ts
            .sig_token(j - 2)
            .is_some_and(|t| t.kind == TokenKind::Ident)
    {
        j -= 2;
    }
    j
}

/// Render the source between two significant tokens (inclusive).
fn span_text<'a>(ctx: &FileContext<'a>, from: usize, to: usize) -> &'a str {
    match (ctx.ts.sig_token(from), ctx.ts.sig_token(to)) {
        (Some(a), Some(b)) if b.end >= a.start => &ctx.ts.source()[a.start..b.end],
        _ => "",
    }
}

/// L1: no `.unwrap()` / `.expect(` / `panic!(` in non-test library or
/// binary code. Exact token matches: `debug_panic!` or `unwrap_or` are
/// different identifiers and do not fire.
pub fn no_panic(ctx: &FileContext<'_>, out: &mut Sink) {
    if !ctx.kind.checks_panics() {
        return;
    }
    for i in 0..ctx.ts.sig_len() {
        if ctx.sc.in_test(i)
            || ctx
                .ts
                .sig_token(i)
                .is_none_or(|t| t.kind != TokenKind::Ident)
        {
            continue;
        }
        let what = match ctx.t(i) {
            "unwrap"
                if ctx.t(i.wrapping_sub(1)) == "."
                    && ctx.t(i + 1) == "("
                    && ctx.t(i + 2) == ")" =>
            {
                "`.unwrap()` can panic"
            }
            "expect" if ctx.t(i.wrapping_sub(1)) == "." && ctx.t(i + 1) == "(" => {
                "`.expect(...)` can panic"
            }
            "panic" if ctx.t(i + 1) == "!" => "explicit `panic!`",
            _ => continue,
        };
        let target = match ctx.kind {
            FileKind::Binary => "binary",
            _ => "library",
        };
        ctx.emit(
            out,
            i,
            Rule::NoPanic,
            format!("{what} in {target} code; return a typed error instead"),
        );
    }
}

/// After an opening construct at `start`, resolve an angle-wrap operand:
/// an optional `(`, an optional unary `-`, then either a const path whose
/// last segment is returned, or the `2.0 * PI` product (returned as
/// `"TAU"` since they are the same full turn).
fn wrap_operand<'a>(ctx: &'a FileContext<'_>, start: usize) -> Option<&'a str> {
    let mut j = start;
    if ctx.t(j) == "(" {
        j += 1;
    }
    if ctx.t(j) == "-" {
        j += 1;
    }
    let tok = ctx.ts.sig_token(j)?;
    match tok.kind {
        TokenKind::Ident => {
            let (_, last, _) = path_forward(ctx, j);
            Some(last)
        }
        TokenKind::Num if ctx.t(j) == "2.0" && ctx.t(j + 1) == "*" => {
            let k = j + 2;
            if ctx
                .ts
                .sig_token(k)
                .is_some_and(|t| t.kind == TokenKind::Ident)
            {
                let (_, last, _) = path_forward(ctx, k);
                if last == "PI" {
                    return Some("TAU");
                }
            }
            None
        }
        _ => None,
    }
}

/// L2: raw phase-wrap arithmetic outside `tagspin_geom::angle`.
pub fn angle_hygiene(ctx: &FileContext<'_>, out: &mut Sink) {
    if !ctx.kind.checks_expressions() || ctx.is_angle_module {
        return;
    }
    let n = ctx.ts.sig_len();
    for i in 0..n {
        if ctx.sc.in_test(i) {
            continue;
        }
        let text = ctx.t(i);
        // `x.rem_euclid(TAU)` / `x.rem_euclid(2.0 * PI)`.
        if text == "rem_euclid" && ctx.t(i.wrapping_sub(1)) == "." && ctx.t(i + 1) == "(" {
            if wrap_operand(ctx, i + 2) == Some("TAU") {
                ctx.emit(
                    out,
                    i,
                    Rule::AngleHygiene,
                    "raw 2\u{3c0} wrap; use tagspin_geom::angle::{wrap_tau, wrap_pi, diff} \
                     instead"
                        .to_string(),
                );
            }
            continue;
        }
        // `x % TAU` (but not `x % TAU_HALF`: token match is exact).
        if text == "%" && wrap_operand(ctx, i + 1) == Some("TAU") {
            ctx.emit(
                out,
                i,
                Rule::AngleHygiene,
                "raw 2\u{3c0} wrap; use tagspin_geom::angle::{wrap_tau, wrap_pi, diff} instead"
                    .to_string(),
            );
        }
    }
    // Manual ±π wrap: a PI comparison and a TAU adjustment on one line
    // (`if x > PI { x -= TAU }`, `while d <= -PI { d += TAU }`, …).
    let mut i = 0;
    while i < n {
        let line = ctx.line(i);
        let mut end = i;
        while end + 1 < n && ctx.line(end + 1) == line {
            end += 1;
        }
        if !ctx.sc.line_in_test(line) {
            let compares_pi = (i..=end).any(|j| {
                matches!(ctx.t(j), ">" | ">=" | "<" | "<=")
                    && wrap_operand(ctx, j + 1) == Some("PI")
            });
            let adjusts_tau = (i..=end).any(|j| {
                matches!(ctx.t(j), "+" | "-" | "+=" | "-=")
                    && ctx
                        .ts
                        .sig_token(j + 1)
                        .is_some_and(|t| t.kind == TokenKind::Ident)
                    && path_forward(ctx, j + 1).1 == "TAU"
            });
            if compares_pi && adjusts_tau {
                ctx.emit(
                    out,
                    i,
                    Rule::AngleHygiene,
                    "manual \u{b1}\u{3c0} wrap arithmetic; use tagspin_geom::angle::wrap_pi \
                     instead"
                        .to_string(),
                );
            }
        }
        i = end + 1;
    }
}

/// Whether a numeric literal is recognizably floating-point.
fn floatish_num(text: &str) -> bool {
    text.contains('.') || text.ends_with("f32") || text.ends_with("f64")
}

/// Whether the operand adjacent to a comparison is recognizably a float:
/// a float literal or an `f64::`/`f32::` associated constant.
/// Returns the rendered operand text when it is.
fn float_operand<'a>(ctx: &'a FileContext<'a>, i: usize, forward: bool) -> Option<&'a str> {
    let mut j = i;
    if forward && ctx.t(j) == "-" {
        j += 1;
    }
    let tok = ctx.ts.sig_token(j)?;
    match tok.kind {
        TokenKind::Num if floatish_num(ctx.t(j)) => Some(ctx.t(j)),
        TokenKind::Ident => {
            let (start, end) = if forward {
                let (_, _, after) = path_forward(ctx, j);
                (j, after - 1)
            } else {
                (path_back(ctx, j), j)
            };
            let first = ctx.t(start);
            if first == "f64" || first == "f32" {
                Some(span_text(ctx, start, end))
            } else {
                None
            }
        }
        _ => None,
    }
}

/// L3: `==` / `!=` against floating-point values outside tests.
///
/// Token-lite: only comparisons with a recognizable float operand (a
/// float literal or an `f64::`/`f32::` constant) are flagged; variable ==
/// variable comparisons need type knowledge this analyzer does not have.
pub fn float_eq(ctx: &FileContext<'_>, out: &mut Sink) {
    if !ctx.kind.checks_expressions() {
        return;
    }
    for i in 0..ctx.ts.sig_len() {
        let op = ctx.t(i);
        if (op != "==" && op != "!=") || ctx.sc.in_test(i) {
            continue;
        }
        let lhs = if i > 0 {
            float_operand(ctx, i - 1, false)
        } else {
            None
        };
        let rhs = float_operand(ctx, i + 1, true);
        if lhs.is_some() || rhs.is_some() {
            let lhs = lhs.unwrap_or_else(|| if i > 0 { ctx.t(i - 1) } else { "" });
            let rhs = rhs.unwrap_or_else(|| ctx.t(i + 1));
            ctx.emit(
                out,
                i,
                Rule::FloatEq,
                format!(
                    "floating-point `{op}` comparison (`{lhs} {op} {rhs}`); \
                     use an epsilon/ULP helper from tagspin_dsp::float"
                ),
            );
        }
    }
}

/// L4: `Result<_, String>` in a `pub fn` signature.
pub fn stringly_error(ctx: &FileContext<'_>, out: &mut Sink) {
    if !ctx.kind.checks_signatures() {
        return;
    }
    let n = ctx.ts.sig_len();
    for i in 0..n {
        if ctx.t(i) != "pub" || ctx.sc.in_test(i) {
            continue;
        }
        let mut j = i + 1;
        if ctx.t(j) == "(" {
            // `pub(crate)` / `pub(super)` is not public API.
            continue;
        }
        while matches!(ctx.t(j), "async" | "const" | "unsafe") {
            j += 1;
        }
        if ctx.t(j) != "fn" {
            continue;
        }
        // Scan the signature until its body opens or the item ends.
        let mut k = j;
        let mut stringly = false;
        while k < n && ctx.t(k) != "{" && ctx.t(k) != ";" {
            if ctx.t(k) == "Result" && ctx.t(k + 1) == "<" {
                stringly |= result_err_is_string(ctx, k + 2);
            }
            k += 1;
        }
        if stringly {
            ctx.emit(
                out,
                i,
                Rule::StringlyError,
                "public API returns `Result<_, String>`; define a typed error enum \
                 implementing std::error::Error"
                    .to_string(),
            );
        }
    }
}

/// From the token after `Result<`, decide whether the error type (the
/// top-level second generic argument) is exactly `String`.
fn result_err_is_string(ctx: &FileContext<'_>, start: usize) -> bool {
    let mut depth = 1i32;
    let mut j = start;
    while j < ctx.ts.sig_len() && depth > 0 {
        match ctx.t(j) {
            "<" => depth += 1,
            ">" => depth -= 1,
            "<<" => depth += 2,
            ">>" => depth -= 2,
            "," if depth == 1 => {
                // The error type begins here.
                return ctx.t(j + 1) == "String" && ctx.t(j + 2) == ">";
            }
            _ => {}
        }
        j += 1;
    }
    false
}

/// Numeric types whose `as` casts are lossy-suspect (L5).
const NUMERIC_TYPES: [&str; 13] = [
    "usize", "u8", "u16", "u32", "u64", "u128", "isize", "i8", "i16", "i32", "i64", "f32", "f64",
];

/// L5: numeric `as` casts in hot-path files must carry an annotation.
pub fn lossy_cast(ctx: &FileContext<'_>, out: &mut Sink) {
    if !ctx.is_hot_path {
        return;
    }
    let mut last_line = 0;
    for i in 0..ctx.ts.sig_len() {
        if ctx.t(i) != "as" || ctx.sc.in_test(i) {
            continue;
        }
        let ty = ctx.t(i + 1);
        if !NUMERIC_TYPES.contains(&ty) {
            continue;
        }
        let line = ctx.line(i);
        if line == last_line {
            continue; // one finding per line is enough
        }
        last_line = line;
        ctx.emit(
            out,
            i,
            Rule::LossyCast,
            format!(
                "unannotated numeric cast `as {ty}` in a hot path; justify with \
                 `// lint:allow(lossy-cast) <why it cannot lose value>`"
            ),
        );
    }
}

/// Callees a live lock guard must not span (L6): observer emission and
/// the spectrum recompute entry points, whose latency and re-entrancy
/// must never be coupled to a held lock.
const GUARDED_CALLEES: [&str; 11] = [
    "emit",
    "on_event",
    "on_batch",
    "spectrum_2d",
    "spectrum_3d",
    "spectrum_3d_for_disk",
    "fix_2d",
    "fix_3d",
    "fix_3d_aided",
    "bearing_2d",
    "bearing_3d",
];

/// A lock guard binding discovered by the L6 scan.
struct Guard {
    /// Binding identifier.
    name: String,
    /// Lock class: last field segment of the receiver (`self.cache` →
    /// `cache`).
    class: String,
    /// Significant index where liveness begins (the binding's `;`).
    live_from: usize,
    /// Significant index where the enclosing block closes.
    live_to: usize,
    /// 1-based line of the acquisition.
    line: usize,
}

/// One nested lock acquisition: `held` was live when `acquired` was
/// taken. Aggregated workspace-wide for cycle detection.
#[derive(Debug, Clone)]
pub struct LockEdge {
    /// Module tag of the file (first path segment under `src/`).
    pub module: String,
    /// Class of the lock already held.
    pub held: String,
    /// Class of the lock being acquired.
    pub acquired: String,
    /// 1-based line of the nested acquisition.
    pub line: usize,
}

/// Detect a `.lock()` / `.read()` / `.write()` acquisition ending at
/// significant index `i` (the method ident). All three take no
/// arguments, which keeps `io::Read::read(&mut buf)` out of scope.
/// Returns the receiver's lock class and the index of the closing `)`.
fn lock_acquisition(ctx: &FileContext<'_>, i: usize) -> Option<(String, usize)> {
    if !matches!(ctx.t(i), "lock" | "read" | "write")
        || ctx.t(i.wrapping_sub(1)) != "."
        || ctx.t(i + 1) != "("
        || ctx.t(i + 2) != ")"
    {
        return None;
    }
    // Receiver chain: walk back over `ident (. ident)*`; the class is
    // the last field segment before the lock call.
    let mut j = i - 1; // the `.`
    let mut class = None;
    while j >= 1 {
        let recv = ctx.ts.sig_token(j - 1)?;
        if recv.kind != TokenKind::Ident {
            break;
        }
        if class.is_none() {
            class = Some(ctx.t(j - 1).to_string());
        }
        if j >= 3 && ctx.t(j - 2) == "." {
            j -= 2;
        } else {
            break;
        }
    }
    class.map(|c| (c, i + 2))
}

/// Skip an adapter chain after a closing `)` at `i`: `.unwrap()`,
/// `.expect(…)`, `.unwrap_or_else(…)`, `.unwrap_or_default()`. Returns
/// the significant index just past the chain.
fn skip_adapters(ctx: &FileContext<'_>, mut i: usize) -> usize {
    loop {
        if ctx.t(i + 1) == "."
            && matches!(
                ctx.t(i + 2),
                "unwrap" | "expect" | "unwrap_or_else" | "unwrap_or_default"
            )
            && ctx.t(i + 3) == "("
        {
            // Skip to the matching close paren.
            let mut depth = 0i32;
            let mut j = i + 3;
            while j < ctx.ts.sig_len() {
                match ctx.t(j) {
                    "(" => depth += 1,
                    ")" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            i = j;
        } else {
            return i + 1;
        }
    }
}

/// Find the lock-guard `let` bindings of a file: `let [mut] g = recv
/// .lock()/.read()/.write()` plus optional adapters, terminated by `;`.
/// A chain that continues with any other method is a temporary whose
/// guard dies at the end of the statement, not a binding.
fn find_guards(ctx: &FileContext<'_>) -> Vec<Guard> {
    let mut guards = Vec::new();
    let n = ctx.ts.sig_len();
    for i in 0..n {
        if ctx.t(i) != "let" {
            continue;
        }
        let mut j = i + 1;
        if ctx.t(j) == "mut" {
            j += 1;
        }
        let name_tok = match ctx.ts.sig_token(j) {
            Some(t) if t.kind == TokenKind::Ident => ctx.t(j).to_string(),
            _ => continue,
        };
        if ctx.t(j + 1) != "=" {
            continue;
        }
        // Find the acquisition inside this statement.
        let mut k = j + 2;
        let mut acq = None;
        let mut depth = 0i32;
        while k < n {
            match ctx.t(k) {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                ";" if depth <= 0 => break,
                _ => {
                    if let Some(found) = lock_acquisition(ctx, k) {
                        let resume = found.1 + 1; // past the balanced `()`
                        acq = Some(found);
                        k = resume;
                        continue;
                    }
                }
            }
            k += 1;
        }
        let Some((class, close)) = acq else { continue };
        let after = skip_adapters(ctx, close);
        if ctx.t(after) != ";" {
            continue; // chain continues: the guard is a temporary
        }
        let Some(live_to) = ctx.sc.enclosing_block_end(i) else {
            continue;
        };
        guards.push(Guard {
            name: name_tok,
            class,
            live_from: after,
            live_to,
            line: ctx.line(i),
        });
    }
    guards
}

/// Where a guard's liveness actually ends: the enclosing block close or
/// an explicit `drop(guard)`, whichever comes first.
fn liveness_end(ctx: &FileContext<'_>, g: &Guard) -> usize {
    for j in g.live_from..g.live_to {
        if ctx.t(j) == "drop"
            && ctx.t(j + 1) == "("
            && ctx.t(j + 2) == g.name
            && ctx.t(j + 3) == ")"
        {
            return j;
        }
    }
    g.live_to
}

/// L6 (per-file half): no lock guard live across a call into
/// `Observer::emit` / spectrum recompute.
pub fn lock_discipline(ctx: &FileContext<'_>, out: &mut Sink) {
    if !ctx.kind.checks_expressions() {
        return;
    }
    for g in find_guards(ctx) {
        if ctx.sc.in_test(g.live_from) {
            continue;
        }
        let end = liveness_end(ctx, &g);
        for j in g.live_from..end {
            let text = ctx.t(j);
            if ctx
                .ts
                .sig_token(j)
                .is_none_or(|t| t.kind != TokenKind::Ident)
                || ctx.t(j + 1) != "("
            {
                continue;
            }
            let method_call = ctx.t(j.wrapping_sub(1)) == ".";
            let steering_build = text == "build"
                && ctx.t(j.wrapping_sub(1)) == "::"
                && ctx.t(j.wrapping_sub(2)) == "SteeringTable";
            if (method_call && GUARDED_CALLEES.contains(&text)) || steering_build {
                ctx.emit(
                    out,
                    j,
                    Rule::LockDiscipline,
                    format!(
                        "lock guard `{}` (class `{}`, acquired line {}) is live across \
                         `{}(…)`; drop the guard before observer emission or spectrum \
                         recompute",
                        g.name, g.class, g.line, text
                    ),
                );
            }
        }
    }
}

/// L6 (workspace half, collection): lock-acquisition-order edges —
/// every lock taken while another guard is live, including temporaries
/// acquired inside a guard's region.
pub fn lock_order_edges(ctx: &FileContext<'_>) -> Vec<LockEdge> {
    let module = module_tag(ctx.rel);
    let mut edges = Vec::new();
    for g in find_guards(ctx) {
        if ctx.sc.in_test(g.live_from) {
            continue;
        }
        let end = liveness_end(ctx, &g);
        for j in g.live_from..end {
            if let Some((acquired, _)) = lock_acquisition(ctx, j) {
                edges.push(LockEdge {
                    module: module.clone(),
                    held: g.class.clone(),
                    acquired,
                    line: ctx.line(j),
                });
            }
        }
    }
    edges
}

/// First path segment under `src/` (`crates/core/src/obs/metrics.rs` →
/// `obs`; `crates/core/src/session.rs` → `session`).
pub fn module_tag(rel: &str) -> String {
    let tail = rel.rsplit_once("src/").map(|(_, t)| t).unwrap_or(rel);
    let seg = tail.split('/').next().unwrap_or(tail);
    seg.trim_end_matches(".rs").to_string()
}

/// The five memory-ordering variants (excludes `std::cmp::Ordering`).
const ATOMIC_VARIANTS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// L7: every `Ordering::<variant>` literal outside `obs/metrics.rs`
/// needs an `// ordering:` justification on the same or preceding line;
/// `SeqCst` is flagged outright in ingest/recompute hot paths.
pub fn atomic_ordering(ctx: &FileContext<'_>, out: &mut Sink) {
    if !ctx.kind.checks_expressions() || ctx.is_metrics_module {
        return;
    }
    let seqcst_hot = ctx.is_hot_path || module_tag(ctx.rel) == "session";
    for i in 0..ctx.ts.sig_len() {
        if ctx.t(i) != "Ordering" || ctx.t(i + 1) != "::" || ctx.sc.in_test(i) {
            continue;
        }
        let variant = ctx.t(i + 2);
        if !ATOMIC_VARIANTS.contains(&variant) {
            continue;
        }
        if variant == "SeqCst" && seqcst_hot {
            ctx.emit(
                out,
                i,
                Rule::AtomicOrdering,
                "`Ordering::SeqCst` in an ingest/recompute hot path; use the weakest \
                 ordering that is correct and justify it with `// ordering: …`"
                    .to_string(),
            );
            continue;
        }
        if !ctx.tv.has_ordering_note(ctx.line(i)) {
            ctx.emit(
                out,
                i,
                Rule::AtomicOrdering,
                format!(
                    "`Ordering::{variant}` without an `// ordering: …` justification \
                     comment on the same or preceding line"
                ),
            );
        }
    }
}

/// Crates whose public items L9 requires doc comments on.
const DOC_CRATES: [&str; 4] = [
    "crates/core/src/",
    "crates/dsp/src/",
    "crates/geom/src/",
    "crates/epc/src/",
];

/// L9: public items in the core crates must carry doc comments.
///
/// Mirrors rustc's `missing_docs` reachability: only items at an
/// *effectively public* position count — file scope, `pub mod` chains,
/// and fields of `pub` ADTs reached through them. Methods in inherent
/// impls are left to `missing_docs` itself (their type's visibility is
/// out of a token analyzer's reach).
pub fn doc_coverage(ctx: &FileContext<'_>, out: &mut Sink) {
    if ctx.kind != FileKind::Library || !DOC_CRATES.iter().any(|p| ctx.rel.starts_with(p)) {
        return;
    }
    let n = ctx.ts.sig_len();
    // Effective publicness per open scope, synchronized on braces.
    let mut stack: Vec<(ScopeKind, bool)> = Vec::new();
    for i in 0..n {
        match ctx.t(i) {
            "{" => {
                let inner = if i + 1 < n {
                    ctx.sc.kind_at(i + 1)
                } else {
                    ScopeKind::NonItem
                };
                let eff = match inner {
                    ScopeKind::Mod | ScopeKind::Adt => {
                        parent_public(&stack) && item_before_brace_is_pub(ctx, i)
                    }
                    _ => false,
                };
                stack.push((inner, eff));
            }
            "}" => {
                stack.pop();
            }
            "pub" if !ctx.sc.in_test(i) => {
                if ctx.t(i + 1) == "(" {
                    continue; // pub(crate) / pub(super)
                }
                let here = stack.last().copied();
                let reportable = match here {
                    None => true,
                    Some((ScopeKind::Mod, eff)) => eff,
                    Some((ScopeKind::Adt, eff)) => eff,
                    _ => false,
                };
                if !reportable {
                    continue;
                }
                let Some((what, name)) = public_item_after(ctx, i, here) else {
                    continue;
                };
                if !has_doc_comment(ctx, i) {
                    ctx.emit(
                        out,
                        i,
                        Rule::DocCoverage,
                        format!("public {what} `{name}` is missing a doc comment"),
                    );
                }
            }
            _ => {}
        }
    }
}

fn parent_public(stack: &[(ScopeKind, bool)]) -> bool {
    match stack.last() {
        None => true,
        Some((ScopeKind::Mod, eff)) => *eff,
        _ => false,
    }
}

/// Whether the item whose body opens at brace `i` is declared `pub`.
fn item_before_brace_is_pub(ctx: &FileContext<'_>, brace: usize) -> bool {
    let mut j = brace;
    while j > 0 {
        j -= 1;
        match ctx.t(j) {
            ";" | "{" | "}" => return false,
            "mod" | "struct" | "enum" | "union" => return ctx.t(j.wrapping_sub(1)) == "pub",
            _ => {}
        }
        if brace - j > 64 {
            return false;
        }
    }
    false
}

/// Identify the public item introduced right after `pub` at `i`:
/// returns `(what, name)`, or `None` for forms L9 does not cover
/// (`pub use` re-exports, `pub` in non-item position).
fn public_item_after(
    ctx: &FileContext<'_>,
    i: usize,
    scope: Option<(ScopeKind, bool)>,
) -> Option<(&'static str, String)> {
    if matches!(scope, Some((ScopeKind::Adt, _))) {
        // A field: `pub name: Type`.
        let name = ctx.t(i + 1);
        if ctx
            .ts
            .sig_token(i + 1)
            .is_some_and(|t| t.kind == TokenKind::Ident)
            && ctx.t(i + 2) == ":"
        {
            return Some(("field", name.to_string()));
        }
        return None;
    }
    let mut j = i + 1;
    while matches!(ctx.t(j), "async" | "const" | "unsafe" | "extern") {
        // `pub const NAME` vs `pub const fn`: look ahead.
        if ctx.t(j) == "const" && ctx.t(j + 1) != "fn" {
            return Some(("const", ctx.t(j + 1).to_string()));
        }
        j += 1;
    }
    let what = match ctx.t(j) {
        "fn" => "fn",
        "struct" => "struct",
        "enum" => "enum",
        "trait" => "trait",
        // Out-of-line `pub mod name;` is documented by the target file's
        // inner `//!` docs, which rustc's `missing_docs` resolves and a
        // per-file token pass cannot; only inline `pub mod name { … }`
        // is checked here.
        "mod" if ctx.t(j + 2) == "{" => "mod",
        "static" => "static",
        "type" => "type alias",
        "union" => "union",
        _ => return None, // pub use, out-of-line mods, macro exports, …
    };
    Some((what, ctx.t(j + 1).to_string()))
}

/// Whether the item starting at significant index `i` has a doc comment,
/// looking back in the *full* token stream over attributes and plain
/// comments.
fn has_doc_comment(ctx: &FileContext<'_>, sig_i: usize) -> bool {
    let full = ctx.ts.significant().get(sig_i).copied().unwrap_or(0);
    let toks = ctx.ts.tokens();
    let mut k = full;
    while k > 0 {
        k -= 1;
        let t = &toks[k];
        match t.kind {
            TokenKind::DocComment => return true,
            TokenKind::LineComment | TokenKind::BlockComment => continue,
            TokenKind::Punct if ctx.ts.text(t) == "]" => {
                // Skip back over an attribute `#[…]`.
                let mut depth = 0i32;
                loop {
                    let txt = ctx.ts.text(&toks[k]);
                    if txt == "]" {
                        depth += 1;
                    } else if txt == "[" {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    if k == 0 {
                        return false;
                    }
                    k -= 1;
                }
                // Expect the `#` introducing the attribute.
                if k > 0 && ctx.ts.text(&toks[k - 1]) == "#" {
                    k -= 1;
                    continue;
                }
                return false;
            }
            _ => return false,
        }
    }
    false
}

/// A metric-name inventory entry parsed from code or docs.
#[derive(Debug, Clone)]
pub struct MetricName {
    /// The metric name string.
    pub name: String,
    /// 1-based line of the declaration.
    pub line: usize,
    /// Const identifier (code side) or kind (doc side).
    pub ident: String,
}

/// Parse `pub const IDENT: &str = "name";` items out of `names.rs`.
pub fn const_metric_names(source: &str) -> Vec<MetricName> {
    let ts = TokenStream::lex(source);
    let mut out = Vec::new();
    let n = ts.sig_len();
    for i in 0..n {
        if ts.sig_text(i) != "const" {
            continue;
        }
        // pub const IDENT : & str = "…" ;
        let ident = ts.sig_text(i + 1).to_string();
        if ts.sig_text(i + 2) == ":"
            && ts.sig_text(i + 3) == "&"
            && ts.sig_text(i + 4) == "str"
            && ts.sig_text(i + 5) == "="
            && ts
                .sig_token(i + 6)
                .is_some_and(|t| t.kind == TokenKind::Str)
        {
            let tok = *ts.sig_token(i + 6).expect("checked above");
            let raw = ts.text(&tok);
            let name = raw.trim_matches('"').to_string();
            out.push(MetricName {
                name,
                line: tok.line,
                ident,
            });
        }
    }
    out
}

/// Parse the ```` ```text tagspin-metric-inventory ```` fenced block out
/// of `docs/OBSERVABILITY.md`: one `<kind> <name> <description>` line per
/// metric.
pub fn documented_metric_names(doc: &str) -> Vec<MetricName> {
    let mut out = Vec::new();
    let mut in_block = false;
    for (idx, line) in doc.lines().enumerate() {
        let trimmed = line.trim();
        if trimmed.starts_with("```") {
            if in_block {
                break;
            }
            in_block = trimmed.trim_start_matches('`').trim() == "text tagspin-metric-inventory";
            continue;
        }
        if !in_block || trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let (Some(kind), Some(name)) = (parts.next(), parts.next()) else {
            continue;
        };
        if matches!(kind, "counter" | "gauge" | "histogram") {
            out.push(MetricName {
                name: name.to_string(),
                line: idx + 1,
                ident: kind.to_string(),
            });
        }
    }
    out
}

/// L8 (workspace): cross-check the metric-name inventory.
///
/// * every const in `obs/names.rs` must appear in the doc inventory,
/// * every documented name must have a const,
/// * every const must be *referenced* outside its own declaration (in
///   `metrics.rs` or elsewhere in `names.rs`) — a name that is declared
///   and documented but never emitted is telemetry drift too,
/// * `metrics.rs` must not pass raw string literals to registry
///   registration calls.
///
/// Returns `(file, line, message)` tuples; the caller wraps them.
pub fn metric_name_hygiene(
    names_src: &str,
    metrics_src: &str,
    doc_src: &str,
) -> Vec<(&'static str, usize, String)> {
    let consts = const_metric_names(names_src);
    let documented = documented_metric_names(doc_src);
    let mut out = Vec::new();

    for c in &consts {
        if !documented.iter().any(|d| d.name == c.name) {
            out.push((
                "names",
                c.line,
                format!(
                    "metric `{}` ({}) is emitted but missing from the inventory in \
                     docs/OBSERVABILITY.md",
                    c.name, c.ident
                ),
            ));
        }
    }
    for d in &documented {
        if !consts.iter().any(|c| c.name == d.name) {
            out.push((
                "doc",
                d.line,
                format!(
                    "documented {} `{}` has no matching const in obs/names.rs — stale \
                     inventory or silent rename",
                    d.ident, d.name
                ),
            ));
        }
    }

    // Reference check: each const ident must be used at a line other
    // than its declaration, in metrics.rs or names.rs.
    let metrics_ts = TokenStream::lex(metrics_src);
    let names_ts = TokenStream::lex(names_src);
    for c in &consts {
        let used_in_metrics = (0..metrics_ts.sig_len()).any(|i| {
            metrics_ts.sig_text(i) == c.ident
                && metrics_ts
                    .sig_token(i)
                    .is_some_and(|t| t.kind == TokenKind::Ident)
        });
        let used_in_names = (0..names_ts.sig_len()).any(|i| {
            names_ts.sig_text(i) == c.ident
                && names_ts
                    .sig_token(i)
                    .is_some_and(|t| t.line != c.line && t.kind == TokenKind::Ident)
        });
        if !used_in_metrics && !used_in_names {
            out.push((
                "names",
                c.line,
                format!(
                    "metric const `{}` (`{}`) is declared but never referenced by the \
                     metrics observer",
                    c.ident, c.name
                ),
            ));
        }
    }

    // No raw name literals at registration sites in metrics.rs.
    const REGISTRY_CALLS: [&str; 6] = [
        "register_counter",
        "register_gauge",
        "register_histogram",
        "counter",
        "gauge",
        "histogram",
    ];
    let sc = Scopes::analyze(&metrics_ts);
    for i in 0..metrics_ts.sig_len() {
        if sc.in_test(i) {
            continue;
        }
        if REGISTRY_CALLS.contains(&metrics_ts.sig_text(i))
            && metrics_ts.sig_text(i + 1) == "("
            && metrics_ts
                .sig_token(i + 2)
                .is_some_and(|t| t.kind == TokenKind::Str)
        {
            let tok = *metrics_ts.sig_token(i + 2).expect("checked above");
            out.push((
                "metrics",
                tok.line,
                format!(
                    "raw metric-name literal {} at a registry call; use a const from \
                     obs/names.rs so the inventory cross-check can see it",
                    metrics_ts.text(&tok)
                ),
            ));
        }
    }
    out
}

/// Detect directed cycles in the workspace lock-order graph. Returns one
/// finding per edge that participates in a cycle.
pub fn lock_order_cycles(edges: &[LockEdge]) -> Vec<(String, usize, String)> {
    // Adjacency over lock classes.
    let mut nodes: Vec<&str> = Vec::new();
    for e in edges {
        for c in [e.held.as_str(), e.acquired.as_str()] {
            if !nodes.contains(&c) {
                nodes.push(c);
            }
        }
    }
    let reachable = |from: &str, to: &str| -> bool {
        let mut seen: Vec<&str> = vec![from];
        let mut queue = vec![from];
        while let Some(cur) = queue.pop() {
            for e in edges {
                if e.held == cur && !seen.contains(&e.acquired.as_str()) {
                    if e.acquired == to {
                        return true;
                    }
                    seen.push(e.acquired.as_str());
                    queue.push(e.acquired.as_str());
                }
            }
        }
        false
    };
    let mut out = Vec::new();
    for e in edges {
        // The edge held→acquired closes a cycle iff `acquired` can reach
        // `held` through the rest of the graph.
        if e.acquired == e.held || reachable(&e.acquired, &e.held) {
            out.push((
                e.module.clone(),
                e.line,
                format!(
                    "lock-order cycle: `{}` acquired while `{}` is held, but the \
                     reverse order also exists in the workspace — consistent ordering \
                     required across session/quarantine/obs",
                    e.acquired, e.held
                ),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(
        rel: &str,
        kind: FileKind,
        src: &str,
        rule: fn(&FileContext<'_>, &mut Sink),
    ) -> Vec<(usize, Rule, String)> {
        let ts = TokenStream::lex(src);
        let sc = Scopes::analyze(&ts);
        let tv = Trivia::collect(&ts);
        let ctx = FileContext {
            rel,
            kind,
            ts: &ts,
            sc: &sc,
            tv: &tv,
            is_hot_path: rel.contains("spectrum") || rel.contains("fourier"),
            is_angle_module: rel.ends_with("geom/src/angle.rs"),
            is_metrics_module: rel.ends_with("obs/metrics.rs"),
        };
        let mut out = Vec::new();
        rule(&ctx, &mut out);
        out
    }

    #[test]
    fn l1_flags_unwrap_but_not_tests_strings_or_lookalikes() {
        let src = "\
fn f(x: Option<u8>) -> u8 { x.unwrap() }
// a comment about .unwrap()
fn g(x: Option<u8>) -> u8 { x.unwrap_or(0) }
fn h() { debug_panic!(\"not the macro you seek\"); }
fn i() -> &'static str { \"panic!(never) .unwrap()\" }

#[cfg(test)]
mod tests {
    fn t(x: Option<u8>) { x.unwrap(); }
}
";
        let out = run("crates/core/src/a.rs", FileKind::Library, src, no_panic);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].0, 1);
    }

    #[test]
    fn l1_applies_to_binaries_under_v2() {
        let src = "fn main() { run().expect(\"boom\"); }\n";
        let out = run("src/bin/tagspin.rs", FileKind::Binary, src, no_panic);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].2.contains("binary"));
        let out = run("examples/demo.rs", FileKind::Example, src, no_panic);
        assert!(out.is_empty(), "examples stay exempt: {out:?}");
    }

    #[test]
    fn l1_allow_marker_in_string_is_inert() {
        let src = "\
fn s() -> &'static str { \"lint:allow-file(no-panic)\" }
fn f(x: Option<u8>) -> u8 { x.unwrap() }
";
        let out = run("crates/core/src/a.rs", FileKind::Library, src, no_panic);
        assert_eq!(out.len(), 1, "string marker must not suppress: {out:?}");
    }

    #[test]
    fn l2_flags_raw_wraps_everywhere_but_angle_rs() {
        let src = "\
fn f(x: f64) -> f64 { x.rem_euclid(TAU) }
fn g(x: f64) -> f64 { x % std::f64::consts::TAU }
fn h(mut x: f64) -> f64 { while x > PI { x -= TAU; } x }
fn i(x: f64) -> f64 { x.rem_euclid(2.0 * PI) }
";
        let out = run("crates/rf/src/a.rs", FileKind::Library, src, angle_hygiene);
        let mut lines: Vec<usize> = out.iter().map(|f| f.0).collect();
        lines.sort_unstable();
        assert_eq!(lines, vec![1, 2, 3, 4], "{out:?}");
        let out = run(
            "crates/geom/src/angle.rs",
            FileKind::Library,
            src,
            angle_hygiene,
        );
        assert!(out.is_empty(), "angle.rs is exempt");
    }

    #[test]
    fn l2_exact_tokens_no_substring_false_positives() {
        let src = "\
fn f(x: f64) -> f64 { x % TAU_HALF }
fn g(x: f64) -> f64 { x.rem_euclid(TAU_QUARTER) }
fn h(x: f64) -> f64 { x % period }
";
        let out = run("crates/rf/src/a.rs", FileKind::Library, src, angle_hygiene);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn l3_flags_float_literal_comparisons_only() {
        let src = "\
fn f(x: f64) -> bool { x == 0.0 }
fn g(x: f64, y: f64) -> bool { x != y }
fn h(n: usize) -> bool { n == 0 }
fn i(x: f64) -> bool { x == f64::INFINITY }
fn j(x: f64) -> bool { x == -1.5 }
";
        let out = run("crates/core/src/a.rs", FileKind::Library, src, float_eq);
        let lines: Vec<usize> = out.iter().map(|f| f.0).collect();
        assert_eq!(lines, vec![1, 4, 5], "{out:?}");
    }

    #[test]
    fn l4_flags_stringly_results_including_multiline() {
        let src = "\
pub fn bad(&self) -> Result<(), String> { Ok(()) }
pub fn good(&self) -> Result<(), FooError> { Ok(()) }
pub fn also_bad(
    a: usize,
) -> Result<Fix, String> {
    todo()
}
pub fn vec_string_ok() -> Result<Vec<String>, FooError> { todo() }
pub fn nested_ok() -> Result<Result<u8, String>, FooError> { todo() }
";
        let out = run(
            "crates/core/src/a.rs",
            FileKind::Library,
            src,
            stringly_error,
        );
        let lines: Vec<usize> = out.iter().map(|f| f.0).collect();
        // `nested_ok` still carries a Result<_, String> inside — flagged.
        assert_eq!(lines, vec![1, 3, 9], "{out:?}");
    }

    #[test]
    fn l5_requires_annotation_in_hot_paths_only() {
        let src = "\
fn f(n: usize) -> f64 { n as f64 }
fn g(n: usize) -> f64 { n as f64 } // lint:allow(lossy-cast) grid index < 2^53
";
        let out = run(
            "crates/core/src/spectrum.rs",
            FileKind::Library,
            src,
            lossy_cast,
        );
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].0, 1);
        let out = run(
            "crates/core/src/other.rs",
            FileKind::Library,
            src,
            lossy_cast,
        );
        assert!(out.is_empty(), "non-hot-path file is exempt");
    }

    #[test]
    fn l6_flags_guard_live_across_emit_and_recompute() {
        let src = "\
fn bad(&self) {
    let mut cache = self.cache.lock().unwrap_or_else(PoisonError::into_inner);
    self.obs.emit(|| Event::CacheLookup { hit: true });
    cache.push(1);
}
fn also_bad(&self) {
    let g = self.cache.lock().unwrap();
    let t = SteeringTable::build(10, 20);
    g.insert(t);
}
fn fine(&self) {
    let n = self.cache.lock().unwrap().len();
    self.obs.emit(|| Event::CacheLookup { hit: n > 0 });
}
fn dropped(&self) {
    let g = self.cache.lock().unwrap();
    let n = g.len();
    drop(g);
    self.obs.emit(|| Event::CacheLookup { hit: n > 0 });
}
";
        let out = run(
            "crates/core/src/spectrum/engine.rs",
            FileKind::Library,
            src,
            lock_discipline,
        );
        let lines: Vec<usize> = out.iter().map(|f| f.0).collect();
        assert_eq!(lines, vec![3, 8], "{out:?}");
    }

    #[test]
    fn l6_lock_order_edges_and_cycles() {
        let src_a = "\
fn ab(&self) {
    let a = self.alpha.lock().unwrap();
    let b = self.beta.lock().unwrap();
    a.merge(b);
}
";
        let src_b = "\
fn ba(&self) {
    let b = self.beta.lock().unwrap();
    let a = self.alpha.lock().unwrap();
    b.merge(a);
}
";
        let edges = |rel: &str, src: &str| {
            let ts = TokenStream::lex(src);
            let sc = Scopes::analyze(&ts);
            let tv = Trivia::collect(&ts);
            let ctx = FileContext {
                rel,
                kind: FileKind::Library,
                ts: &ts,
                sc: &sc,
                tv: &tv,
                is_hot_path: false,
                is_angle_module: false,
                is_metrics_module: false,
            };
            lock_order_edges(&ctx)
        };
        let forward = edges("crates/core/src/session.rs", src_a);
        assert_eq!(forward.len(), 1, "{forward:?}");
        assert_eq!(forward[0].held, "alpha");
        assert_eq!(forward[0].acquired, "beta");
        assert!(
            lock_order_cycles(&forward).is_empty(),
            "one direction is fine"
        );

        let mut all = forward;
        all.extend(edges("crates/core/src/quarantine.rs", src_b));
        let cycles = lock_order_cycles(&all);
        assert_eq!(cycles.len(), 2, "both edges participate: {cycles:?}");
    }

    #[test]
    fn l7_requires_ordering_notes_outside_metrics() {
        let src = "\
fn f(c: &AtomicU64) {
    c.fetch_add(1, Ordering::Relaxed);
    // ordering: independent counter, no happens-before needed
    c.fetch_add(1, Ordering::Relaxed);
    c.store(0, std::sync::atomic::Ordering::Release); // ordering: publishes init
}
fn g(o: std::cmp::Ordering) -> bool { o == std::cmp::Ordering::Less }
";
        let out = run(
            "crates/core/src/session.rs",
            FileKind::Library,
            src,
            atomic_ordering,
        );
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].0, 2);
        let out = run(
            "crates/core/src/obs/metrics.rs",
            FileKind::Library,
            src,
            atomic_ordering,
        );
        assert!(out.is_empty(), "metrics.rs is exempt");
    }

    #[test]
    fn l7_flags_seqcst_in_hot_paths_even_with_note() {
        let src = "\
fn f(c: &AtomicU64) {
    // ordering: just to be safe
    c.fetch_add(1, Ordering::SeqCst);
}
";
        let out = run(
            "crates/core/src/spectrum.rs",
            FileKind::Library,
            src,
            atomic_ordering,
        );
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].2.contains("SeqCst"));
        let out = run(
            "crates/rf/src/noise.rs",
            FileKind::Library,
            src,
            atomic_ordering,
        );
        assert!(out.is_empty(), "outside hot paths a note suffices: {out:?}");
    }

    #[test]
    fn l9_reports_undocumented_public_items_at_public_positions() {
        let src = "\
/// Documented.
pub fn documented() {}
pub fn naked() {}
pub struct S {
    /// Documented field.
    pub a: u8,
    pub b: u8,
}
mod private {
    pub fn internal() {}
}
pub mod public {
    pub fn inner_naked() {}
}
pub mod out_of_line;
pub use other::Thing;
";
        let out = run("crates/core/src/a.rs", FileKind::Library, src, doc_coverage);
        let lines: Vec<usize> = out.iter().map(|f| f.0).collect();
        assert_eq!(lines, vec![3, 4, 7, 12, 13], "{out:?}");
        // Other crates are out of scope.
        let out = run("crates/rf/src/a.rs", FileKind::Library, src, doc_coverage);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn l9_attributes_between_doc_and_item_are_fine() {
        let src = "\
/// Documented.
#[derive(Debug)]
pub struct S;
";
        let out = run("crates/core/src/a.rs", FileKind::Library, src, doc_coverage);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn l8_cross_checks_both_directions_and_usage() {
        let names = "\
/// Cache hits.
pub const CACHE_HIT: &str = \"engine.cache.hit\";
/// Never referenced anywhere.
pub const ORPHAN: &str = \"engine.orphan\";
/// Not documented.
pub const UNDOCUMENTED: &str = \"engine.mystery\";
";
        let metrics = "\
fn wire(reg: &MetricsRegistry) {
    reg.register_counter(CACHE_HIT);
    reg.register_counter(UNDOCUMENTED);
    reg.register_counter(\"raw.literal\");
}
";
        let doc = "\
# Observability
```text tagspin-metric-inventory
counter engine.cache.hit steering-table lookups
counter engine.orphan documented but never emitted
counter engine.ghost documented but no const
```
";
        let out = metric_name_hygiene(names, metrics, doc);
        let mut kinds: Vec<&str> = out.iter().map(|(k, _, _)| *k).collect();
        kinds.sort_unstable();
        assert_eq!(kinds, vec!["doc", "metrics", "names", "names"], "{out:?}");
        assert!(out.iter().any(|(_, _, m)| m.contains("engine.mystery")));
        assert!(out.iter().any(|(_, _, m)| m.contains("engine.ghost")));
        assert!(out.iter().any(|(_, _, m)| m.contains("ORPHAN")));
        assert!(out.iter().any(|(_, _, m)| m.contains("raw.literal")));
    }

    #[test]
    fn module_tags() {
        assert_eq!(module_tag("crates/core/src/session.rs"), "session");
        assert_eq!(module_tag("crates/core/src/obs/metrics.rs"), "obs");
        assert_eq!(module_tag("crates/core/src/obs.rs"), "obs");
        assert_eq!(module_tag("src/bin/tagspin.rs"), "bin");
    }
}
