//! The five lint rules.
//!
//! Each rule walks the stripped lines of one file (comments/strings
//! blanked, positions preserved) and appends `(line, rule, message)`
//! tuples. Test regions and the escape hatches are handled uniformly
//! here: a finding is suppressed by `// lint:allow(<rule>)` on the same
//! or the preceding line, or `// lint:allow-file(<rule>)` anywhere in
//! the file.

use crate::{FileKind, Rule};

/// Everything a rule needs to know about one file.
pub struct FileContext<'a> {
    /// Workspace-relative path with `/` separators.
    pub rel: &'a str,
    /// How the file participates in the rule set.
    pub kind: FileKind,
    /// Original lines (used for allow-comment detection only).
    pub original_lines: &'a [&'a str],
    /// Stripped lines (what the rules actually match on).
    pub stripped_lines: &'a [&'a str],
    /// Per-line flag: inside a `#[cfg(test)]` region.
    pub test_lines: &'a [bool],
    /// Whether L5 applies to this file.
    pub is_hot_path: bool,
    /// Whether this file is `crates/geom/src/angle.rs` (exempt from L2).
    pub is_angle_module: bool,
}

impl FileContext<'_> {
    fn in_test(&self, idx: usize) -> bool {
        self.test_lines.get(idx).copied().unwrap_or(false)
    }

    /// Check the escape hatches for `rule` at line index `idx`.
    fn allowed(&self, idx: usize, rule: Rule) -> bool {
        let line_marker = format!("lint:allow({})", rule.name());
        let file_marker = format!("lint:allow-file({})", rule.name());
        let here = self.original_lines.get(idx).copied().unwrap_or("");
        let above = if idx > 0 {
            self.original_lines.get(idx - 1).copied().unwrap_or("")
        } else {
            ""
        };
        here.contains(&line_marker)
            || above.contains(&line_marker)
            || self.original_lines.iter().any(|l| l.contains(&file_marker))
    }
}

type Sink = Vec<(usize, Rule, String)>;

fn emit(ctx: &FileContext<'_>, out: &mut Sink, idx: usize, rule: Rule, message: String) {
    if !ctx.allowed(idx, rule) {
        out.push((idx + 1, rule, message));
    }
}

/// Normalize fully-qualified float-constant paths so the angle patterns
/// can match `TAU`/`PI` uniformly.
fn normalize(line: &str) -> String {
    line.replace("std::f64::consts::", "")
        .replace("core::f64::consts::", "")
        .replace("f64::consts::", "")
}

/// L1: no `.unwrap()` / `.expect(` / `panic!(` in non-test library code.
pub fn no_panic(ctx: &FileContext<'_>, out: &mut Sink) {
    if !ctx.kind.checks_panics() {
        return;
    }
    const PATTERNS: [(&str, &str); 3] = [
        (".unwrap()", "`.unwrap()` can panic"),
        (".expect(", "`.expect(...)` can panic"),
        ("panic!(", "explicit `panic!`"),
    ];
    for (idx, line) in ctx.stripped_lines.iter().enumerate() {
        if ctx.in_test(idx) {
            continue;
        }
        for (pat, what) in PATTERNS {
            if line.contains(pat) {
                emit(
                    ctx,
                    out,
                    idx,
                    Rule::NoPanic,
                    format!("{what} in library code; return a typed error instead"),
                );
            }
        }
    }
}

/// L2: raw phase-wrap arithmetic outside `tagspin_geom::angle`.
pub fn angle_hygiene(ctx: &FileContext<'_>, out: &mut Sink) {
    if !ctx.kind.checks_expressions() || ctx.is_angle_module {
        return;
    }
    for (idx, line) in ctx.stripped_lines.iter().enumerate() {
        if ctx.in_test(idx) {
            continue;
        }
        let norm = normalize(line);
        let modulo = [
            "rem_euclid(TAU",
            "rem_euclid(2.0 * PI",
            "% TAU",
            "% (TAU",
            "% (2.0 * PI",
        ]
        .iter()
        .any(|p| norm.contains(p));
        if modulo {
            emit(
                ctx,
                out,
                idx,
                Rule::AngleHygiene,
                "raw 2\u{3c0} wrap; use tagspin_geom::angle::{wrap_tau, wrap_pi, diff} instead"
                    .to_string(),
            );
            continue;
        }
        // Manual ±π wrap: a PI comparison and a TAU adjustment on one line
        // (`if x > PI { x - TAU }`, `while d <= -PI { d += TAU }`, ...).
        let compares_pi = ["> PI", ">= PI", "< -PI", "<= -PI"]
            .iter()
            .any(|p| norm.contains(p));
        let adjusts_tau = ["- TAU", "+ TAU", "-= TAU", "+= TAU"]
            .iter()
            .any(|p| norm.contains(p));
        if compares_pi && adjusts_tau {
            emit(
                ctx,
                out,
                idx,
                Rule::AngleHygiene,
                "manual \u{b1}\u{3c0} wrap arithmetic; use tagspin_geom::angle::wrap_pi instead"
                    .to_string(),
            );
        }
    }
}

/// Last word-ish token (identifier/number/path chars) before byte `end`.
fn token_before(line: &str, end: usize) -> &str {
    let bytes = line.as_bytes();
    let mut start = end;
    while start > 0 {
        let c = bytes[start - 1];
        if c.is_ascii_alphanumeric() || c == b'_' || c == b'.' || c == b':' {
            start -= 1;
        } else {
            break;
        }
    }
    line[start..end].trim_matches(':')
}

/// First word-ish token at/after byte `start`.
fn token_after(line: &str, start: usize) -> &str {
    let rest = line[start..].trim_start_matches([' ', '(', '-']);
    let end = rest
        .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_' || c == '.' || c == ':'))
        .unwrap_or(rest.len());
    rest[..end].trim_matches(':')
}

/// Whether a token is recognizably a floating-point value.
fn is_floatish(tok: &str) -> bool {
    if tok.is_empty() {
        return false;
    }
    if tok.starts_with("f64::") || tok.starts_with("f32::") {
        return true;
    }
    let body = tok
        .strip_suffix("f64")
        .or_else(|| tok.strip_suffix("f32"))
        .map(|b| (b, true))
        .unwrap_or((tok, false));
    let (text, had_suffix) = body;
    let text = text.trim_end_matches('_');
    if text.is_empty() {
        return false;
    }
    // Numeric literal: flag when it has a decimal point or an explicit
    // float suffix (`1.0`, `0.5`, `1f64`). Plain `1` stays integer.
    if text
        .chars()
        .all(|c| c.is_ascii_digit() || c == '.' || c == '_')
    {
        return text.contains('.') || had_suffix;
    }
    false
}

/// L3: `==` / `!=` against floating-point values outside tests.
///
/// Line-lite: only comparisons with a recognizable float operand (a
/// float literal or an `f64::`/`f32::` constant) are flagged; variable ==
/// variable comparisons need type knowledge this analyzer does not have.
pub fn float_eq(ctx: &FileContext<'_>, out: &mut Sink) {
    if !ctx.kind.checks_expressions() {
        return;
    }
    for (idx, line) in ctx.stripped_lines.iter().enumerate() {
        if ctx.in_test(idx) {
            continue;
        }
        for (pos, op) in find_eq_ops(line) {
            let lhs = token_before(line, pos);
            let rhs = token_after(line, pos + 2);
            if is_floatish(lhs) || is_floatish(rhs) {
                emit(
                    ctx,
                    out,
                    idx,
                    Rule::FloatEq,
                    format!(
                        "floating-point `{op}` comparison (`{lhs} {op} {rhs}`); \
                         use an epsilon/ULP helper from tagspin_dsp::float"
                    ),
                );
            }
        }
    }
}

/// Byte positions of `==` / `!=` operators in a line (excluding `<=`,
/// `>=`, `=>`, `..=` and friends).
fn find_eq_ops(line: &str) -> Vec<(usize, &'static str)> {
    let bytes = line.as_bytes();
    let mut found = Vec::new();
    let mut i = 0;
    while i + 1 < bytes.len() {
        let pair = &bytes[i..i + 2];
        if pair == b"==" {
            // Skip `===`-like runs (not Rust) and `<=`/`>=`/`..=` forms
            // already excluded by the exact two-byte match; make sure the
            // previous byte is not `<`, `>`, `!`, `=`, `+`, `-`, `*`, `/`.
            let prev = i.checked_sub(1).map(|p| bytes[p]);
            if !matches!(
                prev,
                Some(b'<')
                    | Some(b'>')
                    | Some(b'!')
                    | Some(b'=')
                    | Some(b'+')
                    | Some(b'-')
                    | Some(b'*')
                    | Some(b'/')
            ) {
                found.push((i, "=="));
            }
            i += 2;
        } else if pair == b"!=" {
            found.push((i, "!="));
            i += 2;
        } else {
            i += 1;
        }
    }
    found
}

/// L4: `Result<_, String>` in a `pub fn` signature.
pub fn stringly_error(ctx: &FileContext<'_>, out: &mut Sink) {
    if !ctx.kind.checks_signatures() {
        return;
    }
    for (idx, line) in ctx.stripped_lines.iter().enumerate() {
        if ctx.in_test(idx) {
            continue;
        }
        let t = line.trim_start();
        if !(t.starts_with("pub fn ") || t.starts_with("pub async fn ")) {
            continue;
        }
        // Join the signature until its body opens (or 12 lines pass).
        let mut sig = String::new();
        for l in ctx.stripped_lines.iter().skip(idx).take(12) {
            let upto = l.find('{').map(|p| &l[..p]).unwrap_or(l);
            sig.push_str(upto);
            sig.push(' ');
            if l.contains('{') || l.contains(';') {
                break;
            }
        }
        if sig.contains("Result<") && (sig.contains(", String>") || sig.contains(",String>")) {
            emit(
                ctx,
                out,
                idx,
                Rule::StringlyError,
                "public API returns `Result<_, String>`; define a typed error enum \
                 implementing std::error::Error"
                    .to_string(),
            );
        }
    }
}

const NUMERIC_TYPES: [&str; 13] = [
    "usize", "u8", "u16", "u32", "u64", "u128", "isize", "i8", "i16", "i32", "i64", "f32", "f64",
];

/// L5: numeric `as` casts in hot-path files must carry an annotation.
pub fn lossy_cast(ctx: &FileContext<'_>, out: &mut Sink) {
    if !ctx.is_hot_path {
        return;
    }
    for (idx, line) in ctx.stripped_lines.iter().enumerate() {
        if ctx.in_test(idx) {
            continue;
        }
        let mut rest: &str = line;
        let mut offset = 0;
        while let Some(p) = rest.find(" as ") {
            let after = &rest[p + 4..];
            let ty = token_after(after, 0);
            if NUMERIC_TYPES.contains(&ty) {
                emit(
                    ctx,
                    out,
                    idx,
                    Rule::LossyCast,
                    format!(
                        "unannotated numeric cast `as {ty}` in a hot path; justify with \
                         `// lint:allow(lossy-cast) <why it cannot lose value>`"
                    ),
                );
                break; // one finding per line is enough
            }
            offset += p + 4;
            let _ = offset;
            rest = after;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strip;

    fn run_rule(
        rel: &str,
        kind: FileKind,
        src: &str,
        rule: fn(&FileContext<'_>, &mut Sink),
    ) -> Vec<(usize, Rule, String)> {
        let stripped = strip::strip_source(src);
        let test_lines = strip::test_region_lines(&stripped);
        let original_lines: Vec<&str> = src.lines().collect();
        let stripped_lines: Vec<&str> = stripped.lines().collect();
        let ctx = FileContext {
            rel,
            kind,
            original_lines: &original_lines,
            stripped_lines: &stripped_lines,
            test_lines: &test_lines,
            is_hot_path: rel.contains("spectrum") || rel.contains("fourier"),
            is_angle_module: rel.ends_with("geom/src/angle.rs"),
        };
        let mut out = Vec::new();
        rule(&ctx, &mut out);
        out
    }

    #[test]
    fn l1_flags_unwrap_but_not_tests_or_comments() {
        let src = "\
fn f(x: Option<u8>) -> u8 { x.unwrap() }
// a comment about .unwrap()
fn g(x: Option<u8>) -> u8 { x.unwrap_or(0) }

#[cfg(test)]
mod tests {
    fn t(x: Option<u8>) { x.unwrap(); }
}
";
        let out = run_rule("crates/core/src/a.rs", FileKind::Library, src, no_panic);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].0, 1);
    }

    #[test]
    fn l1_respects_allow() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() } // lint:allow(no-panic) startup only\n";
        let out = run_rule("crates/core/src/a.rs", FileKind::Library, src, no_panic);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn l2_flags_raw_wraps_everywhere_but_angle_rs() {
        let src = "\
fn f(x: f64) -> f64 { x.rem_euclid(TAU) }
fn g(x: f64) -> f64 { x % std::f64::consts::TAU }
fn h(mut x: f64) -> f64 { while x > PI { x -= TAU; } x }
";
        let out = run_rule("crates/rf/src/a.rs", FileKind::Library, src, angle_hygiene);
        assert_eq!(out.len(), 3, "{out:?}");
        let out = run_rule(
            "crates/geom/src/angle.rs",
            FileKind::Library,
            src,
            angle_hygiene,
        );
        assert!(out.is_empty(), "angle.rs is exempt");
    }

    #[test]
    fn l3_flags_float_literal_comparisons_only() {
        let src = "\
fn f(x: f64) -> bool { x == 0.0 }
fn g(x: f64, y: f64) -> bool { x != y }
fn h(n: usize) -> bool { n == 0 }
fn i(x: f64) -> bool { x == f64::INFINITY }
";
        let out = run_rule("crates/core/src/a.rs", FileKind::Library, src, float_eq);
        let lines: Vec<usize> = out.iter().map(|f| f.0).collect();
        assert_eq!(lines, vec![1, 4], "{out:?}");
    }

    #[test]
    fn l4_flags_stringly_results_including_multiline() {
        let src = "\
pub fn bad(&self) -> Result<(), String> { Ok(()) }
pub fn good(&self) -> Result<(), FooError> { Ok(()) }
pub fn also_bad(
    a: usize,
) -> Result<Fix, String> {
    todo()
}
pub fn vec_string_ok() -> Result<Vec<String>, FooError> { todo() }
";
        let out = run_rule(
            "crates/core/src/a.rs",
            FileKind::Library,
            src,
            stringly_error,
        );
        let lines: Vec<usize> = out.iter().map(|f| f.0).collect();
        assert_eq!(lines, vec![1, 3], "{out:?}");
    }

    #[test]
    fn l5_requires_annotation_in_hot_paths_only() {
        let src = "\
fn f(n: usize) -> f64 { n as f64 }
fn g(n: usize) -> f64 { n as f64 } // lint:allow(lossy-cast) grid index < 2^53
";
        let out = run_rule(
            "crates/core/src/spectrum.rs",
            FileKind::Library,
            src,
            lossy_cast,
        );
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].0, 1);
        let out = run_rule(
            "crates/core/src/other.rs",
            FileKind::Library,
            src,
            lossy_cast,
        );
        assert!(out.is_empty(), "non-hot-path file is exempt");
    }

    #[test]
    fn file_level_allow() {
        let src = "\
// lint:allow-file(no-panic) prototype module
fn f(x: Option<u8>) -> u8 { x.unwrap() }
";
        let out = run_rule("crates/core/src/a.rs", FileKind::Library, src, no_panic);
        assert!(out.is_empty());
    }
}
