//! Property-based tests for the length-prefixed serve framing: round
//! trips over arbitrary report batches and arbitrary delivery chunking,
//! plus adversarial inputs — truncation, garbage, oversized prefixes —
//! which must always surface as typed protocol errors, never a panic and
//! never a silently desynchronized stream.

use proptest::prelude::*;
use tagspin_epc::frame::{
    encode_frame, encode_report_frame, FrameDecoder, FrameError, ProtocolError,
    DEFAULT_MAX_FRAME_LEN,
};
use tagspin_epc::{InventoryLog, TagReport};

fn arb_report() -> impl Strategy<Value = TagReport> {
    (
        0u128..(1u128 << 96),
        0u64..10_000_000,
        0.0f64..std::f64::consts::TAU,
        -90.0f64..-30.0,
        0u8..16,
        1u8..9,
    )
        .prop_map(
            |(epc, timestamp_us, phase, rssi_dbm, channel_index, antenna_id)| TagReport {
                epc,
                timestamp_us,
                phase,
                rssi_dbm,
                channel_index,
                antenna_id,
            },
        )
}

fn arb_log() -> impl Strategy<Value = InventoryLog> {
    proptest::collection::vec(arb_report(), 0..32).prop_map(|mut reports| {
        reports.sort_by_key(|r| r.timestamp_us);
        reports.into_iter().collect()
    })
}

/// Deterministically split `wire` into chunks whose sizes cycle through
/// `cuts` — models arbitrary TCP segmentation without randomness inside
/// the decoder loop.
fn deliver(dec: &mut FrameDecoder, wire: &[u8], cuts: &[usize]) -> Vec<(InventoryLog, u32)> {
    let mut out = Vec::new();
    let mut pos = 0;
    let mut i = 0;
    while pos < wire.len() {
        let step = cuts[i % cuts.len()].max(1).min(wire.len() - pos);
        i += 1;
        dec.push(&wire[pos..pos + step]);
        pos += step;
        while let Ok(Some(report)) = dec.try_report() {
            out.push(report);
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any batch sequence survives any segmentation: every frame comes
    /// back, in order, with its message id, and the stream drains clean.
    #[test]
    fn framed_roundtrip_any_chunking(
        logs in proptest::collection::vec(arb_log(), 1..6),
        cuts in proptest::collection::vec(1usize..128, 1..8),
    ) {
        let mut wire = Vec::new();
        for (id, log) in logs.iter().enumerate() {
            wire.extend_from_slice(
                &encode_report_frame(log, id as u32, DEFAULT_MAX_FRAME_LEN).unwrap(),
            );
        }
        let mut dec = FrameDecoder::new();
        let got = deliver(&mut dec, &wire, &cuts);
        prop_assert_eq!(got.len(), logs.len());
        for (id, ((log, rid), sent)) in got.iter().zip(&logs).enumerate() {
            prop_assert_eq!(*rid, id as u32);
            prop_assert_eq!(log.len(), sent.len());
        }
        prop_assert!(dec.finish().is_ok());
        prop_assert_eq!(dec.pending(), 0);
    }

    /// Cutting the wire anywhere mid-stream never panics: the decoder
    /// yields exactly the frames that were fully delivered, and `finish`
    /// reports truncation iff bytes were left over.
    #[test]
    fn truncation_is_typed_never_panic(
        logs in proptest::collection::vec(arb_log(), 1..4),
        cut_frac in 0.0f64..1.0,
    ) {
        let mut wire = Vec::new();
        for (id, log) in logs.iter().enumerate() {
            wire.extend_from_slice(
                &encode_report_frame(log, id as u32, DEFAULT_MAX_FRAME_LEN).unwrap(),
            );
        }
        let keep = ((wire.len() as f64) * cut_frac) as usize;
        let mut dec = FrameDecoder::new();
        let got = deliver(&mut dec, &wire[..keep], &[7]);
        // Every frame returned is one that was fully inside the kept
        // prefix, in order from the front.
        prop_assert!(got.len() <= logs.len());
        for ((_, rid), id) in got.iter().zip(0u32..) {
            prop_assert_eq!(*rid, id);
        }
        match dec.finish() {
            Ok(()) => prop_assert_eq!(dec.pending(), 0),
            Err(FrameError::Truncated { buffered }) => {
                prop_assert!(buffered > 0);
                prop_assert_eq!(buffered, dec.pending());
            }
            Err(e) => prop_assert!(false, "unexpected finish error {e}"),
        }
    }

    /// Garbage payloads inside well-formed frames cost exactly their own
    /// frame: the decoder reports a typed LLRP error and the next good
    /// frame still decodes — no desync.
    #[test]
    fn garbage_payload_does_not_desync(
        junk in proptest::collection::vec(proptest::num::u8::ANY, 0..64),
        log in arb_log(),
    ) {
        let mut wire = encode_frame(&junk, DEFAULT_MAX_FRAME_LEN).unwrap();
        wire.extend_from_slice(&encode_report_frame(&log, 77, DEFAULT_MAX_FRAME_LEN).unwrap());
        let mut dec = FrameDecoder::new();
        dec.push(&wire);
        match dec.try_report() {
            // A random payload that happens to be a valid (e.g. empty)
            // message is fine; otherwise the error must be typed Llrp.
            Ok(Some(_)) => {}
            Err(ProtocolError::Llrp(_)) => {}
            other => prop_assert!(false, "expected Llrp error or decode, got {other:?}"),
        }
        let (decoded, rid) = dec.try_report().unwrap().expect("good frame after junk");
        prop_assert_eq!(rid, 77);
        prop_assert_eq!(decoded.len(), log.len());
        prop_assert!(dec.finish().is_ok());
    }

    /// An oversized length prefix is a typed, sticky framing error — the
    /// decoder refuses to guess at a resync point no matter what arrives
    /// afterwards.
    #[test]
    fn oversized_prefix_poisons(
        max in 16usize..4096,
        over in 1usize..1_000_000,
        trailing in proptest::collection::vec(proptest::num::u8::ANY, 0..64),
    ) {
        let mut dec = FrameDecoder::with_max_len(max);
        dec.push(&((max + over) as u32).to_be_bytes());
        let e = dec.try_frame();
        prop_assert_eq!(e, Err(FrameError::Oversized { len: max + over, max }));
        dec.push(&trailing);
        prop_assert_eq!(dec.try_frame(), Err(FrameError::Oversized { len: max + over, max }));
        prop_assert!(dec.finish().is_err());
    }

    /// Feeding the decoder pure random bytes never panics; any frames it
    /// does emit obey the configured cap.
    #[test]
    fn random_bytes_never_panic(
        noise in proptest::collection::vec(proptest::num::u8::ANY, 0..512),
        max in 1usize..512,
    ) {
        let mut dec = FrameDecoder::with_max_len(max);
        dec.push(&noise);
        loop {
            match dec.try_report() {
                Ok(Some((log, _))) => prop_assert!(log.len() < max),
                Ok(None) => break,
                Err(ProtocolError::Llrp(_)) => continue,
                Err(ProtocolError::Frame(_)) => break,
            }
        }
        let _ = dec.finish();
    }
}
