//! Property-based tests for the EPC substrate: wire-format and line-coding
//! round trips, CRC error detection, inventory-round conservation.

use proptest::prelude::*;
use tagspin_epc::coding::{
    bits_to_bytes, bytes_to_bits, fm0_decode, fm0_encode, miller_decode, miller_encode,
};
use tagspin_epc::crc::{append16, check16};
use tagspin_epc::gen2::simulate_round;
use tagspin_epc::llrp::{decode_report, encode_report};
use tagspin_epc::timing::LinkProfile;
use tagspin_epc::{InventoryLog, TagReport};

fn arb_report() -> impl Strategy<Value = TagReport> {
    (
        0u128..(1u128 << 96),
        0u64..10_000_000,
        0.0f64..std::f64::consts::TAU,
        -90.0f64..-30.0,
        0u8..16,
        1u8..5,
    )
        .prop_map(
            |(epc, timestamp_us, phase, rssi_dbm, channel_index, antenna_id)| TagReport {
                epc,
                timestamp_us,
                phase,
                rssi_dbm,
                channel_index,
                antenna_id,
            },
        )
}

fn arb_log() -> impl Strategy<Value = InventoryLog> {
    proptest::collection::vec(arb_report(), 0..40).prop_map(|mut reports| {
        reports.sort_by_key(|r| r.timestamp_us);
        reports.into_iter().collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// LLRP round trip preserves every field up to documented quantization.
    #[test]
    fn llrp_roundtrip(log in arb_log(), id in proptest::num::u32::ANY) {
        let bytes = encode_report(&log, id);
        let (decoded, rid) = decode_report(bytes).expect("own encoding decodes");
        prop_assert_eq!(rid, id);
        prop_assert_eq!(decoded.len(), log.len());
        for (a, b) in decoded.reports().iter().zip(log.reports()) {
            prop_assert_eq!(a.epc, b.epc & ((1u128 << 96) - 1));
            prop_assert_eq!(a.timestamp_us, b.timestamp_us);
            prop_assert_eq!(a.channel_index, b.channel_index);
            prop_assert_eq!(a.antenna_id, b.antenna_id);
            // Circular distance: a phase just below 2π correctly snaps
            // to step 0.
            let dq = tagspin_geom::angle::separation(a.phase, b.phase);
            prop_assert!(dq <= std::f64::consts::TAU / 4096.0 / 2.0 + 1e-12);
            prop_assert!((a.rssi_dbm - b.rssi_dbm).abs() <= 0.005 + 1e-9);
        }
    }

    /// Truncating an encoded message anywhere never panics and never
    /// yields Ok with a different length... (decode is total).
    #[test]
    fn llrp_truncation_is_safe(log in arb_log(), cut in 0usize..64) {
        let bytes = encode_report(&log, 1);
        let cut = cut.min(bytes.len());
        let sliced = bytes.slice(0..bytes.len() - cut);
        // Either an error, or (cut == 0) the full log.
        match decode_report(sliced) {
            Ok((decoded, _)) => prop_assert_eq!(decoded.len(), log.len()),
            Err(_) => prop_assert!(cut > 0),
        }
    }

    /// FM0 and Miller round-trip arbitrary bit strings.
    #[test]
    fn coding_roundtrips(bits in proptest::collection::vec(0u8..2, 1..128)) {
        let fm0 = fm0_decode(&fm0_encode(&bits));
        prop_assert_eq!(fm0.as_deref(), Some(&bits[..]));
        for m in [2u8, 4, 8] {
            let rt = miller_decode(&miller_encode(&bits, m), m);
            prop_assert_eq!(rt.as_deref(), Some(&bits[..]));
        }
    }

    /// Bit/byte helpers round-trip on byte boundaries.
    #[test]
    fn bit_byte_roundtrip(bytes in proptest::collection::vec(proptest::num::u8::ANY, 0..64)) {
        prop_assert_eq!(bits_to_bytes(&bytes_to_bits(&bytes)), bytes);
    }

    /// CRC-16 detects every single-bit error (it's a CRC; this is its job).
    #[test]
    fn crc_detects_bit_flips(
        payload in proptest::collection::vec(proptest::num::u8::ANY, 1..32),
        flip_byte in 0usize..34,
        flip_bit in 0u8..8,
    ) {
        let framed = append16(payload);
        prop_assert!(check16(&framed));
        let mut corrupted = framed.clone();
        let idx = flip_byte % corrupted.len();
        corrupted[idx] ^= 1 << flip_bit;
        prop_assert!(!check16(&corrupted));
    }

    /// An inventory round conserves tags: every singulated index is a
    /// distinct participant; counts add up to the slot count.
    #[test]
    fn round_conservation(q in 0u8..8, participants in 0usize..20, seed in proptest::num::u64::ANY) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let r = simulate_round(q, participants, &LinkProfile::default(), &mut rng);
        prop_assert_eq!(r.slots.len(), 1usize << q);
        let (e, s, c) = r.tally();
        prop_assert_eq!(e + s + c, 1usize << q);
        let mut seen: Vec<usize> = r.singulated().collect();
        let before = seen.len();
        seen.sort_unstable();
        seen.dedup();
        prop_assert_eq!(seen.len(), before, "duplicate singulations");
        prop_assert!(seen.iter().all(|&i| i < participants));
        prop_assert!(r.duration_us > 0.0);
    }
}
