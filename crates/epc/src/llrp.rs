//! LLRP wire-format subset: RO_ACCESS_REPORT encode/decode.
//!
//! The paper's host talks to the Impinj Speedway over LLRP (EPCglobal Low
//! Level Reader Protocol) with Impinj's custom extension that adds the
//! backscatter phase to each tag report. This module implements the subset
//! needed to serialize an [`InventoryLog`] the way the wire carries it:
//!
//! * LLRP message header (version 1, type `RO_ACCESS_REPORT` = 61),
//! * one `TagReportData` TLV parameter per read, containing
//!   `EPC-96`, `FirstSeenTimestampUTC`, `AntennaID`, `ChannelIndex` TV
//!   parameters, and
//! * an Impinj-style custom TLV carrying the phase angle (1/4096-turn
//!   units) and peak RSSI in centi-dBm.
//!
//! Round-tripping through this encoding applies exactly the quantization a
//! real deployment suffers, which makes it a useful fidelity layer in
//! end-to-end tests.

use crate::report::{InventoryLog, TagReport};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::f64::consts::TAU;
use std::fmt;

/// LLRP message type for RO_ACCESS_REPORT.
pub const MSG_RO_ACCESS_REPORT: u16 = 61;
/// TLV parameter type for TagReportData.
pub const PARAM_TAG_REPORT_DATA: u16 = 240;
/// TV parameter type for EPC-96.
pub const TV_EPC_96: u8 = 13;
/// TV parameter type for FirstSeenTimestampUTC.
pub const TV_FIRST_SEEN_UTC: u8 = 2;
/// TV parameter type for AntennaID.
pub const TV_ANTENNA_ID: u8 = 1;
/// TV parameter type for ChannelIndex.
pub const TV_CHANNEL_INDEX: u8 = 7;
/// TLV parameter type for vendor custom parameters.
pub const PARAM_CUSTOM: u16 = 1023;
/// Impinj vendor PEN.
pub const IMPINJ_VENDOR_ID: u32 = 25882;
/// Impinj custom subtype we use for the phase/RSSI extension.
pub const IMPINJ_PHASE_SUBTYPE: u32 = 1029;

/// Errors from decoding an LLRP byte stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LlrpError {
    /// The buffer ended before a complete header/parameter.
    Truncated,
    /// Header fields are inconsistent (bad version or message type).
    BadHeader(String),
    /// An unknown or out-of-place parameter type was found.
    UnexpectedParameter(u16),
}

impl fmt::Display for LlrpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LlrpError::Truncated => write!(f, "truncated llrp message"),
            LlrpError::BadHeader(s) => write!(f, "bad llrp header: {s}"),
            LlrpError::UnexpectedParameter(t) => write!(f, "unexpected llrp parameter type {t}"),
        }
    }
}

impl std::error::Error for LlrpError {}

/// Encode phase (radians) into Impinj 1/4096-turn units.
fn phase_to_units(phase: f64) -> u16 {
    ((tagspin_geom::angle::wrap_tau(phase) / TAU * 4096.0).round() as u32 % 4096) as u16
}

/// Decode Impinj phase units back to radians.
fn units_to_phase(units: u16) -> f64 {
    (units % 4096) as f64 / 4096.0 * TAU
}

fn encode_tag_report(buf: &mut BytesMut, r: &TagReport) {
    // Build the parameter body first to learn its length.
    let mut body = BytesMut::with_capacity(64);
    // EPC-96 (TV): type byte with MSB set, then 12 bytes of EPC.
    body.put_u8(0x80 | TV_EPC_96);
    body.put_slice(&r.epc.to_be_bytes()[4..16]); // low 96 bits
                                                 // FirstSeenTimestampUTC (TV): u64 microseconds.
    body.put_u8(0x80 | TV_FIRST_SEEN_UTC);
    body.put_u64(r.timestamp_us);
    // AntennaID (TV): u16.
    body.put_u8(0x80 | TV_ANTENNA_ID);
    body.put_u16(r.antenna_id as u16);
    // ChannelIndex (TV): u16, 1-based on the wire.
    body.put_u8(0x80 | TV_CHANNEL_INDEX);
    body.put_u16(r.channel_index as u16 + 1);
    // Impinj custom TLV: vendor, subtype, phase units u16, rssi centi-dBm i16.
    let custom_len = 4 + 4 + 4 + 2 + 2;
    body.put_u16(PARAM_CUSTOM);
    body.put_u16(custom_len);
    body.put_u32(IMPINJ_VENDOR_ID);
    body.put_u32(IMPINJ_PHASE_SUBTYPE);
    body.put_u16(phase_to_units(r.phase));
    body.put_i16((r.rssi_dbm * 100.0).round().clamp(-32768.0, 32767.0) as i16);

    // TagReportData TLV header: type u16, length u16 (header inclusive).
    buf.put_u16(PARAM_TAG_REPORT_DATA);
    buf.put_u16(4 + body.len() as u16);
    buf.put_slice(&body);
}

/// Encode an [`InventoryLog`] as one RO_ACCESS_REPORT message.
///
/// `message_id` is the LLRP message id echoed in the header.
pub fn encode_report(log: &InventoryLog, message_id: u32) -> Bytes {
    let mut body = BytesMut::with_capacity(64 * log.len());
    for r in log.reports() {
        encode_tag_report(&mut body, r);
    }
    let mut out = BytesMut::with_capacity(10 + body.len());
    // Rsvd(3)=0, Version(3)=1, MessageType(10).
    out.put_u16((1u16 << 10) | MSG_RO_ACCESS_REPORT);
    out.put_u32(10 + body.len() as u32);
    out.put_u32(message_id);
    out.put_slice(&body);
    out.freeze()
}

fn decode_tag_report(buf: &mut Bytes, param_len: usize) -> Result<TagReport, LlrpError> {
    if buf.remaining() < param_len {
        return Err(LlrpError::Truncated);
    }
    let mut body = buf.split_to(param_len);
    let mut epc: u128 = 0;
    let mut timestamp_us: u64 = 0;
    let mut antenna_id: u8 = 0;
    let mut channel_index: u8 = 0;
    let mut phase: f64 = 0.0;
    let mut rssi_dbm: f64 = 0.0;
    while body.has_remaining() {
        let first = body.chunk()[0];
        if first & 0x80 != 0 {
            // TV parameter.
            body.advance(1);
            match first & 0x7f {
                TV_EPC_96 => {
                    if body.remaining() < 12 {
                        return Err(LlrpError::Truncated);
                    }
                    let mut bytes = [0u8; 16];
                    body.copy_to_slice(&mut bytes[4..16]);
                    epc = u128::from_be_bytes(bytes);
                }
                TV_FIRST_SEEN_UTC => {
                    if body.remaining() < 8 {
                        return Err(LlrpError::Truncated);
                    }
                    timestamp_us = body.get_u64();
                }
                TV_ANTENNA_ID => {
                    if body.remaining() < 2 {
                        return Err(LlrpError::Truncated);
                    }
                    antenna_id = body.get_u16() as u8;
                }
                TV_CHANNEL_INDEX => {
                    if body.remaining() < 2 {
                        return Err(LlrpError::Truncated);
                    }
                    channel_index = (body.get_u16().saturating_sub(1)) as u8;
                }
                other => return Err(LlrpError::UnexpectedParameter(other as u16)),
            }
        } else {
            // TLV parameter.
            if body.remaining() < 4 {
                return Err(LlrpError::Truncated);
            }
            let ptype = body.get_u16();
            let plen = body.get_u16() as usize;
            if plen < 4 || body.remaining() < plen - 4 {
                return Err(LlrpError::Truncated);
            }
            let mut pbody = body.split_to(plen - 4);
            if ptype == PARAM_CUSTOM {
                if pbody.remaining() < 12 {
                    return Err(LlrpError::Truncated);
                }
                let vendor = pbody.get_u32();
                let subtype = pbody.get_u32();
                if vendor == IMPINJ_VENDOR_ID && subtype == IMPINJ_PHASE_SUBTYPE {
                    phase = units_to_phase(pbody.get_u16());
                    rssi_dbm = pbody.get_i16() as f64 / 100.0;
                }
            } else {
                return Err(LlrpError::UnexpectedParameter(ptype));
            }
        }
    }
    Ok(TagReport {
        epc,
        timestamp_us,
        phase,
        rssi_dbm,
        channel_index,
        antenna_id,
    })
}

/// Decode an RO_ACCESS_REPORT produced by [`encode_report`].
///
/// Returns the log and the message id.
///
/// # Errors
///
/// Any structural problem yields an [`LlrpError`]; partial logs are not
/// returned.
pub fn decode_report(mut buf: Bytes) -> Result<(InventoryLog, u32), LlrpError> {
    if buf.remaining() < 10 {
        return Err(LlrpError::Truncated);
    }
    let vt = buf.get_u16();
    let version = (vt >> 10) & 0x7;
    let msg_type = vt & 0x3ff;
    if version != 1 {
        return Err(LlrpError::BadHeader(format!("version {version}")));
    }
    if msg_type != MSG_RO_ACCESS_REPORT {
        return Err(LlrpError::BadHeader(format!("message type {msg_type}")));
    }
    let total_len = buf.get_u32() as usize;
    // The declared length covers the 10-byte header; anything smaller is a
    // malformed frame (and would underflow the arithmetic below).
    if total_len < 10 {
        return Err(LlrpError::BadHeader(format!(
            "declared length {total_len} below header size"
        )));
    }
    let message_id = buf.get_u32();
    if buf.remaining() != total_len - 10 {
        return Err(LlrpError::Truncated);
    }
    let mut log = InventoryLog::new();
    while buf.has_remaining() {
        if buf.remaining() < 4 {
            return Err(LlrpError::Truncated);
        }
        let ptype = buf.get_u16();
        if ptype != PARAM_TAG_REPORT_DATA {
            return Err(LlrpError::UnexpectedParameter(ptype));
        }
        let plen = buf.get_u16() as usize;
        if plen < 4 {
            return Err(LlrpError::Truncated);
        }
        let report = decode_tag_report(&mut buf, plen - 4)?;
        log.push(report);
    }
    Ok((log, message_id))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_log() -> InventoryLog {
        (0..10)
            .map(|i| TagReport {
                epc: 0xE200_1234_5678_0000_u128 + i as u128,
                timestamp_us: 1_000 * i,
                phase: tagspin_geom::angle::wrap_tau(i as f64 * 0.7),
                rssi_dbm: -55.5 - i as f64,
                channel_index: (i % 16) as u8,
                antenna_id: 1 + (i % 4) as u8,
            })
            .collect()
    }

    #[test]
    fn roundtrip_preserves_fields() {
        let log = sample_log();
        let bytes = encode_report(&log, 42);
        let (decoded, id) = decode_report(bytes).unwrap();
        assert_eq!(id, 42);
        assert_eq!(decoded.len(), log.len());
        for (a, b) in decoded.reports().iter().zip(log.reports()) {
            assert_eq!(a.epc & ((1u128 << 96) - 1), b.epc & ((1u128 << 96) - 1));
            assert_eq!(a.timestamp_us, b.timestamp_us);
            assert_eq!(a.channel_index, b.channel_index);
            assert_eq!(a.antenna_id, b.antenna_id);
            // Phase survives within half a quantization step.
            let dq = (a.phase - b.phase).abs();
            assert!(dq < TAU / 4096.0, "phase err {dq}");
            // RSSI within a centi-dB.
            assert!((a.rssi_dbm - b.rssi_dbm).abs() <= 0.01);
        }
    }

    #[test]
    fn empty_log_roundtrip() {
        let log = InventoryLog::new();
        let bytes = encode_report(&log, 7);
        let (decoded, id) = decode_report(bytes).unwrap();
        assert!(decoded.is_empty());
        assert_eq!(id, 7);
    }

    #[test]
    fn phase_units_roundtrip() {
        for i in 0..4096u16 {
            assert_eq!(phase_to_units(units_to_phase(i)), i);
        }
        assert_eq!(phase_to_units(TAU - 1e-9), 0);
    }

    #[test]
    fn truncated_rejected() {
        let log = sample_log();
        let bytes = encode_report(&log, 1);
        let short = bytes.slice(0..bytes.len() - 3);
        assert!(matches!(decode_report(short), Err(LlrpError::Truncated)));
        assert!(matches!(
            decode_report(Bytes::from_static(&[0, 1, 2])),
            Err(LlrpError::Truncated)
        ));
    }

    #[test]
    fn bad_version_rejected() {
        let log = sample_log();
        let mut bytes = BytesMut::from(&encode_report(&log, 1)[..]);
        bytes[0] = 0x0C; // version 3
        let err = decode_report(bytes.freeze()).unwrap_err();
        assert!(matches!(err, LlrpError::BadHeader(_)));
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn undersized_declared_length_rejected() {
        // A crafted frame declaring total_len < 10 must be a clean error,
        // not a usize-underflow panic.
        let mut out = BytesMut::new();
        out.put_u16((1u16 << 10) | MSG_RO_ACCESS_REPORT);
        out.put_u32(5); // absurd declared length
        out.put_u32(0);
        assert!(matches!(
            decode_report(out.freeze()),
            Err(LlrpError::BadHeader(_))
        ));
    }

    #[test]
    fn wrong_message_type_rejected() {
        let mut out = BytesMut::new();
        out.put_u16((1u16 << 10) | 30); // some other type
        out.put_u32(10);
        out.put_u32(0);
        assert!(matches!(
            decode_report(out.freeze()),
            Err(LlrpError::BadHeader(_))
        ));
    }

    #[test]
    fn epc_96_truncation_is_documented_behaviour() {
        // Only the low 96 bits ride the wire; high 32 bits are dropped.
        let mut log = InventoryLog::new();
        log.push(TagReport {
            epc: (0xDEADBEEF_u128 << 96) | 0x1234,
            timestamp_us: 0,
            phase: 0.0,
            rssi_dbm: -60.0,
            channel_index: 0,
            antenna_id: 1,
        });
        let (decoded, _) = decode_report(encode_report(&log, 0)).unwrap();
        assert_eq!(decoded.reports()[0].epc, 0x1234);
    }
}
