//! Gen2 backscatter line coding: FM0 and Miller-modulated subcarrier.
//!
//! The tag's reply is baseband-encoded before it modulates the reflection:
//! FM0 inverts phase at every symbol boundary (plus mid-symbol for data-0);
//! Miller-M spreads each symbol over `M` subcarrier cycles with a phase
//! inversion mid-symbol for data-1 (and between consecutive data-0s). The
//! reader profile's choice (the `miller` factor of
//! [`LinkProfile`](crate::timing::LinkProfile)) trades reply rate for
//! interference tolerance — dense-reader modes use Miller-4/8.
//!
//! This module encodes/decodes bit streams to/from chip streams (half-symbol
//! booleans), letting tests exercise exactly what the reader's decoder sees.

/// Encode a bit stream with FM0 baseband.
///
/// Each symbol occupies 2 chips. The line level inverts at every symbol
/// boundary; data-0 additionally inverts mid-symbol. Starts from level
/// `true` (the Gen2 preamble fixes the actual initial state; relative
/// transitions carry the data).
///
/// # Panics
///
/// Panics when any input element is not 0 or 1.
pub fn fm0_encode(bits: &[u8]) -> Vec<bool> {
    let mut chips = Vec::with_capacity(bits.len() * 2);
    let mut level = true;
    for &bit in bits {
        assert!(bit <= 1, "bits must be 0 or 1");
        // Invert at the symbol boundary.
        level = !level;
        chips.push(level);
        if bit == 0 {
            // Mid-symbol inversion for data-0.
            level = !level;
        }
        chips.push(level);
    }
    chips
}

/// Decode an FM0 chip stream produced by [`fm0_encode`].
///
/// Returns `None` when the chip count is odd or a boundary transition is
/// missing (an invalid FM0 waveform).
pub fn fm0_decode(chips: &[bool]) -> Option<Vec<u8>> {
    if !chips.len().is_multiple_of(2) {
        return None;
    }
    let mut bits = Vec::with_capacity(chips.len() / 2);
    let mut prev_level = true;
    for pair in chips.chunks_exact(2) {
        // FM0 guarantees an inversion at each symbol boundary.
        if pair[0] == prev_level {
            return None;
        }
        bits.push(if pair[0] == pair[1] { 1 } else { 0 });
        prev_level = pair[1];
    }
    Some(bits)
}

/// Encode a bit stream with Miller-M subcarrier baseband.
///
/// Each symbol spans `2·m` chips (m subcarrier half-cycles ... concretely:
/// the subcarrier square wave at 2 chips/cycle, `m` cycles per symbol).
/// Data-1 inverts phase mid-symbol; a data-0 following a data-0 inverts at
/// the boundary (Miller's memory rule).
///
/// # Panics
///
/// Panics when `m` is not 2, 4 or 8, or a bit is not 0/1.
pub fn miller_encode(bits: &[u8], m: u8) -> Vec<bool> {
    assert!(matches!(m, 2 | 4 | 8), "miller factor must be 2, 4 or 8");
    let half_cycles = 2 * m as usize;
    let mut chips = Vec::with_capacity(bits.len() * half_cycles);
    let mut phase = false;
    let mut prev_bit: Option<u8> = None;
    for &bit in bits {
        assert!(bit <= 1, "bits must be 0 or 1");
        // Boundary inversion between consecutive zeros.
        if prev_bit == Some(0) && bit == 0 {
            phase = !phase;
        }
        for k in 0..half_cycles {
            // Mid-symbol inversion for data-1.
            if bit == 1 && k == half_cycles / 2 {
                phase = !phase;
            }
            // Subcarrier square wave: toggles every chip.
            chips.push(phase ^ (k % 2 == 1));
        }
        prev_bit = Some(bit);
    }
    chips
}

/// Decode a Miller-M chip stream produced by [`miller_encode`].
///
/// Returns `None` on length mismatch or an invalid subcarrier pattern.
pub fn miller_decode(chips: &[bool], m: u8) -> Option<Vec<u8>> {
    assert!(matches!(m, 2 | 4 | 8), "miller factor must be 2, 4 or 8");
    let half_cycles = 2 * m as usize;
    if !chips.len().is_multiple_of(half_cycles) {
        return None;
    }
    let mut bits = Vec::with_capacity(chips.len() / half_cycles);
    for sym in chips.chunks_exact(half_cycles) {
        // Recover the base phase of each half: chip k should equal
        // phase ^ (k odd). Check both halves for consistency.
        let first = sym[0];
        let mid = sym[half_cycles / 2];
        for (k, &c) in sym.iter().enumerate() {
            let expected_phase = if k < half_cycles / 2 { first } else { mid };
            if c != expected_phase ^ (k % 2 == 1) {
                return None;
            }
        }
        // The mid-symbol half keeps the subcarrier parity; a data-1 flips
        // the phase relative to the continuing square wave.
        let continuing = first ^ (half_cycles / 2 % 2 == 1);
        bits.push(if mid == continuing { 0 } else { 1 });
    }
    Some(bits)
}

/// Bits → bytes helper (MSB first); pads the last byte with zeros.
pub fn bits_to_bytes(bits: &[u8]) -> Vec<u8> {
    bits.chunks(8)
        .map(|chunk| {
            chunk
                .iter()
                .enumerate()
                .fold(0u8, |acc, (i, &b)| acc | (b << (7 - i)))
        })
        .collect()
}

/// Bytes → bits helper (MSB first).
pub fn bytes_to_bits(bytes: &[u8]) -> Vec<u8> {
    bytes
        .iter()
        .flat_map(|&byte| (0..8).map(move |i| (byte >> (7 - i)) & 1))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn patterns() -> Vec<Vec<u8>> {
        vec![
            vec![0],
            vec![1],
            vec![0, 0],
            vec![1, 1],
            vec![0, 1, 0, 1],
            vec![1, 0, 0, 1, 1, 0],
            vec![0; 16],
            vec![1; 16],
            (0..64).map(|i| ((i * 7 + 3) % 5 % 2) as u8).collect(),
        ]
    }

    #[test]
    fn fm0_round_trip() {
        for bits in patterns() {
            let chips = fm0_encode(&bits);
            assert_eq!(chips.len(), bits.len() * 2);
            assert_eq!(fm0_decode(&chips).as_deref(), Some(&bits[..]), "{bits:?}");
        }
    }

    #[test]
    fn fm0_has_boundary_transitions() {
        // The defining FM0 property: level always inverts between symbols.
        let bits = [1u8, 1, 0, 1, 0, 0, 1];
        let chips = fm0_encode(&bits);
        for i in (2..chips.len()).step_by(2) {
            assert_ne!(chips[i], chips[i - 1], "missing transition at {i}");
        }
    }

    #[test]
    fn fm0_decode_rejects_invalid() {
        assert!(fm0_decode(&[true]).is_none()); // odd length
                                                // A flat waveform has no boundary transitions.
        assert!(fm0_decode(&[true, true, true, true]).is_none());
    }

    #[test]
    fn miller_round_trip_all_factors() {
        for m in [2u8, 4, 8] {
            for bits in patterns() {
                let chips = miller_encode(&bits, m);
                assert_eq!(chips.len(), bits.len() * 2 * m as usize);
                assert_eq!(
                    miller_decode(&chips, m).as_deref(),
                    Some(&bits[..]),
                    "m={m} bits={bits:?}"
                );
            }
        }
    }

    #[test]
    fn miller_subcarrier_toggles_every_chip_within_halves() {
        let chips = miller_encode(&[0, 0, 1, 0], 4);
        // Within each half-symbol the wave must alternate strictly.
        for sym in chips.chunks_exact(8) {
            for half in sym.chunks_exact(4) {
                for k in 1..4 {
                    assert_ne!(half[k], half[k - 1]);
                }
            }
        }
    }

    #[test]
    fn miller_decode_rejects_corruption() {
        let mut chips = miller_encode(&[1, 0, 1, 1], 4);
        chips[5] = !chips[5];
        assert!(miller_decode(&chips, 4).is_none());
        assert!(miller_decode(&chips[..7], 4).is_none()); // bad length
    }

    #[test]
    #[should_panic(expected = "miller factor")]
    fn miller_rejects_bad_factor() {
        let _ = miller_encode(&[1], 3);
    }

    #[test]
    fn bit_byte_helpers() {
        let bytes = [0xE2, 0x00, 0x34, 0x12];
        let bits = bytes_to_bits(&bytes);
        assert_eq!(bits.len(), 32);
        assert_eq!(bits_to_bytes(&bits), bytes);
        // Padding: 3 bits -> one byte, MSB-aligned.
        assert_eq!(bits_to_bytes(&[1, 0, 1]), vec![0b1010_0000]);
    }

    #[test]
    fn epc_frame_with_crc_survives_the_air() {
        // A full tag reply: PC + EPC-96 + CRC-16, FM0 on the wire.
        use crate::crc::{append16, check16};
        let mut payload = vec![0x30, 0x00]; // PC word
        payload.extend((0..12).map(|i| (i * 11 + 5) as u8)); // EPC-96
        let framed = append16(payload);
        let bits = bytes_to_bits(&framed);
        let chips = fm0_encode(&bits);
        let rx_bits = fm0_decode(&chips).expect("clean channel decodes");
        let rx_bytes = bits_to_bytes(&rx_bits);
        assert!(check16(&rx_bytes));
        assert_eq!(rx_bytes, framed);
    }
}
