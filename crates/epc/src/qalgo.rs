//! Slotted-ALOHA Q adaptation.
//!
//! Gen2 inventories tags in rounds of `2^Q` slots. The reader adapts `Q` to
//! the (unknown) responding population using the standard floating-point
//! "Q-algorithm" from the Gen2 spec's Annex: increase `Qfp` on collisions,
//! decrease it on empty slots, leave it on successes.

use serde::{Deserialize, Serialize};

/// Outcome of one inventory slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotOutcome {
    /// No tag replied.
    Empty,
    /// Exactly one tag replied and was singulated.
    Success,
    /// Two or more tags replied; RN16s collided.
    Collision,
}

/// The floating-point Q-adaptation state.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QAlgorithm {
    /// Floating-point Q value, clamped to `[0, 15]`.
    qfp: f64,
    /// Adjustment step `C ∈ [0.1, 0.5]` (spec recommendation).
    c: f64,
}

impl QAlgorithm {
    /// Start with an initial `Q` and step `C`.
    ///
    /// # Panics
    ///
    /// Panics when `q0 > 15` or `c` outside `[0.1, 0.5]`.
    pub fn new(q0: u8, c: f64) -> Self {
        assert!(q0 <= 15, "Q must be <= 15");
        assert!((0.1..=0.5).contains(&c), "C must be in [0.1, 0.5]");
        QAlgorithm { qfp: q0 as f64, c }
    }

    /// Spec-typical defaults: Q₀ = 4, C = 0.3.
    pub fn gen2_default() -> Self {
        QAlgorithm::new(4, 0.3)
    }

    /// The integer Q to use for the next round.
    pub fn q(&self) -> u8 {
        self.qfp.round().clamp(0.0, 15.0) as u8
    }

    /// Slots in the next round: `2^Q`.
    pub fn slots(&self) -> u32 {
        1u32 << self.q()
    }

    /// Update from a slot outcome.
    pub fn observe(&mut self, outcome: SlotOutcome) {
        match outcome {
            SlotOutcome::Empty => self.qfp = (self.qfp - self.c).max(0.0),
            SlotOutcome::Success => {}
            SlotOutcome::Collision => self.qfp = (self.qfp + self.c).min(15.0),
        }
    }
}

impl Default for QAlgorithm {
    fn default() -> Self {
        QAlgorithm::gen2_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let q = QAlgorithm::gen2_default();
        assert_eq!(q.q(), 4);
        assert_eq!(q.slots(), 16);
    }

    #[test]
    fn collisions_raise_q() {
        let mut q = QAlgorithm::new(0, 0.5);
        for _ in 0..10 {
            q.observe(SlotOutcome::Collision);
        }
        assert!(q.q() >= 4);
    }

    #[test]
    fn empties_lower_q() {
        let mut q = QAlgorithm::new(8, 0.5);
        for _ in 0..40 {
            q.observe(SlotOutcome::Empty);
        }
        assert_eq!(q.q(), 0);
        assert_eq!(q.slots(), 1);
    }

    #[test]
    fn success_leaves_q() {
        let mut q = QAlgorithm::new(5, 0.3);
        let before = q.q();
        q.observe(SlotOutcome::Success);
        assert_eq!(q.q(), before);
    }

    #[test]
    fn q_saturates_at_bounds() {
        let mut q = QAlgorithm::new(15, 0.5);
        q.observe(SlotOutcome::Collision);
        assert_eq!(q.q(), 15);
        let mut q = QAlgorithm::new(0, 0.5);
        q.observe(SlotOutcome::Empty);
        assert_eq!(q.q(), 0);
    }

    /// Convergence: with a single responding tag, Q drifts to 0 so nearly
    /// every slot becomes a read — this is what gives Tagspin its dense
    /// snapshot stream.
    #[test]
    fn single_tag_convergence() {
        let mut q = QAlgorithm::gen2_default();
        // With 1 tag, a round of 2^Q slots has 1 success and 2^Q − 1 empties.
        for _ in 0..6 {
            let slots = q.slots();
            q.observe(SlotOutcome::Success);
            for _ in 1..slots {
                q.observe(SlotOutcome::Empty);
            }
        }
        assert_eq!(q.q(), 0);
    }

    #[test]
    #[should_panic(expected = "C must be")]
    fn bad_c_panics() {
        let _ = QAlgorithm::new(4, 0.9);
    }

    #[test]
    #[should_panic(expected = "Q must be")]
    fn bad_q_panics() {
        let _ = QAlgorithm::new(16, 0.3);
    }
}
