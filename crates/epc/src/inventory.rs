//! The inventory driver: Gen2 rounds over the RF channel, producing reports.
//!
//! This is the simulator's "reader firmware": it runs Q-adapted inventory
//! rounds against a set of (possibly moving) transponders, evaluates the RF
//! link for every candidate read, and emits an [`InventoryLog`] with
//! reader-clock timestamps — the exact input the Tagspin pipeline consumes.

use crate::gen2::simulate_round;
use crate::qalgo::QAlgorithm;
use crate::report::{InventoryLog, TagReport};
use crate::select::Selection;
use crate::timing::LinkProfile;
use rand::Rng;
use tagspin_geom::{Pose, Vec3};
use tagspin_rf::channel::{measure, read_probability, Environment};
use tagspin_rf::constants::{channel_frequency, CHANNEL_COUNT};
use tagspin_rf::{ReaderAntenna, TagInstance};

/// Anything the reader can interrogate: a tag with (possibly time-varying)
/// position and plane orientation.
///
/// The spinning tags of the core crate implement this; static reference tags
/// (baselines) implement it trivially.
pub trait Transponder {
    /// The physical tag.
    fn instance(&self) -> &TagInstance;
    /// Position (meters) and tag-plane azimuth (radians) at time `t_s`.
    fn kinematics(&self, t_s: f64) -> (Vec3, f64);
}

/// A transponder fixed in space.
#[derive(Debug, Clone, PartialEq)]
pub struct StaticTag {
    /// The physical tag.
    pub tag: TagInstance,
    /// Fixed position, meters.
    pub position: Vec3,
    /// Fixed plane azimuth, radians.
    pub plane_azimuth: f64,
}

impl Transponder for StaticTag {
    fn instance(&self) -> &TagInstance {
        &self.tag
    }
    fn kinematics(&self, _t_s: f64) -> (Vec3, f64) {
        (self.position, self.plane_azimuth)
    }
}

/// Frequency-hopping schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum HopSchedule {
    /// Stay on one channel (index into the band plan).
    Fixed(u8),
    /// Cycle through all channels with the given dwell time.
    Cycle {
        /// Seconds per channel.
        dwell_s: f64,
    },
}

impl HopSchedule {
    /// Channel index active at time `t_s`.
    pub fn channel_at(&self, t_s: f64) -> u8 {
        match *self {
            HopSchedule::Fixed(ch) => ch % CHANNEL_COUNT as u8,
            HopSchedule::Cycle { dwell_s } => {
                ((t_s / dwell_s.max(1e-6)) as u64 % CHANNEL_COUNT as u64) as u8
            }
        }
    }
}

/// Full reader configuration for an inventory run.
#[derive(Debug, Clone, PartialEq)]
pub struct ReaderConfig {
    /// Antenna pose (position + boresight azimuth).
    pub pose: Pose,
    /// The antenna connected to the active port.
    pub antenna: ReaderAntenna,
    /// Gen2 link profile.
    pub profile: LinkProfile,
    /// Hop schedule (the paper's deployment effectively dwells per-channel
    /// long enough that a trial sees one carrier; `Fixed` is the default).
    pub hopping: HopSchedule,
    /// Initial Q-algorithm state.
    pub q: QAlgorithm,
    /// Population filter (Gen2 Select); defaults to admitting every tag.
    pub selection: Selection,
}

impl ReaderConfig {
    /// A reader at `pose` with defaults matching the paper's deployment.
    pub fn at(pose: Pose) -> Self {
        ReaderConfig {
            pose,
            antenna: ReaderAntenna::typical(1),
            profile: LinkProfile::default(),
            hopping: HopSchedule::Fixed(8),
            q: QAlgorithm::gen2_default(),
            selection: Selection::all(),
        }
    }

    /// Replace the antenna (builder-style).
    pub fn with_antenna(mut self, antenna: ReaderAntenna) -> Self {
        self.antenna = antenna;
        self
    }

    /// Replace the hop schedule (builder-style).
    pub fn with_hopping(mut self, hopping: HopSchedule) -> Self {
        self.hopping = hopping;
        self
    }

    /// Replace the population filter (builder-style).
    pub fn with_selection(mut self, selection: Selection) -> Self {
        self.selection = selection;
        self
    }
}

/// Run an inventory for `duration_s` seconds of reader time.
///
/// Every round: each transponder is energized with the probability given by
/// its current link margin (this is what produces the paper's
/// orientation-dependent sampling density); energized tags contend in
/// slotted ALOHA; singulated tags produce a [`TagReport`] with the RF-layer
/// phase/RSSI at the singulation instant.
pub fn run_inventory<R: Rng + ?Sized>(
    env: &Environment,
    config: &ReaderConfig,
    transponders: &[&dyn Transponder],
    duration_s: f64,
    rng: &mut R,
) -> InventoryLog {
    let mut log = InventoryLog::new();
    let mut t_us: f64 = 0.0;
    let mut q = config.q;
    let duration_us = duration_s * 1e6;

    while t_us < duration_us {
        let t_s = t_us * 1e-6;
        let freq = channel_frequency(config.hopping.channel_at(t_s) as usize % CHANNEL_COUNT);

        // Energization roll per transponder for this round. Tags filtered
        // out by the Select population never contend (their SL flag is
        // deasserted, so the Query targeting SL skips them).
        let mut participants: Vec<usize> = Vec::new();
        for (i, tr) in transponders.iter().enumerate() {
            if !config.selection.admits(tr.instance().epc) {
                continue;
            }
            let (pos, plane) = tr.kinematics(t_s);
            let m = measure(
                env,
                config.pose,
                &config.antenna,
                tr.instance(),
                pos,
                plane,
                freq,
                rng,
            );
            let p = read_probability(env, tr.instance(), m.tag_power_dbm);
            if rng.gen::<f64>() < p {
                participants.push(i);
            }
        }

        let round = simulate_round(q.q(), participants.len(), &config.profile, rng);
        // Walk slots in order, accumulating time so each read gets the
        // timestamp of its own slot, not the round start.
        let mut slot_t_us = t_us + config.profile.query_us();
        for slot in &round.slots {
            let slot_dur = match slot.outcome {
                crate::qalgo::SlotOutcome::Empty => config.profile.empty_slot_us(),
                crate::qalgo::SlotOutcome::Success => config.profile.successful_slot_us(),
                crate::qalgo::SlotOutcome::Collision => config.profile.collision_slot_us(),
            };
            if let Some(pi) = slot.singulated {
                let tr = transponders[participants[pi]];
                let read_t_s = (slot_t_us + slot_dur) * 1e-6;
                let (pos, plane) = tr.kinematics(read_t_s);
                let m = measure(
                    env,
                    config.pose,
                    &config.antenna,
                    tr.instance(),
                    pos,
                    plane,
                    freq,
                    rng,
                );
                log.push(TagReport {
                    epc: tr.instance().epc,
                    timestamp_us: (slot_t_us + slot_dur) as u64,
                    phase: m.phase,
                    rssi_dbm: m.rssi_dbm,
                    channel_index: config.hopping.channel_at(t_s),
                    antenna_id: config.antenna.id,
                });
            }
            q.observe(slot.outcome);
            slot_t_us += slot_dur;
        }
        t_us += round.duration_us.max(1.0);
    }
    log
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::f64::consts::FRAC_PI_2;
    use tagspin_rf::TagModel;

    fn static_tag(epc: u128, pos: Vec3) -> StaticTag {
        StaticTag {
            tag: TagInstance::ideal(TagModel::DEFAULT, epc),
            position: pos,
            plane_azimuth: FRAC_PI_2 + (pos - Vec3::new(3.0, 0.0, 0.0)).azimuth(),
        }
    }

    fn reader() -> ReaderConfig {
        ReaderConfig::at(Pose::facing_toward(Vec3::new(3.0, 0.0, 0.0), Vec3::ZERO))
    }

    #[test]
    fn single_tag_read_rate_realistic() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = static_tag(1, Vec3::ZERO);
        let log = run_inventory(
            &Environment::paper_default(),
            &reader(),
            &[&t],
            2.0,
            &mut rng,
        );
        let rate = log.len() as f64 / 2.0;
        assert!(rate > 30.0 && rate < 300.0, "rate = {rate}/s");
        // Timestamps strictly ordered and within the window.
        for w in log.reports().windows(2) {
            assert!(w[1].timestamp_us >= w[0].timestamp_us);
        }
        assert!(log.reports().last().unwrap().timestamp_us <= 2_100_000);
    }

    #[test]
    fn multiple_tags_all_read() {
        let mut rng = StdRng::seed_from_u64(2);
        let tags: Vec<StaticTag> = (0..5)
            .map(|i| static_tag(i as u128 + 1, Vec3::new(0.0, i as f64 * 0.3 - 0.6, 0.0)))
            .collect();
        let refs: Vec<&dyn Transponder> = tags.iter().map(|t| t as &dyn Transponder).collect();
        let log = run_inventory(
            &Environment::paper_default(),
            &reader(),
            &refs,
            2.0,
            &mut rng,
        );
        let epcs = log.epcs();
        assert_eq!(epcs.len(), 5, "saw {epcs:?}");
        // Every tag read many times.
        for e in 1..=5u128 {
            assert!(log.for_epc(e).count() > 10, "epc {e} starved");
        }
    }

    #[test]
    fn out_of_range_tag_unread() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = static_tag(1, Vec3::new(-100.0, 0.0, 0.0));
        let log = run_inventory(
            &Environment::paper_default(),
            &reader(),
            &[&t],
            1.0,
            &mut rng,
        );
        assert!(log.is_empty());
    }

    #[test]
    fn deterministic_under_seed() {
        let t = static_tag(1, Vec3::ZERO);
        let run = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            run_inventory(
                &Environment::paper_default(),
                &reader(),
                &[&t],
                1.0,
                &mut rng,
            )
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn hop_schedule_channels() {
        assert_eq!(HopSchedule::Fixed(3).channel_at(123.0), 3);
        let cyc = HopSchedule::Cycle { dwell_s: 2.0 };
        assert_eq!(cyc.channel_at(0.0), 0);
        assert_eq!(cyc.channel_at(2.5), 1);
        assert_eq!(cyc.channel_at(2.0 * 16.0), 0); // wraps
    }

    #[test]
    fn hopping_changes_channel_index_in_log() {
        let mut rng = StdRng::seed_from_u64(4);
        let t = static_tag(1, Vec3::ZERO);
        let cfg = reader().with_hopping(HopSchedule::Cycle { dwell_s: 0.2 });
        let log = run_inventory(&Environment::paper_default(), &cfg, &[&t], 1.0, &mut rng);
        let mut channels: Vec<u8> = log.reports().iter().map(|r| r.channel_index).collect();
        channels.sort_unstable();
        channels.dedup();
        assert!(channels.len() > 1, "expected multiple channels");
    }

    #[test]
    fn selection_excludes_ambient_tags() {
        use crate::select::Selection;
        // Ten ambient tags contend with the one we care about; selecting
        // only EPC 1 removes the contention and raises its read rate.
        let mut rng = StdRng::seed_from_u64(21);
        let tags: Vec<StaticTag> = (0..11)
            .map(|i| static_tag(i as u128 + 1, Vec3::new(0.0, i as f64 * 0.1 - 0.5, 0.0)))
            .collect();
        let refs: Vec<&dyn Transponder> = tags.iter().map(|t| t as &dyn Transponder).collect();

        let open = run_inventory(
            &Environment::paper_default(),
            &reader(),
            &refs,
            1.0,
            &mut rng,
        );
        let mut rng = StdRng::seed_from_u64(21);
        let filtered_cfg = reader().with_selection(Selection::epcs(&[1]));
        let filtered = run_inventory(
            &Environment::paper_default(),
            &filtered_cfg,
            &refs,
            1.0,
            &mut rng,
        );
        // Only the selected tag appears...
        assert_eq!(filtered.epcs(), vec![1]);
        // ...and it is read more often than under open contention.
        assert!(
            filtered.for_epc(1).count() > open.for_epc(1).count(),
            "filtered {} vs open {}",
            filtered.for_epc(1).count(),
            open.for_epc(1).count()
        );
    }

    #[test]
    fn orientation_modulates_density() {
        // A tag whose plane rotates slowly: reads must cluster around the
        // face-on orientations. We bin reads by orientation and compare
        // face-on vs edge-on occupancy.
        struct Rotating {
            tag: TagInstance,
        }
        impl Transponder for Rotating {
            fn instance(&self) -> &TagInstance {
                &self.tag
            }
            fn kinematics(&self, t_s: f64) -> (Vec3, f64) {
                (Vec3::ZERO, 0.5 * t_s)
            }
        }
        let mut rng = StdRng::seed_from_u64(5);
        let mut tag = TagInstance::ideal(TagModel::DEFAULT, 1);
        // Push the tag toward its sensitivity limit so orientation really
        // gates reads: long range.
        tag.sensitivity_dbm = -10.0;
        let r = Rotating { tag };
        let cfg = ReaderConfig::at(Pose::facing_toward(Vec3::new(4.0, 0.0, 0.0), Vec3::ZERO));
        let log = run_inventory(
            &Environment::paper_default(),
            &cfg,
            &[&r],
            4.0 * std::f64::consts::TAU, // one full plane rotation at ω=0.5
            &mut rng,
        );
        assert!(!log.is_empty());
        let (mut face, mut edge) = (0usize, 0usize);
        for rep in log.reports() {
            // Orientation relative to a reader due +x: ρ = plane azimuth.
            // Modulo π (orientation, not phase) — geom::angle has no mod-π
            // wrap, and this test oracle needn't route through it anyway.
            #[allow(clippy::disallowed_methods)]
            let rho = (0.5 * rep.time_s()).rem_euclid(std::f64::consts::PI);
            let d = (rho - FRAC_PI_2).abs();
            if d < 0.4 {
                face += 1;
            } else if d > 1.1 {
                edge += 1;
            }
        }
        assert!(
            face > 2 * edge.max(1),
            "face = {face}, edge = {edge}: no density modulation"
        );
    }
}
