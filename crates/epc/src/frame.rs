//! Length-prefixed framing for LLRP report messages on a byte stream.
//!
//! TCP delivers a byte stream, not messages; the serve daemon needs
//! message boundaries before it can hand bytes to
//! [`crate::llrp::decode_report`]. Each frame is a 4-byte big-endian
//! payload length followed by exactly that many payload bytes (one LLRP
//! message). The decoder is a pure incremental state machine — push bytes
//! as they arrive, pull complete frames — so it is testable without
//! sockets and usable under any IO model.
//!
//! Error discipline: framing-level corruption (an oversized or absurd
//! declared length) is *unrecoverable* — the decoder cannot know where the
//! next frame starts, so it poisons itself and every later call returns
//! the same typed error; the transport should drop the connection.
//! Payload-level corruption (a delivered frame that fails LLRP decoding)
//! is *recoverable*: the frame boundary was still sound, so the stream
//! stays synchronized and the next frame decodes independently.

use crate::llrp::{self, LlrpError};
use crate::report::InventoryLog;
use bytes::Bytes;
use std::fmt;

/// Bytes of length prefix before each frame payload.
pub const FRAME_HEADER_LEN: usize = 4;

/// Default cap on a single frame's payload (1 MiB ≈ 16k tag reports —
/// far above any real report batch, far below a memory-exhaustion vector).
pub const DEFAULT_MAX_FRAME_LEN: usize = 1 << 20;

/// Errors from the framing layer itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// A frame declared a payload longer than the configured cap. The
    /// stream cannot be resynchronized past it.
    Oversized {
        /// The declared payload length.
        len: usize,
        /// The configured cap.
        max: usize,
    },
    /// The stream ended (or was cut) in the middle of a frame.
    Truncated {
        /// Bytes buffered when the stream ended.
        buffered: usize,
    },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Oversized { len, max } => {
                write!(f, "frame declares {len} payload bytes, cap is {max}")
            }
            FrameError::Truncated { buffered } => {
                write!(f, "stream ended mid-frame with {buffered} bytes buffered")
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// Errors from the combined frame + LLRP report decode path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// The framing layer failed (unrecoverable; drop the connection).
    Frame(FrameError),
    /// A complete frame's payload failed LLRP decoding (recoverable; the
    /// stream is still frame-synchronized).
    Llrp(LlrpError),
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::Frame(e) => write!(f, "framing: {e}"),
            ProtocolError::Llrp(e) => write!(f, "llrp: {e}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

impl From<FrameError> for ProtocolError {
    fn from(e: FrameError) -> Self {
        ProtocolError::Frame(e)
    }
}

impl From<LlrpError> for ProtocolError {
    fn from(e: LlrpError) -> Self {
        ProtocolError::Llrp(e)
    }
}

/// Wrap `payload` in a length-prefixed frame.
///
/// # Errors
///
/// [`FrameError::Oversized`] when the payload exceeds `max` (so a sender
/// can never emit a frame its peer is configured to reject).
pub fn encode_frame(payload: &[u8], max: usize) -> Result<Vec<u8>, FrameError> {
    let max = max.min(u32::MAX as usize);
    if payload.len() > max {
        return Err(FrameError::Oversized {
            len: payload.len(),
            max,
        });
    }
    let mut out = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    out.extend_from_slice(payload);
    Ok(out)
}

/// Encode an [`InventoryLog`] as one framed RO_ACCESS_REPORT message —
/// the bytes a simulated reader writes to its serve connection.
///
/// # Errors
///
/// [`FrameError::Oversized`] when the encoded message exceeds `max`.
pub fn encode_report_frame(
    log: &InventoryLog,
    message_id: u32,
    max: usize,
) -> Result<Vec<u8>, FrameError> {
    let msg = llrp::encode_report(log, message_id);
    encode_frame(&msg[..], max)
}

/// Incremental frame decoder: push bytes, pull frames.
///
/// Once a framing error is returned the decoder is poisoned and repeats
/// that error forever — after a bad length prefix there is no trustworthy
/// frame boundary left, and pretending otherwise would silently desync
/// every later message.
#[derive(Debug)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Consumed prefix of `buf`; compacted opportunistically.
    read: usize,
    max_len: usize,
    poisoned: Option<FrameError>,
}

impl Default for FrameDecoder {
    fn default() -> Self {
        FrameDecoder::new()
    }
}

impl FrameDecoder {
    /// A decoder with the [`DEFAULT_MAX_FRAME_LEN`] payload cap.
    pub fn new() -> Self {
        FrameDecoder::with_max_len(DEFAULT_MAX_FRAME_LEN)
    }

    /// A decoder capping payloads at `max_len` bytes (clamped to `u32`
    /// range, since the wire length field is 32 bits).
    pub fn with_max_len(max_len: usize) -> Self {
        FrameDecoder {
            buf: Vec::new(),
            read: 0,
            max_len: max_len.min(u32::MAX as usize),
            poisoned: None,
        }
    }

    /// Feed bytes received from the transport.
    pub fn push(&mut self, bytes: &[u8]) {
        // Compact before growing: drop the consumed prefix once it
        // dominates the buffer, keeping memory proportional to one frame.
        if self.read > 0 && self.read >= self.buf.len() / 2 {
            self.buf.drain(..self.read);
            self.read = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed as complete frames.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.read
    }

    /// Pull the next complete frame payload, if one is buffered.
    ///
    /// `Ok(None)` means "need more bytes", never an error: a partial
    /// frame is the normal steady state of a live stream.
    ///
    /// # Errors
    ///
    /// [`FrameError::Oversized`] on a hostile length prefix; the decoder
    /// is then poisoned (see the type-level docs).
    pub fn try_frame(&mut self) -> Result<Option<Bytes>, FrameError> {
        if let Some(e) = self.poisoned {
            return Err(e);
        }
        if self.pending() < FRAME_HEADER_LEN {
            return Ok(None);
        }
        let header: [u8; FRAME_HEADER_LEN] = [
            self.buf[self.read],
            self.buf[self.read + 1],
            self.buf[self.read + 2],
            self.buf[self.read + 3],
        ];
        let len = u32::from_be_bytes(header) as usize;
        if len > self.max_len {
            let e = FrameError::Oversized {
                len,
                max: self.max_len,
            };
            self.poisoned = Some(e);
            return Err(e);
        }
        if self.pending() < FRAME_HEADER_LEN + len {
            return Ok(None);
        }
        let start = self.read + FRAME_HEADER_LEN;
        let payload = Bytes::from(&self.buf[start..start + len]);
        self.read = start + len;
        Ok(Some(payload))
    }

    /// Pull and LLRP-decode the next complete report frame.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::Frame`] poisons the stream;
    /// [`ProtocolError::Llrp`] consumes only the offending frame, leaving
    /// the stream synchronized for the next one.
    pub fn try_report(&mut self) -> Result<Option<(InventoryLog, u32)>, ProtocolError> {
        match self.try_frame()? {
            None => Ok(None),
            Some(payload) => Ok(Some(llrp::decode_report(payload)?)),
        }
    }

    /// Declare end-of-stream: leftover bytes mean the peer died mid-frame.
    ///
    /// # Errors
    ///
    /// [`FrameError::Truncated`] when a partial frame was buffered, or the
    /// poisoning error if one already occurred.
    pub fn finish(&self) -> Result<(), FrameError> {
        if let Some(e) = self.poisoned {
            return Err(e);
        }
        match self.pending() {
            0 => Ok(()),
            buffered => Err(FrameError::Truncated { buffered }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::TagReport;

    fn sample_log(n: usize) -> InventoryLog {
        (0..n)
            .map(|i| TagReport {
                epc: 0xE200_0000_0000_0000_u128 + i as u128,
                timestamp_us: 100 * i as u64,
                phase: (i as f64 * 0.3) % std::f64::consts::TAU,
                rssi_dbm: -60.0,
                channel_index: (i % 16) as u8,
                antenna_id: 1,
            })
            .collect()
    }

    #[test]
    fn roundtrip_across_arbitrary_splits() {
        let frame = encode_report_frame(&sample_log(7), 42, DEFAULT_MAX_FRAME_LEN).unwrap();
        // Deliver the same frame byte-by-byte, in halves, and whole.
        for chunk in [1, frame.len() / 2, frame.len()] {
            let mut dec = FrameDecoder::new();
            let mut got = Vec::new();
            for piece in frame.chunks(chunk) {
                dec.push(piece);
                while let Some(report) = dec.try_report().unwrap() {
                    got.push(report);
                }
            }
            assert_eq!(got.len(), 1, "chunk size {chunk}");
            assert_eq!(got[0].1, 42);
            assert_eq!(got[0].0.len(), 7);
            assert!(dec.finish().is_ok());
        }
    }

    #[test]
    fn back_to_back_frames_stay_synchronized() {
        let mut wire = Vec::new();
        for id in 0..5u32 {
            wire.extend_from_slice(
                &encode_report_frame(&sample_log(id as usize + 1), id, DEFAULT_MAX_FRAME_LEN)
                    .unwrap(),
            );
        }
        let mut dec = FrameDecoder::new();
        dec.push(&wire);
        for id in 0..5u32 {
            let (log, got_id) = dec.try_report().unwrap().expect("frame buffered");
            assert_eq!(got_id, id);
            assert_eq!(log.len(), id as usize + 1);
        }
        assert!(dec.try_report().unwrap().is_none());
    }

    #[test]
    fn oversized_poisons_the_decoder() {
        let mut dec = FrameDecoder::with_max_len(64);
        dec.push(&1000u32.to_be_bytes());
        let e = dec.try_frame().unwrap_err();
        assert_eq!(e, FrameError::Oversized { len: 1000, max: 64 });
        // Poisoned: more bytes cannot resync it.
        dec.push(&[0u8; 32]);
        assert_eq!(dec.try_frame().unwrap_err(), e);
        assert_eq!(dec.finish().unwrap_err(), e);
        assert!(!e.to_string().is_empty());
    }

    #[test]
    fn encoder_refuses_what_the_peer_would_drop() {
        let log = sample_log(64);
        let err = encode_report_frame(&log, 0, 16).unwrap_err();
        assert!(matches!(err, FrameError::Oversized { .. }));
    }

    #[test]
    fn llrp_garbage_consumes_one_frame_only() {
        let mut wire = encode_frame(&[0xFF; 12], DEFAULT_MAX_FRAME_LEN).unwrap();
        wire.extend_from_slice(&encode_report_frame(&sample_log(3), 9, 1 << 16).unwrap());
        let mut dec = FrameDecoder::new();
        dec.push(&wire);
        assert!(matches!(dec.try_report(), Err(ProtocolError::Llrp(_))));
        // The bad payload cost exactly one frame; the next decodes fine.
        let (log, id) = dec.try_report().unwrap().expect("second frame intact");
        assert_eq!((log.len(), id), (3, 9));
        assert!(dec.finish().is_ok());
    }

    #[test]
    fn eof_mid_frame_is_truncated() {
        let frame = encode_report_frame(&sample_log(2), 1, DEFAULT_MAX_FRAME_LEN).unwrap();
        let mut dec = FrameDecoder::new();
        dec.push(&frame[..frame.len() - 1]);
        assert!(dec.try_report().unwrap().is_none());
        assert!(matches!(
            dec.finish(),
            Err(FrameError::Truncated { buffered }) if buffered == frame.len() - 1
        ));
    }

    #[test]
    fn compaction_keeps_memory_bounded() {
        let frame = encode_report_frame(&sample_log(1), 0, DEFAULT_MAX_FRAME_LEN).unwrap();
        let mut dec = FrameDecoder::new();
        for _ in 0..1000 {
            dec.push(&frame);
            assert!(dec.try_frame().unwrap().is_some());
        }
        assert_eq!(dec.pending(), 0);
        // The consumed prefix must not grow without bound.
        assert!(dec.buf.len() < 4 * frame.len());
    }
}
