//! Gen2 inventory-round mechanics.
//!
//! One round: the reader issues `Query(Q)`, each participating tag draws a
//! slot counter uniformly from `[0, 2^Q)`, and the reader steps through the
//! slots with `QueryRep`. A slot with exactly one tag singulates it
//! (RN16 → ACK → EPC); zero tags is an empty slot; two or more collide.
//!
//! The functions here are deterministic given the RNG, which keeps the
//! higher-level inventory driver testable.

use crate::qalgo::SlotOutcome;
use crate::timing::LinkProfile;
use rand::Rng;

/// The outcome of a single slot, with the singulated participant (an index
/// into the round's participant list) on success.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotResult {
    /// What happened in the slot.
    pub outcome: SlotOutcome,
    /// Index of the singulated participant (into the round's participant
    /// slice) for successful slots.
    pub singulated: Option<usize>,
}

/// The outcome of a full inventory round.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundResult {
    /// Per-slot results, in slot order. Each successful slot carries the
    /// participant index it singulated.
    pub slots: Vec<SlotResult>,
    /// Total air time of the round including the opening Query, µs.
    pub duration_us: f64,
}

impl RoundResult {
    /// Indices of participants singulated this round, in slot order.
    pub fn singulated(&self) -> impl Iterator<Item = usize> + '_ {
        self.slots.iter().filter_map(|s| s.singulated)
    }

    /// Count of each outcome kind: `(empty, success, collision)`.
    pub fn tally(&self) -> (usize, usize, usize) {
        let mut t = (0, 0, 0);
        for s in &self.slots {
            match s.outcome {
                SlotOutcome::Empty => t.0 += 1,
                SlotOutcome::Success => t.1 += 1,
                SlotOutcome::Collision => t.2 += 1,
            }
        }
        t
    }
}

/// Simulate one round with `2^q` slots and `participants` energized tags.
///
/// Returns per-slot results plus the air time. Tags that collide stay
/// un-inventoried this round (Gen2 session flags are not modeled: the paper's
/// deployment re-reads the same tag continuously in session S0, where the
/// inventoried flag resets immediately, so every round re-admits every tag).
pub fn simulate_round<R: Rng + ?Sized>(
    q: u8,
    participants: usize,
    profile: &LinkProfile,
    rng: &mut R,
) -> RoundResult {
    let n_slots = 1usize << q.min(15);
    // Each participant draws a slot.
    let mut slot_of: Vec<usize> = Vec::with_capacity(participants);
    for _ in 0..participants {
        slot_of.push(rng.gen_range(0..n_slots));
    }
    let mut duration_us = profile.query_us();
    let mut slots = Vec::with_capacity(n_slots);
    for slot in 0..n_slots {
        let in_slot: Vec<usize> = slot_of
            .iter()
            .enumerate()
            .filter_map(|(i, &s)| (s == slot).then_some(i))
            .collect();
        let result = match in_slot.len() {
            0 => {
                duration_us += profile.empty_slot_us();
                SlotResult {
                    outcome: SlotOutcome::Empty,
                    singulated: None,
                }
            }
            1 => {
                duration_us += profile.successful_slot_us();
                SlotResult {
                    outcome: SlotOutcome::Success,
                    singulated: Some(in_slot[0]),
                }
            }
            _ => {
                duration_us += profile.collision_slot_us();
                SlotResult {
                    outcome: SlotOutcome::Collision,
                    singulated: None,
                }
            }
        };
        slots.push(result);
    }
    RoundResult { slots, duration_us }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn empty_field_round() {
        let mut rng = StdRng::seed_from_u64(1);
        let r = simulate_round(2, 0, &LinkProfile::default(), &mut rng);
        assert_eq!(r.slots.len(), 4);
        assert_eq!(r.tally(), (4, 0, 0));
        assert_eq!(r.singulated().count(), 0);
    }

    #[test]
    fn single_tag_always_singulated() {
        let mut rng = StdRng::seed_from_u64(2);
        for q in 0..4 {
            let r = simulate_round(q, 1, &LinkProfile::default(), &mut rng);
            assert_eq!(r.tally().1, 1, "q={q}");
            assert_eq!(r.singulated().next(), Some(0));
        }
    }

    #[test]
    fn q0_two_tags_always_collide() {
        let mut rng = StdRng::seed_from_u64(3);
        let r = simulate_round(0, 2, &LinkProfile::default(), &mut rng);
        assert_eq!(r.tally(), (0, 0, 1));
    }

    #[test]
    fn conservation_of_tags() {
        // successes + tags-in-collisions == participants; successes are
        // distinct indices.
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..50 {
            let n = 6;
            let r = simulate_round(3, n, &LinkProfile::default(), &mut rng);
            let mut seen: Vec<usize> = r.singulated().collect();
            let unique = {
                seen.sort_unstable();
                seen.dedup();
                seen.len()
            };
            assert_eq!(unique, r.tally().1);
            assert!(unique <= n);
        }
    }

    #[test]
    fn duration_accumulates() {
        let mut rng = StdRng::seed_from_u64(5);
        let p = LinkProfile::default();
        let r = simulate_round(1, 0, &p, &mut rng);
        let expect = p.query_us() + 2.0 * p.empty_slot_us();
        assert!((r.duration_us - expect).abs() < 1e-9);
    }

    #[test]
    fn large_q_mostly_empty() {
        let mut rng = StdRng::seed_from_u64(6);
        let r = simulate_round(8, 3, &LinkProfile::default(), &mut rng);
        assert_eq!(r.slots.len(), 256);
        let (e, s, c) = r.tally();
        assert_eq!(e + s + c, 256);
        assert!(e >= 250);
    }
}
