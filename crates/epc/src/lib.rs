//! EPC Gen2 / LLRP inventory simulator.
//!
//! The substitute for the paper's Impinj Speedway Revolution reader: runs
//! Q-adapted slotted-ALOHA inventory rounds over the RF channel simulator
//! and emits timestamped per-read phase/RSSI reports, optionally serialized
//! through an LLRP wire-format subset with Impinj-style phase extensions.
//!
//! The protocol layer matters to Tagspin for two reasons:
//!
//! 1. **Timing** — snapshots arrive at link-protocol cadence, not on a
//!    uniform grid; the SAR formulation must handle arbitrary `tᵢ`.
//! 2. **Density** — read success depends on the tag's orientation-dependent
//!    harvested power, producing the paper's observation that sampling is
//!    dense near phase peaks/valleys and sparse in between.
//!
//! # Example
//!
//! ```
//! use rand::SeedableRng;
//! use tagspin_epc::inventory::{run_inventory, ReaderConfig, StaticTag, Transponder};
//! use tagspin_geom::{Pose, Vec3};
//! use tagspin_rf::channel::Environment;
//! use tagspin_rf::tags::{TagInstance, TagModel};
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let tag = StaticTag {
//!     tag: TagInstance::ideal(TagModel::DEFAULT, 0xE2001),
//!     position: Vec3::ZERO,
//!     plane_azimuth: std::f64::consts::FRAC_PI_2,
//! };
//! let reader = ReaderConfig::at(Pose::facing_toward(Vec3::new(2.0, 0.0, 0.0), Vec3::ZERO));
//! let log = run_inventory(&Environment::paper_default(), &reader, &[&tag], 1.0, &mut rng);
//! assert!(!log.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coding;
pub mod crc;
pub mod frame;
pub mod gen2;
pub mod inventory;
pub mod llrp;
pub mod qalgo;
pub mod report;
pub mod select;
pub mod timing;

pub use frame::{FrameDecoder, FrameError, ProtocolError};
pub use inventory::{run_inventory, HopSchedule, ReaderConfig, StaticTag, Transponder};
pub use qalgo::{QAlgorithm, SlotOutcome};
pub use report::{InventoryLog, ReportDefect, TagReport};
pub use select::{SelectCommand, Selection};
pub use timing::LinkProfile;
