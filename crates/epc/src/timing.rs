//! EPC Gen2 link timing.
//!
//! The reader's interrogation rate — and therefore the timestamps `tᵢ` of the
//! paper's signal snapshots — is set by the Gen2 air protocol: reader
//! commands at the Tari-derived forward rate, tag replies at the backscatter
//! link frequency (BLF) divided by the Miller factor, plus the T1–T3
//! turnaround gaps. This module computes slot and exchange durations for a
//! reader profile, reproducing realistic non-uniform read timing.

use serde::{Deserialize, Serialize};

/// Reader modulation / link profile (an Impinj "mode" analogue).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkProfile {
    /// Reader data-0 symbol duration (Tari), µs. Gen2 allows 6.25–25 µs.
    pub tari_us: f64,
    /// Backscatter link frequency, Hz.
    pub blf_hz: f64,
    /// Miller subcarrier factor: 1 (FM0), 2, 4 or 8.
    pub miller: u8,
}

impl LinkProfile {
    /// Impinj "Mode 2"-like profile: dense-reader Miller-4, 250 kHz BLF —
    /// the default autoset mode in office deployments.
    pub fn dense_reader_m4() -> Self {
        LinkProfile {
            tari_us: 20.0,
            blf_hz: 250e3,
            miller: 4,
        }
    }

    /// Fast FM0 profile (max throughput, for stress tests).
    pub fn fast_fm0() -> Self {
        LinkProfile {
            tari_us: 6.25,
            blf_hz: 640e3,
            miller: 1,
        }
    }

    /// Validate field ranges per the Gen2 spec.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint.
    pub fn validate(&self) -> Result<(), LinkProfileError> {
        if !(6.25..=25.0).contains(&self.tari_us) {
            return Err(LinkProfileError::TariOutOfRange(self.tari_us));
        }
        if !(40e3..=640e3).contains(&self.blf_hz) {
            return Err(LinkProfileError::BlfOutOfRange(self.blf_hz));
        }
        if ![1, 2, 4, 8].contains(&self.miller) {
            return Err(LinkProfileError::BadMiller(self.miller));
        }
        Ok(())
    }

    /// Reader→tag bit duration, µs (average of data-0 = Tari and
    /// data-1 ≈ 1.75·Tari under PIE).
    pub fn forward_bit_us(&self) -> f64 {
        1.375 * self.tari_us
    }

    /// Tag→reader bit duration, µs.
    pub fn reverse_bit_us(&self) -> f64 {
        self.miller as f64 / self.blf_hz * 1e6
    }

    /// T1: tag reply latency after a reader command, µs (≈ 10/BLF nominal).
    pub fn t1_us(&self) -> f64 {
        10.0 / self.blf_hz * 1e6
    }

    /// T2: reader latency after a tag reply, µs (≈ 10/BLF, spec 3–20/BLF).
    pub fn t2_us(&self) -> f64 {
        10.0 / self.blf_hz * 1e6
    }

    /// Duration of a full successful singulation: Query/QueryRep → RN16 →
    /// ACK → {PC, EPC-96, CRC}, µs.
    pub fn successful_slot_us(&self) -> f64 {
        // QueryRep: 4 bits; RN16: preamble (~18 sym) + 16 bits;
        // ACK: 18 bits; EPC reply: preamble + PC(16) + EPC(96) + CRC(16).
        let queryrep = 4.0 * self.forward_bit_us();
        let rn16 = (18.0 + 16.0) * self.reverse_bit_us();
        let ack = 18.0 * self.forward_bit_us();
        let epc = (18.0 + 128.0) * self.reverse_bit_us();
        queryrep + self.t1_us() + rn16 + self.t2_us() + ack + self.t1_us() + epc + self.t2_us()
    }

    /// Duration of a collided slot (RN16s overlap, reader gives up), µs.
    pub fn collision_slot_us(&self) -> f64 {
        let queryrep = 4.0 * self.forward_bit_us();
        let rn16 = (18.0 + 16.0) * self.reverse_bit_us();
        queryrep + self.t1_us() + rn16 + self.t2_us()
    }

    /// Duration of an empty slot (no reply within T1 + T3), µs.
    pub fn empty_slot_us(&self) -> f64 {
        let queryrep = 4.0 * self.forward_bit_us();
        // T3 ≈ a few symbol times of extra listening.
        queryrep + self.t1_us() + 30.0
    }

    /// Duration of the full Query command opening a round, µs (22 bits).
    pub fn query_us(&self) -> f64 {
        22.0 * self.forward_bit_us()
    }
}

impl Default for LinkProfile {
    fn default() -> Self {
        LinkProfile::dense_reader_m4()
    }
}

/// A [`LinkProfile`] outside the Gen2 spec, reported by
/// [`LinkProfile::validate`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LinkProfileError {
    /// Tari outside 6.25–25 µs.
    TariOutOfRange(f64),
    /// Backscatter link frequency outside 40–640 kHz.
    BlfOutOfRange(f64),
    /// Miller factor not one of {1, 2, 4, 8}.
    BadMiller(u8),
}

impl std::fmt::Display for LinkProfileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinkProfileError::TariOutOfRange(t) => {
                write!(f, "tari {t} \u{b5}s outside Gen2 range 6.25\u{2013}25")
            }
            LinkProfileError::BlfOutOfRange(b) => {
                write!(f, "BLF {b} Hz outside Gen2 range 40k\u{2013}640k")
            }
            LinkProfileError::BadMiller(m) => {
                write!(f, "miller factor {m} not in {{1,2,4,8}}")
            }
        }
    }
}

impl std::error::Error for LinkProfileError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_profile_is_valid() {
        assert!(LinkProfile::default().validate().is_ok());
        assert!(LinkProfile::fast_fm0().validate().is_ok());
    }

    #[test]
    fn validation_catches_bad_fields() {
        let p = LinkProfile {
            tari_us: 5.0,
            ..LinkProfile::default()
        };
        assert!(p.validate().is_err());
        let p = LinkProfile {
            blf_hz: 1e6,
            ..LinkProfile::default()
        };
        assert!(p.validate().is_err());
        let p = LinkProfile {
            miller: 3,
            ..LinkProfile::default()
        };
        assert!(p.validate().is_err());
    }

    #[test]
    fn slot_duration_ordering() {
        let p = LinkProfile::default();
        assert!(p.empty_slot_us() < p.collision_slot_us());
        assert!(p.collision_slot_us() < p.successful_slot_us());
    }

    #[test]
    fn read_rate_in_realistic_band() {
        // A single tag alone in the field, Q=0: one successful slot per
        // round. Dense-reader M4 should deliver ~50–300 reads/s.
        let p = LinkProfile::dense_reader_m4();
        let per_read_us = p.query_us() + p.successful_slot_us();
        let rate = 1e6 / per_read_us;
        assert!(rate > 50.0 && rate < 300.0, "rate = {rate}/s");
    }

    #[test]
    fn fm0_is_faster_than_m4() {
        let m4 = LinkProfile::dense_reader_m4().successful_slot_us();
        let fm0 = LinkProfile::fast_fm0().successful_slot_us();
        assert!(fm0 < m4);
    }

    #[test]
    fn reverse_bit_scales_with_miller() {
        let mut p = LinkProfile::default();
        let b4 = p.reverse_bit_us();
        p.miller = 8;
        assert!((p.reverse_bit_us() - 2.0 * b4).abs() < 1e-12);
    }
}
