//! Tag read reports — the data the localization pipeline consumes.
//!
//! The paper's client configures the Impinj reader "to immediately report
//! its readings whenever tag is detected" and uses the *reader's* timestamp
//! (not the host's) "to erase the influence of network latency". A
//! [`TagReport`] carries exactly that per-read tuple; an [`InventoryLog`] is
//! the collected stream for one observation window.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Why a [`TagReport`] failed [`TagReport::validate`].
///
/// Real COTS captures contain reports that are *structurally* broken before
/// any localization math sees them: NaN phases from firmware glitches,
/// RSSI fields holding sentinel garbage, all-zero EPCs from CRC-passing
/// ghost reads. These defects are detectable from the report alone — no
/// registry or stream context needed — which is why the screen lives at the
/// EPC layer rather than in the session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReportDefect {
    /// The phase is NaN or infinite.
    NonFinitePhase,
    /// The phase is finite but outside the reader contract `[0, 2π)`.
    PhaseOutOfRange,
    /// The RSSI is NaN or infinite.
    NonFiniteRssi,
    /// The RSSI is finite but outside any plausible backscatter power
    /// (`[-120, +20]` dBm).
    RssiOutOfRange,
    /// The EPC is all-zero — a ghost read (bit errors that still passed
    /// CRC produce these on COTS readers).
    NullEpc,
}

impl fmt::Display for ReportDefect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReportDefect::NonFinitePhase => write!(f, "phase is NaN or infinite"),
            ReportDefect::PhaseOutOfRange => write!(f, "phase outside [0, 2π)"),
            ReportDefect::NonFiniteRssi => write!(f, "rssi is NaN or infinite"),
            ReportDefect::RssiOutOfRange => write!(f, "rssi outside [-120, +20] dBm"),
            ReportDefect::NullEpc => write!(f, "all-zero EPC (ghost read)"),
        }
    }
}

impl std::error::Error for ReportDefect {}

/// One tag read, as reported over LLRP by the reader.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TagReport {
    /// 96-bit EPC of the tag.
    pub epc: u128,
    /// Reader-clock timestamp, microseconds since reader epoch.
    pub timestamp_us: u64,
    /// Reported backscatter phase, radians in `[0, 2π)`.
    pub phase: f64,
    /// Peak RSSI, dBm.
    pub rssi_dbm: f64,
    /// Hop-channel index at the time of the read.
    pub channel_index: u8,
    /// Reader antenna port (1-based, Speedway has 4).
    pub antenna_id: u8,
}

impl TagReport {
    /// Timestamp in seconds (convenience for the phase model's `t`).
    #[inline]
    pub fn time_s(&self) -> f64 {
        self.timestamp_us as f64 * 1e-6
    }

    /// Screen the report's *values* against the reader contract: phase in
    /// `[0, 2π)`, RSSI finite and within `[-120, +20]` dBm, non-zero EPC.
    ///
    /// Stream-level properties (timestamp monotonicity, duplicates,
    /// registry membership) are out of scope — those need context this
    /// report does not carry and are enforced by the ingesting session.
    ///
    /// # Errors
    ///
    /// The first [`ReportDefect`] found, in field order.
    pub fn validate(&self) -> Result<(), ReportDefect> {
        if self.epc == 0 {
            return Err(ReportDefect::NullEpc);
        }
        if !self.phase.is_finite() {
            return Err(ReportDefect::NonFinitePhase);
        }
        if !(0.0..std::f64::consts::TAU).contains(&self.phase) {
            return Err(ReportDefect::PhaseOutOfRange);
        }
        if !self.rssi_dbm.is_finite() {
            return Err(ReportDefect::NonFiniteRssi);
        }
        if !(-120.0..=20.0).contains(&self.rssi_dbm) {
            return Err(ReportDefect::RssiOutOfRange);
        }
        Ok(())
    }
}

impl fmt::Display for TagReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "epc={:024x} t={}µs φ={:.4} rssi={:.1}dBm ch={} ant={}",
            self.epc,
            self.timestamp_us,
            self.phase,
            self.rssi_dbm,
            self.channel_index,
            self.antenna_id
        )
    }
}

/// A time-ordered stream of tag reads from one observation window.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct InventoryLog {
    reports: Vec<TagReport>,
}

impl InventoryLog {
    /// An empty log.
    pub fn new() -> Self {
        InventoryLog::default()
    }

    /// Append a report.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) when timestamps go backwards — reader clocks
    /// are monotonic.
    pub fn push(&mut self, report: TagReport) {
        debug_assert!(
            self.reports
                .last()
                .is_none_or(|last| report.timestamp_us >= last.timestamp_us),
            "reports must be appended in timestamp order"
        );
        self.reports.push(report);
    }

    /// All reports, time-ordered.
    pub fn reports(&self) -> &[TagReport] {
        &self.reports
    }

    /// Number of reports.
    pub fn len(&self) -> usize {
        self.reports.len()
    }

    /// True when no reads were collected.
    pub fn is_empty(&self) -> bool {
        self.reports.is_empty()
    }

    /// Iterate reports for one EPC only.
    pub fn for_epc(&self, epc: u128) -> impl Iterator<Item = &TagReport> + '_ {
        self.reports.iter().filter(move |r| r.epc == epc)
    }

    /// A sub-log containing only reads from one reader antenna port —
    /// used when several target antennas are calibrated simultaneously.
    pub fn for_antenna(&self, antenna_id: u8) -> InventoryLog {
        InventoryLog {
            reports: self
                .reports
                .iter()
                .filter(|r| r.antenna_id == antenna_id)
                .copied()
                .collect(),
        }
    }

    /// The distinct antenna ids seen, in first-seen order.
    pub fn antennas(&self) -> Vec<u8> {
        let mut seen = Vec::new();
        for r in &self.reports {
            if !seen.contains(&r.antenna_id) {
                seen.push(r.antenna_id);
            }
        }
        seen
    }

    /// The distinct EPCs seen, in first-seen order.
    pub fn epcs(&self) -> Vec<u128> {
        let mut seen = Vec::new();
        for r in &self.reports {
            if !seen.contains(&r.epc) {
                seen.push(r.epc);
            }
        }
        seen
    }

    /// Observation span in seconds (0 for fewer than 2 reports).
    pub fn span_s(&self) -> f64 {
        match (self.reports.first(), self.reports.last()) {
            (Some(a), Some(b)) => (b.timestamp_us - a.timestamp_us) as f64 * 1e-6,
            _ => 0.0,
        }
    }

    /// Mean read rate over the span, reads/s (0 for degenerate logs).
    pub fn read_rate(&self) -> f64 {
        let span = self.span_s();
        if span <= 0.0 {
            0.0
        } else {
            self.reports.len() as f64 / span
        }
    }

    /// Replay the log as the report stream the reader originally emitted —
    /// the bridge between a recorded log and a streaming consumer that
    /// ingests report-by-report (e.g. a localization session).
    pub fn stream(&self) -> impl Iterator<Item = &TagReport> + '_ {
        self.reports.iter()
    }
}

impl<'a> IntoIterator for &'a InventoryLog {
    type Item = &'a TagReport;
    type IntoIter = std::slice::Iter<'a, TagReport>;
    fn into_iter(self) -> Self::IntoIter {
        self.reports.iter()
    }
}

impl IntoIterator for InventoryLog {
    type Item = TagReport;
    type IntoIter = std::vec::IntoIter<TagReport>;
    fn into_iter(self) -> Self::IntoIter {
        self.reports.into_iter()
    }
}

impl FromIterator<TagReport> for InventoryLog {
    fn from_iter<I: IntoIterator<Item = TagReport>>(iter: I) -> Self {
        let mut log = InventoryLog::new();
        for r in iter {
            log.push(r);
        }
        log
    }
}

impl Extend<TagReport> for InventoryLog {
    fn extend<I: IntoIterator<Item = TagReport>>(&mut self, iter: I) {
        for r in iter {
            self.push(r);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(epc: u128, t: u64) -> TagReport {
        TagReport {
            epc,
            timestamp_us: t,
            phase: 1.0,
            rssi_dbm: -60.0,
            channel_index: 3,
            antenna_id: 1,
        }
    }

    #[test]
    fn push_and_query() {
        let mut log = InventoryLog::new();
        assert!(log.is_empty());
        log.push(report(1, 0));
        log.push(report(2, 1_000_000));
        log.push(report(1, 2_000_000));
        assert_eq!(log.len(), 3);
        assert_eq!(log.for_epc(1).count(), 2);
        assert_eq!(log.epcs(), vec![1, 2]);
        assert_eq!(log.span_s(), 2.0);
        assert_eq!(log.read_rate(), 1.5);
    }

    #[test]
    fn collect_from_iterator() {
        let log: InventoryLog = (0..5).map(|i| report(7, i * 10)).collect();
        assert_eq!(log.len(), 5);
        let mut log2 = InventoryLog::new();
        log2.extend((0..3).map(|i| report(9, i)));
        assert_eq!(log2.len(), 3);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "timestamp order")]
    fn out_of_order_panics_in_debug() {
        let mut log = InventoryLog::new();
        log.push(report(1, 100));
        log.push(report(1, 50));
    }

    #[test]
    fn degenerate_rates() {
        let log = InventoryLog::new();
        assert_eq!(log.span_s(), 0.0);
        assert_eq!(log.read_rate(), 0.0);
        let log: InventoryLog = [report(1, 5)].into_iter().collect();
        assert_eq!(log.read_rate(), 0.0);
    }

    #[test]
    fn stream_replays_in_log_order() {
        let log: InventoryLog = (0..5).map(|i| report(7, i * 10)).collect();
        let times: Vec<u64> = log.stream().map(|r| r.timestamp_us).collect();
        assert_eq!(times, vec![0, 10, 20, 30, 40]);
        // Borrowing and consuming iteration agree with stream().
        assert_eq!((&log).into_iter().count(), 5);
        assert_eq!(log.into_iter().count(), 5);
    }

    #[test]
    fn validate_accepts_clean_reports() {
        assert_eq!(report(1, 0).validate(), Ok(()));
    }

    #[test]
    fn validate_screens_each_field() {
        let clean = report(1, 0);
        for (broken, defect) in [
            (TagReport { epc: 0, ..clean }, ReportDefect::NullEpc),
            (
                TagReport {
                    phase: f64::NAN,
                    ..clean
                },
                ReportDefect::NonFinitePhase,
            ),
            (
                TagReport {
                    phase: f64::INFINITY,
                    ..clean
                },
                ReportDefect::NonFinitePhase,
            ),
            (
                TagReport {
                    phase: -0.1,
                    ..clean
                },
                ReportDefect::PhaseOutOfRange,
            ),
            (
                TagReport {
                    phase: std::f64::consts::TAU,
                    ..clean
                },
                ReportDefect::PhaseOutOfRange,
            ),
            (
                TagReport {
                    rssi_dbm: f64::NAN,
                    ..clean
                },
                ReportDefect::NonFiniteRssi,
            ),
            (
                TagReport {
                    rssi_dbm: 500.0,
                    ..clean
                },
                ReportDefect::RssiOutOfRange,
            ),
        ] {
            assert_eq!(broken.validate(), Err(defect), "report: {broken:?}");
            assert!(!defect.to_string().is_empty());
        }
    }

    #[test]
    fn time_conversion_and_display() {
        let r = report(1, 1_500_000);
        assert_eq!(r.time_s(), 1.5);
        assert!(r.to_string().contains("rssi"));
    }
}
