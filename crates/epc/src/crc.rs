//! Gen2 CRC-5 and CRC-16.
//!
//! The air protocol protects Query commands with CRC-5 and tag replies
//! (PC + EPC) with CRC-16/CCITT (poly `0x1021`, init `0xFFFF`, output
//! complemented). These are the checksums a real reader uses to accept the
//! backscattered EPC that ends up in a [`TagReport`](crate::TagReport).

/// CRC-16/CCITT as specified by Gen2 (poly 0x1021, init 0xFFFF, final XOR
/// 0xFFFF, MSB-first).
///
/// ```
/// // The classic check value for "123456789" under CRC-16/GENIBUS
/// // (which is the Gen2 parameterization).
/// assert_eq!(tagspin_epc::crc::crc16(b"123456789"), 0xD64E);
/// ```
pub fn crc16(data: &[u8]) -> u16 {
    let mut crc: u16 = 0xFFFF;
    for &byte in data {
        crc ^= (byte as u16) << 8;
        for _ in 0..8 {
            crc = if crc & 0x8000 != 0 {
                (crc << 1) ^ 0x1021
            } else {
                crc << 1
            };
        }
    }
    !crc
}

/// Verify a buffer whose last two bytes are its big-endian CRC-16.
pub fn check16(data_with_crc: &[u8]) -> bool {
    if data_with_crc.len() < 2 {
        return false;
    }
    let (payload, tail) = data_with_crc.split_at(data_with_crc.len() - 2);
    crc16(payload) == u16::from_be_bytes([tail[0], tail[1]])
}

/// Append the big-endian CRC-16 to a payload.
pub fn append16(mut payload: Vec<u8>) -> Vec<u8> {
    let crc = crc16(&payload);
    payload.extend_from_slice(&crc.to_be_bytes());
    payload
}

/// Gen2 CRC-5 over a bit slice (poly x⁵+x³+1 → 0x09, init 0b01001),
/// MSB-first, as used on Query commands. Returns the 5-bit remainder.
///
/// # Panics
///
/// Panics when any input element is not 0 or 1.
pub fn crc5(bits: &[u8]) -> u8 {
    let mut crc: u8 = 0b01001;
    for &bit in bits {
        assert!(bit <= 1, "bits must be 0 or 1");
        let msb = (crc >> 4) & 1;
        crc = ((crc << 1) | bit) & 0x1F;
        if msb == 1 {
            crc ^= 0x09;
        }
    }
    crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc16_reference_vectors() {
        // CRC-16/GENIBUS check value.
        assert_eq!(crc16(b"123456789"), 0xD64E);
        // Empty payload: !0xFFFF = 0.
        assert_eq!(crc16(b""), 0x0000);
    }

    #[test]
    fn crc16_detects_single_bit_flips() {
        let epc: Vec<u8> = (0..12).map(|i| i * 17).collect();
        let framed = append16(epc.clone());
        assert!(check16(&framed));
        for byte in 0..framed.len() {
            for bit in 0..8 {
                let mut corrupted = framed.clone();
                corrupted[byte] ^= 1 << bit;
                assert!(!check16(&corrupted), "missed flip at {byte}:{bit}");
            }
        }
    }

    #[test]
    fn check16_rejects_short_input() {
        assert!(!check16(&[]));
        assert!(!check16(&[0xAB]));
    }

    #[test]
    fn crc5_is_5_bits_and_input_sensitive() {
        let q4 = [1u8, 0, 0, 0, 0, 1, 1, 0, 1, 0, 0, 0, 1, 0, 0, 1, 0];
        let a = crc5(&q4);
        assert!(a < 32);
        let mut flipped = q4;
        flipped[3] ^= 1;
        assert_ne!(a, crc5(&flipped));
    }

    #[test]
    #[should_panic(expected = "bits must be")]
    fn crc5_rejects_non_bits() {
        let _ = crc5(&[0, 1, 2]);
    }
}
