//! Gen2 Select: population filtering before inventory.
//!
//! A reader can broadcast `Select` commands that assert or deassert tags'
//! selected (SL) flag based on a bit mask compared against a memory bank.
//! Tagspin's deployment uses this to inventory *only* the registered
//! spinning tags, keeping ambient tags (the warehouse is full of them) out
//! of the slotted-ALOHA contention — which matters because every extra
//! participant costs collision slots and thus snapshot rate.
//!
//! The subset modeled here: masks against the EPC bank (the 96-bit code,
//! MSB first), assert/deassert actions, and an all-match default.

use crate::coding::bytes_to_bits;
use serde::{Deserialize, Serialize};

/// What a matching tag should do with its SL flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SelectAction {
    /// Matching tags assert SL; non-matching deassert.
    AssertMatching,
    /// Matching tags deassert SL; non-matching assert.
    DeassertMatching,
}

/// A Select command over the EPC memory bank.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SelectCommand {
    /// Bit offset into the 96-bit EPC (0 = MSB).
    pub pointer: u16,
    /// Mask bits (each 0/1), compared at `pointer`.
    pub mask: Vec<u8>,
    /// Flag action.
    pub action: SelectAction,
}

impl SelectCommand {
    /// Select tags whose EPC starts with the given byte prefix.
    pub fn epc_prefix(prefix: &[u8]) -> Self {
        SelectCommand {
            pointer: 0,
            mask: bytes_to_bits(prefix),
            action: SelectAction::AssertMatching,
        }
    }

    /// Select exactly one EPC (full 96-bit match).
    pub fn single_epc(epc: u128) -> Self {
        let bytes = &epc.to_be_bytes()[4..16];
        SelectCommand {
            pointer: 0,
            mask: bytes_to_bits(bytes),
            action: SelectAction::AssertMatching,
        }
    }

    /// Does this command's mask match the EPC?
    ///
    /// A mask running past the end of the 96-bit EPC never matches (per the
    /// Gen2 spec's out-of-range rule).
    pub fn matches(&self, epc: u128) -> bool {
        let epc_bits = bytes_to_bits(&epc.to_be_bytes()[4..16]);
        let start = self.pointer as usize;
        let end = start + self.mask.len();
        if end > epc_bits.len() {
            return false;
        }
        epc_bits[start..end] == self.mask[..]
    }

    /// The SL flag a tag with `epc` holds after this command, given its
    /// previous flag.
    pub fn apply(&self, epc: u128, _previous: bool) -> bool {
        match (self.matches(epc), self.action) {
            (true, SelectAction::AssertMatching) => true,
            (false, SelectAction::AssertMatching) => false,
            (true, SelectAction::DeassertMatching) => false,
            (false, SelectAction::DeassertMatching) => true,
        }
    }
}

/// The tag population filter an inventory runs under: a sequence of Select
/// commands applied in order (later commands override earlier ones).
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Selection {
    commands: Vec<SelectCommand>,
}

impl Selection {
    /// No filtering: every tag participates (SL ignored).
    pub fn all() -> Self {
        Selection::default()
    }

    /// Filter to tags matching any of the given EPCs.
    ///
    /// (Real readers issue one Select per round-robin target; the net
    /// effect for disjoint EPC masks is this union.)
    pub fn epcs(epcs: &[u128]) -> Self {
        Selection {
            commands: epcs.iter().map(|&e| SelectCommand::single_epc(e)).collect(),
        }
    }

    /// Add a command (builder-style).
    pub fn with(mut self, cmd: SelectCommand) -> Self {
        self.commands.push(cmd);
        self
    }

    /// Does a tag with `epc` participate in inventory under this selection?
    pub fn admits(&self, epc: u128) -> bool {
        if self.commands.is_empty() {
            return true;
        }
        // Union semantics over assert-matching commands; a deassert that
        // matches evicts the tag even if an earlier assert admitted it.
        let mut admitted = false;
        for cmd in &self.commands {
            match (cmd.matches(epc), cmd.action) {
                (true, SelectAction::AssertMatching) => admitted = true,
                (true, SelectAction::DeassertMatching) => admitted = false,
                _ => {}
            }
        }
        admitted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_epc_matches_only_itself() {
        let cmd = SelectCommand::single_epc(0xE200_1234);
        assert!(cmd.matches(0xE200_1234));
        assert!(!cmd.matches(0xE200_1235));
        assert!(cmd.apply(0xE200_1234, false));
        assert!(!cmd.apply(0xE200_1235, true));
    }

    #[test]
    fn prefix_select() {
        // EPCs whose first byte is 0xE2 (the EPC gid prefix region).
        let cmd = SelectCommand::epc_prefix(&[0xE2]);
        assert!(cmd.matches(0xE2u128 << 88)); // 0xE2 in the top byte of 96
        assert!(!cmd.matches(0xA5u128 << 88));
    }

    #[test]
    fn pointer_offsets_the_mask() {
        // Match bits 8..16 == 0x34 in an EPC with byte layout [0x12, 0x34, ...].
        let epc: u128 = 0x1234u128 << 80;
        let cmd = SelectCommand {
            pointer: 8,
            mask: bytes_to_bits(&[0x34]),
            action: SelectAction::AssertMatching,
        };
        assert!(cmd.matches(epc));
        let miss = SelectCommand {
            pointer: 7,
            mask: bytes_to_bits(&[0x34]),
            action: SelectAction::AssertMatching,
        };
        assert!(!miss.matches(epc));
    }

    #[test]
    fn out_of_range_mask_never_matches() {
        let cmd = SelectCommand {
            pointer: 90,
            mask: vec![0; 10],
            action: SelectAction::AssertMatching,
        };
        assert!(!cmd.matches(0));
    }

    #[test]
    fn selection_union_and_eviction() {
        let sel = Selection::epcs(&[1, 2, 3]);
        assert!(sel.admits(1));
        assert!(sel.admits(3));
        assert!(!sel.admits(4));
        // Deassert evicts a previously admitted tag.
        let sel = sel.with(SelectCommand {
            action: SelectAction::DeassertMatching,
            ..SelectCommand::single_epc(2)
        });
        assert!(sel.admits(1));
        assert!(!sel.admits(2));
    }

    #[test]
    fn empty_selection_admits_everything() {
        let sel = Selection::all();
        assert!(sel.admits(0));
        assert!(sel.admits((1u128 << 96) - 1));
    }
}
