//! Shared fixtures for the Tagspin benchmarks and the `reproduce` binary.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Timing is this crate's whole job: wall-clock reads here are the
// measurement, not pipeline overhead, so the workspace-wide
// `Instant::now` ban (clippy disallowed-methods) does not apply.
#![allow(clippy::disallowed_methods)]

use rand::rngs::StdRng;
use rand::SeedableRng;
use tagspin_core::snapshot::{Snapshot, SnapshotSet};
use tagspin_core::spinning::{DiskConfig, SpinningTag};
use tagspin_epc::inventory::{run_inventory, ReaderConfig, Transponder};
use tagspin_epc::InventoryLog;
use tagspin_geom::{Pose, Vec3};
use tagspin_rf::channel::Environment;
use tagspin_rf::phase::round_trip_phase;
use tagspin_rf::{TagInstance, TagModel};

/// A deterministic noise-free snapshot set: one disk rotation observed from
/// `reader`, `n` uniform samples. Used by the spectrum kernels' benches so
/// timings do not depend on the EPC layer.
pub fn synthetic_snapshots(reader: Vec3, n: usize) -> SnapshotSet {
    let disk = DiskConfig::paper_default(Vec3::ZERO);
    SnapshotSet::from_snapshots(
        (0..n)
            .map(|i| {
                let t = i as f64 * disk.period_s() / n as f64;
                let d = disk.tag_position(t).distance(reader);
                Snapshot {
                    t_s: t,
                    phase: round_trip_phase(d, 922.5e6, 1.0),
                    disk_angle: disk.disk_angle(t),
                    lambda: 0.325,
                    rssi_dbm: -60.0,
                }
            })
            .collect(),
    )
}

/// The paper-default disk at the origin (radius 10 cm, ω = 0.5 rad/s).
pub fn bench_disk() -> DiskConfig {
    DiskConfig::paper_default(Vec3::ZERO)
}

/// A realistic inventory log: one spinning tag observed for `rotations`
/// disk turns under the paper-default environment.
pub fn bench_inventory(rotations: f64, seed: u64) -> (InventoryLog, DiskConfig) {
    let mut rng = StdRng::seed_from_u64(seed);
    let disk = bench_disk();
    let tag = SpinningTag::new(
        disk,
        TagInstance::manufacture(TagModel::DEFAULT, 1, &mut rng),
    );
    let reader = ReaderConfig::at(Pose::facing_toward(Vec3::new(0.0, 2.0, 0.0), disk.center));
    let log = run_inventory(
        &Environment::paper_default(),
        &reader,
        &[&tag as &dyn Transponder],
        disk.period_s() * rotations,
        &mut rng,
    );
    (log, disk)
}

pub mod estimator_bench;
pub mod ingest_bench;
pub mod obs_bench;
pub mod robustness_bench;
pub mod serve_bench;
pub mod spectrum_bench;
pub mod store_bench;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_are_usable() {
        let set = synthetic_snapshots(Vec3::new(1.0, 1.0, 0.0), 100);
        assert_eq!(set.len(), 100);
        let (log, _) = bench_inventory(0.2, 1);
        assert!(!log.is_empty());
    }
}
