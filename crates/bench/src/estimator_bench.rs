//! Machine-readable estimator shootout: 2D accuracy and fix latency of
//! the spectrum, ML, and hybrid backends across the fault matrix, emitted
//! as `BENCH_estimator.json` (schema `tagspin-bench-estimator/v1`).
//!
//! Each rate point runs seeded trials over
//! [`tagspin_sim::estimator_ab::prepare_trial`]: one simulated observation
//! corrupted by [`tagspin_sim::FaultPlan::at_rate`], then the *same*
//! hostile stream replayed into three sessions that differ only in
//! `EstimatorConfig::backend`. Every arm runs the hardened ingest posture
//! and paper-default quality gate, so the curves compare estimators, not
//! the screens in front of them. The fix call itself is wall-clocked per
//! arm — the latency half of the shootout.
//!
//! The regression gate (`cargo xtask bench-check`) holds all three median
//! error curves to their committed baselines and enforces the hard
//! shootout invariant: ML matches-or-beats spectrum on the clean row and
//! degrades no worse than hardened-spectrum (within slack) through the 30%
//! fault row.
//!
//! Trials that produce no fix are scored with the same bounded room-scale
//! penalty the robustness bench uses, so medians stay comparable across
//! arms and the JSON stays numeric.

use std::time::Instant;
use tagspin_core::prelude::*;
use tagspin_geom::Vec2;
use tagspin_sim::estimator_ab::prepare_trial;
use tagspin_sim::metrics::TrialError;
use tagspin_sim::{FaultPlan, Scenario};

/// Error charged to an arm that produced no fix (same bound as the
/// robustness bench).
pub const FAILED_FIX_PENALTY_M: f64 = 10.0;

/// One measured fault-rate point of the three-way shootout.
#[derive(Debug, Clone)]
pub struct RatePoint {
    /// The fault-mixture knob fed to [`FaultPlan::at_rate`].
    pub rate: f64,
    /// Trials run at this rate.
    pub trials: usize,
    /// Median 2D error, spectrum backend, meters.
    pub median_err_spectrum_m: f64,
    /// Median 2D error, ML backend, meters.
    pub median_err_ml_m: f64,
    /// Median 2D error, hybrid backend, meters.
    pub median_err_hybrid_m: f64,
    /// Mean fix wall-clock, spectrum backend, nanoseconds.
    pub mean_fix_ns_spectrum: f64,
    /// Mean fix wall-clock, ML backend, nanoseconds.
    pub mean_fix_ns_ml: f64,
    /// Mean fix wall-clock, hybrid backend, nanoseconds.
    pub mean_fix_ns_hybrid: f64,
    /// Spectrum-arm trials that produced no fix (penalty-scored).
    pub fails_spectrum: usize,
    /// ML-arm trials that produced no fix (penalty-scored).
    pub fails_ml: usize,
    /// Hybrid-arm trials that produced no fix (penalty-scored).
    pub fails_hybrid: usize,
    /// ML refinements accepted (not served from the spectrum seed) across
    /// the ML arm's trials.
    pub ml_accepted: usize,
    /// Hybrid refinements accepted across the hybrid arm's trials.
    pub hybrid_accepted: usize,
}

fn median(sorted: &[f64]) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let mid = sorted.len() / 2;
    if sorted.len() % 2 == 1 {
        sorted[mid]
    } else {
        (sorted[mid - 1] + sorted[mid]) / 2.0
    }
}

/// One arm's accumulated trial results at a rate point.
#[derive(Debug, Default)]
struct ArmAccum {
    errs: Vec<f64>,
    fix_ns: f64,
    fails: usize,
    accepted: usize,
}

impl ArmAccum {
    fn penalty(&mut self) {
        self.errs.push(FAILED_FIX_PENALTY_M);
        self.fails += 1;
    }

    fn median_err(&mut self) -> f64 {
        self.errs.sort_by(f64::total_cmp);
        median(&self.errs)
    }

    fn mean_fix_ns(&self, trials: usize) -> f64 {
        self.fix_ns / trials.max(1) as f64
    }
}

/// Run the estimator shootout sweep. `quick` shrinks the per-rate trial
/// count for CI; the measured rates are identical either way.
pub fn run(quick: bool) -> Vec<RatePoint> {
    let trials = if quick { 6 } else { 30 };
    let rates = [0.0, 0.05, 0.1, 0.2, 0.3];
    let scenario = Scenario::paper_2d(Vec2::new(0.4, 1.8)).quick();
    let backends = [
        EstimatorBackend::Spectrum,
        EstimatorBackend::Ml,
        EstimatorBackend::Hybrid,
    ];

    rates
        .iter()
        .map(|&rate| {
            let plan = FaultPlan::at_rate(rate);
            let mut arms = [
                ArmAccum::default(),
                ArmAccum::default(),
                ArmAccum::default(),
            ];
            for t in 0..trials {
                // Stable per-trial seeds, disjoint across rates and from the
                // robustness bench's 0xAB00 block.
                let seed = 0xE500 + ((rate * 100.0).round() as u64) * 1000 + t as u64;
                let Ok((mut setup, reports)) = prepare_trial(&scenario, &plan, seed) else {
                    for arm in &mut arms {
                        arm.penalty();
                    }
                    continue;
                };
                for (backend, arm) in backends.iter().zip(&mut arms) {
                    setup.server.config.estimator.backend = *backend;
                    let mut session = setup.server.session(WindowConfig::unbounded());
                    for report in &reports {
                        session.ingest(report);
                    }
                    let t0 = Instant::now();
                    let result = session.fix_2d_estimate();
                    arm.fix_ns += t0.elapsed().as_nanos() as f64;
                    match result {
                        Ok(est) => {
                            let err = TrialError::planar(
                                est.fix.position,
                                scenario.reader_truth.position.xy(),
                            );
                            arm.errs.push(err.combined);
                            if est.ml.is_some_and(|r| r.accepted) {
                                arm.accepted += 1;
                            }
                        }
                        Err(_) => arm.penalty(),
                    }
                }
            }
            let [mut spectrum, mut ml, mut hybrid] = arms;
            RatePoint {
                rate,
                trials,
                median_err_spectrum_m: spectrum.median_err(),
                median_err_ml_m: ml.median_err(),
                median_err_hybrid_m: hybrid.median_err(),
                mean_fix_ns_spectrum: spectrum.mean_fix_ns(trials),
                mean_fix_ns_ml: ml.mean_fix_ns(trials),
                mean_fix_ns_hybrid: hybrid.mean_fix_ns(trials),
                fails_spectrum: spectrum.fails,
                fails_ml: ml.fails,
                fails_hybrid: hybrid.fails,
                ml_accepted: ml.accepted,
                hybrid_accepted: hybrid.accepted,
            }
        })
        .collect()
}

/// Serialize results as the `tagspin-bench-estimator/v1` JSON document.
pub fn to_json(results: &[RatePoint]) -> String {
    let mut out =
        String::from("{\n  \"schema\": \"tagspin-bench-estimator/v1\",\n  \"cases\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"rate_{:03}\", \"fault_rate\": {:.2}, \"trials\": {}, \
             \"median_err_spectrum_m\": {:.4}, \"median_err_ml_m\": {:.4}, \
             \"median_err_hybrid_m\": {:.4}, \
             \"mean_fix_ns_spectrum\": {:.0}, \"mean_fix_ns_ml\": {:.0}, \
             \"mean_fix_ns_hybrid\": {:.0}, \
             \"fails_spectrum\": {}, \"fails_ml\": {}, \"fails_hybrid\": {}, \
             \"ml_accepted\": {}, \"hybrid_accepted\": {}}}{}\n",
            (r.rate * 100.0).round() as u32,
            r.rate,
            r.trials,
            r.median_err_spectrum_m,
            r.median_err_ml_m,
            r.median_err_hybrid_m,
            r.mean_fix_ns_spectrum,
            r.mean_fix_ns_ml,
            r.mean_fix_ns_hybrid,
            r.fails_spectrum,
            r.fails_ml,
            r.fails_hybrid,
            r.ml_accepted,
            r.hybrid_accepted,
            if i + 1 < results.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Write the JSON document to `path`.
///
/// # Errors
///
/// Propagates the filesystem error when `path` is not writable.
pub fn write_json(path: &std::path::Path, results: &[RatePoint]) -> std::io::Result<()> {
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        std::fs::create_dir_all(dir)?;
    }
    std::fs::write(path, to_json(results))
}

/// One human-readable line per rate point.
pub fn report(results: &[RatePoint]) -> String {
    results
        .iter()
        .map(|r| {
            format!(
                "fault rate {:>4.0}%  spectrum: {:>6.1} cm  ml: {:>6.1} cm \
                 (accepted {}/{})  hybrid: {:>6.1} cm (accepted {}/{})",
                r.rate * 100.0,
                r.median_err_spectrum_m * 100.0,
                r.median_err_ml_m * 100.0,
                r.ml_accepted,
                r.trials,
                r.median_err_hybrid_m * 100.0,
                r.hybrid_accepted,
                r.trials,
            )
        })
        .collect::<Vec<_>>()
        .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(rate: f64) -> RatePoint {
        RatePoint {
            rate,
            trials: 6,
            median_err_spectrum_m: 0.05,
            median_err_ml_m: 0.04,
            median_err_hybrid_m: 0.045,
            mean_fix_ns_spectrum: 1.0e6,
            mean_fix_ns_ml: 2.5e6,
            mean_fix_ns_hybrid: 2.6e6,
            fails_spectrum: 0,
            fails_ml: 0,
            fails_hybrid: 0,
            ml_accepted: 6,
            hybrid_accepted: 5,
        }
    }

    #[test]
    fn json_is_well_formed_enough() {
        let cases = vec![point(0.0), point(0.2)];
        let json = to_json(&cases);
        assert!(json.contains("\"schema\": \"tagspin-bench-estimator/v1\""));
        assert!(json.contains("\"name\": \"rate_000\""));
        assert!(json.contains("\"name\": \"rate_020\""));
        assert!(json.contains("\"median_err_ml_m\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(!report(&cases).is_empty());
    }

    #[test]
    fn median_of_even_and_odd() {
        assert!((median(&[1.0, 2.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((median(&[1.0, 3.0]) - 2.0).abs() < 1e-12);
        assert!(median(&[]).is_nan());
    }
}
