//! Machine-readable spectrum-engine benchmark: coarse-to-fine versus the
//! exhaustive reference path, emitted as `BENCH_spectrum.json`.
//!
//! The vendored criterion stand-in prints means but does not expose them
//! programmatically, so this module carries its own `Instant`-based timing
//! loop. Both the `spectrum` criterion bench and `reproduce
//! --bench-spectrum` route through [`run`] so the JSON artifact and the
//! human-readable bench agree on what was measured.
//!
//! The JSON is hand-rolled (no serde_json in the vendored set): flat
//! structure, fixed schema tag `tagspin-bench-spectrum/v1`.

use crate::synthetic_snapshots;
use std::time::Instant;
use tagspin_core::spectrum::engine::{SpectrumEngine, SpectrumEngineConfig};
use tagspin_core::spectrum::{ProfileKind, SpectrumConfig};
use tagspin_geom::Vec3;

/// One measured configuration: the same peak search on the same inputs,
/// fast path versus exhaustive path.
#[derive(Debug, Clone)]
pub struct CaseResult {
    /// Stable case identifier (e.g. `peak_2d_hybrid_720`).
    pub name: &'static str,
    /// Azimuth grid size.
    pub azimuth_steps: usize,
    /// Polar grid size (1 for 2D cases).
    pub polar_steps: usize,
    /// Snapshot count of the synthetic aperture.
    pub snapshots: usize,
    /// Mean wall-clock nanoseconds per exhaustive peak search.
    pub mean_ns_exhaustive: f64,
    /// Mean wall-clock nanoseconds per coarse-to-fine peak search.
    pub mean_ns_fast: f64,
}

impl CaseResult {
    /// Exhaustive time over fast time (higher is better for the engine).
    pub fn speedup(&self) -> f64 {
        self.mean_ns_exhaustive / self.mean_ns_fast
    }
}

/// Mean nanoseconds per call of `f` over `iters` timed iterations (after
/// one untimed warm-up call that also warms the engine's table cache).
fn time_ns(iters: u32, mut f: impl FnMut()) -> f64 {
    f();
    let t0 = Instant::now();
    for _ in 0..iters {
        f();
    }
    t0.elapsed().as_nanos() as f64 / f64::from(iters.max(1))
}

/// Run the engine benchmark suite. `quick` shrinks iteration counts for
/// CI; the measured configurations are identical either way.
pub fn run(quick: bool) -> Vec<CaseResult> {
    let (fast_iters, full_iters) = if quick { (6, 2) } else { (20, 5) };
    let reader = Vec3::new(-0.8, 1.5, 0.0);
    let reader_3d = Vec3::new(-0.8, 1.5, 0.6);
    let ecfg = SpectrumEngineConfig::default();
    let exhaustive = SpectrumEngineConfig {
        exhaustive: true,
        ..ecfg
    };
    let mut results = Vec::new();

    for &(name, steps) in &[
        ("peak_2d_hybrid_360", 360usize),
        ("peak_2d_hybrid_720", 720),
        ("peak_2d_hybrid_1440", 1440),
    ] {
        let set = synthetic_snapshots(reader, 400);
        let cfg = SpectrumConfig {
            azimuth_steps: steps,
            ..SpectrumConfig::default()
        };
        let engine = SpectrumEngine::new(&ecfg);
        let mean_ns_fast = time_ns(fast_iters, || {
            engine.peak_2d(&set, 0.1, ProfileKind::Hybrid, &cfg, &ecfg);
        });
        let mean_ns_exhaustive = time_ns(full_iters, || {
            engine.peak_2d(&set, 0.1, ProfileKind::Hybrid, &cfg, &exhaustive);
        });
        results.push(CaseResult {
            name,
            azimuth_steps: steps,
            polar_steps: 1,
            snapshots: 400,
            mean_ns_exhaustive,
            mean_ns_fast,
        });
    }

    {
        let set = synthetic_snapshots(reader_3d, 400);
        let cfg = SpectrumConfig {
            azimuth_steps: 360,
            polar_steps: 61,
            ..SpectrumConfig::default()
        };
        let engine = SpectrumEngine::new(&ecfg);
        let mean_ns_fast = time_ns(fast_iters, || {
            engine.peak_3d(&set, 0.1, ProfileKind::Hybrid, &cfg, &ecfg);
        });
        let mean_ns_exhaustive = time_ns(full_iters.min(3), || {
            engine.peak_3d(&set, 0.1, ProfileKind::Hybrid, &cfg, &exhaustive);
        });
        results.push(CaseResult {
            name: "peak_3d_hybrid_360x61",
            azimuth_steps: 360,
            polar_steps: 61,
            snapshots: 400,
            mean_ns_exhaustive,
            mean_ns_fast,
        });
    }

    results
}

/// Serialize results as the `tagspin-bench-spectrum/v1` JSON document.
pub fn to_json(results: &[CaseResult]) -> String {
    let mut out = String::from("{\n  \"schema\": \"tagspin-bench-spectrum/v1\",\n  \"cases\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"azimuth_steps\": {}, \"polar_steps\": {}, \
             \"snapshots\": {}, \"mean_ns_exhaustive\": {:.0}, \"mean_ns_fast\": {:.0}, \
             \"speedup\": {:.3}}}{}\n",
            r.name,
            r.azimuth_steps,
            r.polar_steps,
            r.snapshots,
            r.mean_ns_exhaustive,
            r.mean_ns_fast,
            r.speedup(),
            if i + 1 < results.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Write the JSON document to `path`.
///
/// # Errors
///
/// Propagates the filesystem error when `path` is not writable.
pub fn write_json(path: &std::path::Path, results: &[CaseResult]) -> std::io::Result<()> {
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        std::fs::create_dir_all(dir)?;
    }
    std::fs::write(path, to_json(results))
}

/// One human-readable line per case.
pub fn report(results: &[CaseResult]) -> String {
    results
        .iter()
        .map(|r| {
            format!(
                "{:<24} grid {:>4}x{:<2}  exhaustive {:>9.2} ms  fast {:>8.3} ms  speedup {:>5.1}x",
                r.name,
                r.azimuth_steps,
                r.polar_steps,
                r.mean_ns_exhaustive / 1e6,
                r.mean_ns_fast / 1e6,
                r.speedup()
            )
        })
        .collect::<Vec<_>>()
        .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_is_well_formed_enough() {
        let cases = vec![CaseResult {
            name: "x",
            azimuth_steps: 720,
            polar_steps: 1,
            snapshots: 400,
            mean_ns_exhaustive: 6e6,
            mean_ns_fast: 1e6,
        }];
        let json = to_json(&cases);
        assert!(json.contains("\"schema\": \"tagspin-bench-spectrum/v1\""));
        assert!(json.contains("\"speedup\": 6.000"));
        assert!(json.trim_end().ends_with('}'));
        // Balanced braces/brackets — cheap sanity without a JSON parser.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
