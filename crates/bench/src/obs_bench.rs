//! Machine-readable observability-overhead benchmark: the streaming-ingest
//! fixture measured under three observer arms, emitted as `BENCH_obs.json`
//! (schema `tagspin-bench-obs/v1`).
//!
//! The question this artifact answers: what does the observability layer
//! cost? Three arms run the *same* fixture through the *same* session
//! pipeline:
//!
//! * `null` — the default [`NullObserver`]; the disabled path the
//!   instrumentation promises is zero-cost (no clock reads, no event
//!   construction).
//! * `metrics` — a [`MetricsObserver`] folding every event into the
//!   lock-light [`MetricsRegistry`]; the production configuration.
//! * `recording` — a [`RecordingObserver`] buffering every event; the
//!   test-suite configuration and the worst case (allocation per event).
//!
//! Each arm reports two gated metrics (`mean_ingest_ns`, best-of-passes;
//! `min_fix_refresh_ns`, best timed refresh — minima are robust to
//! scheduler noise on shared runners) so `cargo xtask bench-check`
//! holds all three paths to their baselines. The per-arm
//! `ingest_overhead_frac` field (relative to the `null` arm in the same
//! run) is informational: it is what `docs/OBSERVABILITY.md` quotes.
//!
//! The disabled-path-vs-*pre-instrumentation* claim is deliberately left to
//! `BENCH_ingest.json`, whose baseline predates the observability layer.

use crate::ingest_bench::streaming_fixture;
use std::sync::Arc;
use std::time::Instant;
use tagspin_core::prelude::*;
use tagspin_epc::{InventoryLog, TagReport};

/// Which observer a case attaches to the session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObserverArm {
    /// The default disabled observer (no events, no clock reads).
    Null,
    /// A `MetricsObserver` over a fresh `MetricsRegistry`.
    Metrics,
    /// A `RecordingObserver` buffering every event.
    Recording,
}

impl ObserverArm {
    /// Stable case name for the artifact.
    pub fn name(self) -> &'static str {
        match self {
            ObserverArm::Null => "null",
            ObserverArm::Metrics => "metrics",
            ObserverArm::Recording => "recording",
        }
    }
}

/// One measured observer arm.
#[derive(Debug, Clone)]
pub struct CaseResult {
    /// Stable case identifier (`null`, `metrics`, `recording`).
    pub name: String,
    /// Reports ingested during the throughput measurement.
    pub reports: usize,
    /// Mean wall-clock nanoseconds per ingested report, taken from the
    /// best of several full-drain passes (the minimum is robust to
    /// scheduler noise on shared single-core runners).
    pub mean_ingest_ns: f64,
    /// Minimum wall-clock nanoseconds over the timed fix refreshes.
    pub min_fix_refresh_ns: f64,
    /// Events the arm's observer actually received (0 for `null`; for
    /// `metrics` the sum of all counter increments, which undercounts
    /// events carrying no counter, so `recording` is the true event count).
    pub events: u64,
    /// Ingest overhead relative to the `null` arm of the same run
    /// (`mean_ingest_ns / null_mean - 1`; 0 for `null` itself).
    pub ingest_overhead_frac: f64,
}

/// A synthetic continuation of `log` (see `ingest_bench::continuation`,
/// duplicated here because that helper is private): `n` fresh reports,
/// alternating EPCs, strictly advancing timestamps.
fn continuation(log: &InventoryLog, n: usize) -> Vec<TagReport> {
    let mut t_us = log.reports().last().map_or(0, |r| r.timestamp_us);
    (0..n)
        .map(|i| {
            t_us += 5_000;
            TagReport {
                epc: (i % 2 + 1) as u128,
                timestamp_us: t_us,
                phase: tagspin_geom::angle::wrap_tau(i as f64 * 0.37),
                rssi_dbm: -60.0,
                channel_index: (i % 16) as u8,
                antenna_id: 1,
            }
        })
        .collect()
}

/// Full-drain passes per arm; the minimum mean survives, so a scheduler
/// stall in one pass cannot fail the regression gate.
const INGEST_PASSES: usize = 3;

/// Reports per `ingest_batch` call in the drain loop: large enough that
/// the metrics arm amortizes its one-atomic-add-per-counter flush, small
/// enough to model a realistic reader burst rather than a whole log.
const INGEST_BATCH: usize = 64;

/// A fresh session for `arm`, with its (possibly unused) observer sinks.
fn arm_session(
    server: &LocalizationServer,
    arm: ObserverArm,
) -> (ReaderSession, Arc<MetricsRegistry>, Arc<RecordingObserver>) {
    let mut session = server.session(WindowConfig::last_reports(512));
    let metrics = Arc::new(MetricsRegistry::new());
    let recording = Arc::new(RecordingObserver::new());
    match arm {
        ObserverArm::Null => {}
        ObserverArm::Metrics => {
            session.set_observer(Arc::new(MetricsObserver::new(Arc::clone(&metrics))))
        }
        ObserverArm::Recording => session.set_observer(Arc::clone(&recording) as Arc<dyn Observer>),
    }
    (session, metrics, recording)
}

/// Measure one arm: several full-drain passes (best mean kept), then a
/// handful of burst-then-fix refreshes on the final pass's session (best
/// refresh kept). Returns (mean_ingest_ns, min_fix_refresh_ns, events);
/// events count only the final pass, i.e. one drain plus the refreshes.
fn measure(
    server: &LocalizationServer,
    log: &InventoryLog,
    arm: ObserverArm,
    refreshes: u32,
) -> (f64, f64, u64) {
    let mut mean_ingest_ns = f64::INFINITY;
    let mut last_pass = None;
    for _ in 0..INGEST_PASSES {
        let (mut session, metrics, recording) = arm_session(server, arm);
        let t0 = Instant::now();
        for chunk in log.reports().chunks(INGEST_BATCH) {
            session.ingest_batch(chunk);
        }
        let mean = t0.elapsed().as_nanos() as f64 / log.len().max(1) as f64;
        mean_ingest_ns = mean_ingest_ns.min(mean);
        last_pass = Some((session, metrics, recording));
    }
    let Some((mut session, metrics, recording)) = last_pass else {
        return (0.0, 0.0, 0);
    };

    // Two warmup fixes: the first legacy fresh recompute satisfies
    // `engage_after_recomputes`, the second pays the incremental path's
    // one-time anchor rebuild; timed refreshes then measure steady state.
    let burst = continuation(log, (refreshes as usize + 2) * 2);
    let mut chunks = burst.chunks_exact(2);
    for warmup in chunks.by_ref().take(2) {
        for r in warmup {
            session.ingest(r);
        }
        let _ = session.fix_2d();
    }
    let mut min_fix_refresh_ns = f64::INFINITY;
    for chunk in chunks.take(refreshes as usize) {
        for r in chunk {
            session.ingest(r);
        }
        let t0 = Instant::now();
        let _ = session.fix_2d();
        min_fix_refresh_ns = min_fix_refresh_ns.min(t0.elapsed().as_nanos() as f64);
    }
    if !min_fix_refresh_ns.is_finite() {
        min_fix_refresh_ns = 0.0;
    }

    let events = match arm {
        ObserverArm::Null => 0,
        ObserverArm::Metrics => metrics.snapshot().counters.values().sum(),
        ObserverArm::Recording => recording.events().len() as u64,
    };
    (mean_ingest_ns, min_fix_refresh_ns, events)
}

/// Run the observability-overhead suite. `quick` shrinks the observation
/// and refresh counts for CI; the three arms are identical either way.
pub fn run(quick: bool) -> Vec<CaseResult> {
    let (rotations, refreshes) = if quick { (0.5, 3u32) } else { (2.0, 10u32) };
    let (server, log) = streaming_fixture(rotations, 7);

    let arms = [
        ObserverArm::Null,
        ObserverArm::Metrics,
        ObserverArm::Recording,
    ];
    let mut null_mean = 0.0_f64;
    arms.into_iter()
        .map(|arm| {
            let (mean_ingest_ns, min_fix_refresh_ns, events) =
                measure(&server, &log, arm, refreshes);
            if arm == ObserverArm::Null {
                null_mean = mean_ingest_ns;
            }
            let ingest_overhead_frac = if arm == ObserverArm::Null || null_mean <= 0.0 {
                0.0
            } else {
                mean_ingest_ns / null_mean - 1.0
            };
            CaseResult {
                name: arm.name().to_string(),
                reports: log.len(),
                mean_ingest_ns,
                min_fix_refresh_ns,
                events,
                ingest_overhead_frac,
            }
        })
        .collect()
}

/// Run only the `metrics` arm and return its populated registry, for
/// `reproduce --metrics-out`: a full `tagspin-metrics/v1` export of what
/// the fixture actually emitted.
pub fn collect_metrics(quick: bool) -> Arc<MetricsRegistry> {
    let (rotations, refreshes) = if quick { (0.5, 3u32) } else { (2.0, 10u32) };
    let (server, log) = streaming_fixture(rotations, 7);
    let mut session = server.session(WindowConfig::last_reports(512));
    let registry = Arc::new(MetricsRegistry::new());
    session.set_observer(Arc::new(MetricsObserver::new(Arc::clone(&registry))));
    for report in log.stream() {
        session.ingest(report);
    }
    for chunk in continuation(&log, (refreshes as usize) * 2).chunks_exact(2) {
        for r in chunk {
            session.ingest(r);
        }
        let _ = session.fix_2d();
    }
    registry
}

/// Serialize results as the `tagspin-bench-obs/v1` JSON document.
pub fn to_json(results: &[CaseResult]) -> String {
    let mut out = String::from("{\n  \"schema\": \"tagspin-bench-obs/v1\",\n  \"cases\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"reports\": {}, \"mean_ingest_ns\": {:.0}, \
             \"min_fix_refresh_ns\": {:.0}, \"events\": {}, \
             \"ingest_overhead_frac\": {:.4}}}{}\n",
            r.name,
            r.reports,
            r.mean_ingest_ns,
            r.min_fix_refresh_ns,
            r.events,
            r.ingest_overhead_frac,
            if i + 1 < results.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Write the JSON document to `path`.
///
/// # Errors
///
/// Propagates the filesystem error when `path` is not writable.
pub fn write_json(path: &std::path::Path, results: &[CaseResult]) -> std::io::Result<()> {
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        std::fs::create_dir_all(dir)?;
    }
    std::fs::write(path, to_json(results))
}

/// One human-readable line per case.
pub fn report(results: &[CaseResult]) -> String {
    results
        .iter()
        .map(|r| {
            format!(
                "{:<10} ingest {:>7.0} ns/report ({:+.1}% vs null)  \
                 fix refresh {:>9.2} ms  events {:>7}",
                r.name,
                r.mean_ingest_ns,
                r.ingest_overhead_frac * 100.0,
                r.min_fix_refresh_ns / 1e6,
                r.events
            )
        })
        .collect::<Vec<_>>()
        .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_is_well_formed_enough() {
        let cases = vec![
            CaseResult {
                name: "null".into(),
                reports: 500,
                mean_ingest_ns: 120.0,
                min_fix_refresh_ns: 2.5e6,
                events: 0,
                ingest_overhead_frac: 0.0,
            },
            CaseResult {
                name: "recording".into(),
                reports: 500,
                mean_ingest_ns: 180.0,
                min_fix_refresh_ns: 2.9e6,
                events: 530,
                ingest_overhead_frac: 0.5,
            },
        ];
        let json = to_json(&cases);
        assert!(json.contains("\"schema\": \"tagspin-bench-obs/v1\""));
        assert!(json.contains("\"ingest_overhead_frac\": 0.5000"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn arms_observe_what_they_should() {
        let results = run(true);
        assert_eq!(results.len(), 3);
        let by_name = |n: &str| {
            results
                .iter()
                .find(|r| r.name == n)
                .unwrap_or_else(|| unreachable!("arm {n} always present"))
        };
        assert_eq!(by_name("null").events, 0);
        assert!(by_name("recording").events > 0, "recording saw no events");
        assert!(by_name("metrics").events > 0, "metrics saw no increments");
        // The recording arm sees every event, including zero-counter ones,
        // and both enabled arms see at least one event per ingested report.
        assert!(by_name("recording").events >= by_name("null").reports as u64);
    }
}
