//! `serve_load` — closed-loop smoke driver for an *external* `tagspin
//! serve` daemon (the CI `serve-smoke` job's load generator).
//!
//! ```text
//! serve_load --ingest ADDR --http ADDR [--quick] [--out summary.json]
//! ```
//!
//! Unlike the `serve` bench (which boots its own in-process daemon), this
//! binary drives a daemon it does not own — the same fleet fixture
//! streamed over real TCP, settled via `/stats`, drained via `/drain`,
//! and scraped via `/metrics`. It asserts the clean-load contract and
//! exits non-zero on any violation:
//!
//! * every frame decodes (`frame_errors == 0`, `frames == sent`);
//! * nothing is shed at the daemon's default queue depth
//!   (`reports_shed == 0`, `reports_enqueued == reports sent`);
//! * the drain leaves no queued batches;
//! * the `/metrics` scrape parses as `tagspin-metrics/v1` and its
//!   `serve.frames` counter agrees with `/stats`;
//! * every streamed antenna's `/fix/2d` query gets a well-formed answer
//!   (a fix or a typed error — liveness, not accuracy).
//!
//! The daemon must be configured with the two example-config tags (EPCs
//! 1 and 2, the paper-default disks at ±30 cm) — the fixture's captures
//! observe exactly that rig. A `tagspin-serve-smoke/v1` JSON summary is
//! written for artifact upload.

// Like the rest of the bench crate, wall-clock reads here are the
// product (settle timeouts), not pipeline overhead.
#![allow(clippy::disallowed_methods)]

use std::time::{Duration, Instant};
use tagspin_bench::serve_bench::fleet_fixture;
use tagspin_serve::{http_get, ReaderClient};
use xtask::json::{self, Value};

/// How long the drive may take to settle before the smoke fails.
const SETTLE_TIMEOUT: Duration = Duration::from_secs(60);

fn fail(msg: &str) -> ! {
    eprintln!("serve_load: FAIL: {msg}");
    std::process::exit(1);
}

fn get_json(http: &str, path: &str) -> Value {
    let (status, body) = http_get(http, path).unwrap_or_else(|e| fail(&format!("GET {path}: {e}")));
    if status != 200 {
        fail(&format!("GET {path}: status {status}, body {body}"));
    }
    json::parse(&body).unwrap_or_else(|e| fail(&format!("GET {path}: bad JSON: {e}")))
}

fn counter(doc: &Value, name: &str) -> f64 {
    doc.get("counters")
        .and_then(|c| c.get(name))
        .and_then(Value::as_num)
        .unwrap_or_else(|| fail(&format!("scrape lacks counter `{name}`")))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let value_of = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let Some(ingest) = value_of("--ingest") else {
        fail("--ingest <addr> required (the daemon's reader port)");
    };
    let Some(http) = value_of("--http") else {
        fail("--http <addr> required (the daemon's query port)");
    };
    let quick = args.iter().any(|a| a == "--quick");
    let out = value_of("--out");

    let (readers, rotations) = if quick { (4u8, 0.25) } else { (8u8, 1.0) };
    let (_server, streams) = fleet_fixture(readers, rotations);
    let frames_sent: u64 = streams.iter().map(|f| f.len() as u64).sum();
    let reports_sent: u64 = streams.iter().flatten().map(|f| f.len() as u64).sum();
    println!(
        "serve_load: driving {readers} readers, {frames_sent} frames, \
         {reports_sent} reports at {ingest}"
    );

    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for frames in &streams {
            let ingest = ingest.as_str();
            scope.spawn(move || {
                let mut client = ReaderClient::connect(ingest)
                    .unwrap_or_else(|e| fail(&format!("connect {ingest}: {e}")));
                for frame in frames {
                    client
                        .send_log(frame)
                        .unwrap_or_else(|e| fail(&format!("send frame: {e}")));
                }
                let _ = client.finish();
            });
        }
    });

    // Settle: the daemon may still be decoding buffered bytes after the
    // sockets close; the loop is closed over its own books.
    loop {
        let stats = get_json(&http, "/stats");
        let frames = stats.get("frames").and_then(Value::as_num).unwrap_or(0.0);
        let errors = stats
            .get("frame_errors")
            .and_then(Value::as_num)
            .unwrap_or(0.0);
        // lint:allow(lossy-cast) frame counts are far below 2^53
        if (frames + errors) as u64 >= frames_sent {
            break;
        }
        if t0.elapsed() > SETTLE_TIMEOUT {
            fail(&format!(
                "settle timeout: {frames:.0} frames + {errors:.0} errors \
                 after {}s, sent {frames_sent}",
                SETTLE_TIMEOUT.as_secs()
            ));
        }
        std::thread::sleep(Duration::from_millis(20));
    }

    let drain = get_json(&http, "/drain");
    if drain.get("drained").is_none() {
        fail("/drain returned no `drained` field");
    }
    let elapsed_s = t0.elapsed().as_secs_f64();

    // The clean-load contract, from the daemon's own accounting — read
    // after the drain, so the queue view is settled.
    let stats = get_json(&http, "/stats");
    let stat = |name: &str| {
        stats
            .get(name)
            .and_then(Value::as_num)
            .unwrap_or_else(|| fail(&format!("/stats lacks `{name}`")))
    };
    // lint:allow(float-eq) counters are exact integers in f64
    if stat("frame_errors") != 0.0 {
        fail(&format!(
            "{:.0} frame errors on a clean stream",
            stat("frame_errors")
        ));
    }
    // lint:allow(lossy-cast) frame counts are far below 2^53
    if stat("frames") as u64 != frames_sent {
        fail(&format!(
            "frames {:.0} != sent {frames_sent}",
            stat("frames")
        ));
    }
    // lint:allow(float-eq) counters are exact integers in f64
    if stat("reports_shed") != 0.0 {
        fail(&format!(
            "{:.0} reports shed under plain load — queues must absorb the smoke drive",
            stat("reports_shed")
        ));
    }
    // lint:allow(lossy-cast) report counts are far below 2^53
    if stat("reports_enqueued") as u64 != reports_sent {
        fail(&format!(
            "reports_enqueued {:.0} != sent {reports_sent}",
            stat("reports_enqueued")
        ));
    }
    // lint:allow(float-eq) counters are exact integers in f64
    if stat("queued_batches") != 0.0 {
        fail(&format!(
            "{:.0} batches still queued after /drain",
            stat("queued_batches")
        ));
    }

    // Scrape: schema-tagged and in agreement with the books.
    let (status, scrape_text) =
        http_get(&http, "/metrics").unwrap_or_else(|e| fail(&format!("GET /metrics: {e}")));
    if status != 200 {
        fail(&format!("GET /metrics: status {status}"));
    }
    let scrape = json::parse(&scrape_text)
        .unwrap_or_else(|e| fail(&format!("scrape is not valid JSON: {e}")));
    if scrape.get("schema").and_then(Value::as_str) != Some("tagspin-metrics/v1") {
        fail("scrape lacks the tagspin-metrics/v1 schema tag");
    }
    // lint:allow(lossy-cast) frame counts are far below 2^53
    if counter(&scrape, "serve.frames") as u64 != frames_sent {
        fail("scrape counter serve.frames disagrees with /stats");
    }

    // Liveness of the query plane: every streamed antenna answers.
    for antenna in 1..=readers {
        let (status, body) = http_get(&http, &format!("/fix/2d?antenna={antenna}"))
            .unwrap_or_else(|e| fail(&format!("GET /fix/2d?antenna={antenna}: {e}")));
        if status != 200 && status != 409 {
            fail(&format!("fix query for antenna {antenna}: status {status}"));
        }
        if json::parse(&body).is_err() {
            fail(&format!(
                "fix query for antenna {antenna}: non-JSON body {body}"
            ));
        }
    }

    println!(
        "serve_load: OK — {reports_sent} reports in {frames_sent} frames over \
         {elapsed_s:.2}s, zero shed, clean drain, scrape consistent"
    );
    if let Some(path) = out {
        let summary = format!(
            "{{\n  \"schema\": \"tagspin-serve-smoke/v1\",\n  \
             \"readers\": {readers},\n  \"frames_sent\": {frames_sent},\n  \
             \"reports_sent\": {reports_sent},\n  \"elapsed_s\": {elapsed_s:.3},\n  \
             \"shed\": 0,\n  \"frame_errors\": 0\n}}\n"
        );
        if let Err(e) = std::fs::write(&path, summary) {
            fail(&format!("could not write {path}: {e}"));
        }
        println!("serve_load: wrote {path}");
    }
}
