//! Regenerate every figure and table of the paper's evaluation.
//!
//! ```text
//! reproduce               # all experiments at full (paper) fidelity
//! reproduce --quick       # all experiments at CI fidelity
//! reproduce fig10a fig6   # a subset
//! reproduce --csv out/    # also write each report as CSV under out/
//! reproduce --trials 25   # override the per-configuration trial count
//! reproduce --list        # show the registry
//! reproduce --bench-spectrum [path]  # only the spectrum-engine bench,
//!                                    # JSON to path (default BENCH_spectrum.json)
//! reproduce --bench-ingest [path]    # only the streaming-ingest bench,
//!                                    # JSON to path (default BENCH_ingest.json)
//! reproduce --bench-robustness [path] # only the fault-injection robustness
//!                                     # sweep (default BENCH_robustness.json)
//! reproduce --bench-obs [path]       # only the observability-overhead bench,
//!                                    # JSON to path (default BENCH_obs.json)
//! reproduce --bench-estimator [path] # only the estimator shootout sweep
//!                                    # (default BENCH_estimator.json)
//! reproduce --bench-serve [path]     # only the serve fleet load bench,
//!                                    # JSON to path (default BENCH_serve.json)
//! reproduce --bench-store [path]     # only the calibration-store boot bench,
//!                                    # JSON to path (default BENCH_store.json)
//! reproduce --metrics-out <path>     # with --bench-obs: also export the
//!                                    # metrics arm's registry as
//!                                    # tagspin-metrics/v1 JSON
//! ```
//!
//! Output goes to stdout in the `Report` text format; a copy of each full
//! experiment run is written to `reproduce_csv/reproduce_<fidelity>.log`
//! (run artifacts belong under the output directory, not the repo root).
//! EXPERIMENTS.md records a full run.

// The reproduction driver reports per-experiment wall time; like the bench
// crate proper, its clock reads are the product, not pipeline overhead.
#![allow(clippy::disallowed_methods)]

use std::time::Instant;
use tagspin_sim::experiments::{registry, run, Fidelity};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let list = args.iter().any(|a| a == "--list");
    if let Some(i) = args.iter().position(|a| a == "--bench-spectrum") {
        let path = args
            .get(i + 1)
            .filter(|a| !a.starts_with("--"))
            .map_or_else(
                || std::path::PathBuf::from("BENCH_spectrum.json"),
                std::path::PathBuf::from,
            );
        let results = tagspin_bench::spectrum_bench::run(quick);
        println!("spectrum engine (coarse-to-fine vs exhaustive):");
        println!("{}", tagspin_bench::spectrum_bench::report(&results));
        if let Err(e) = tagspin_bench::spectrum_bench::write_json(&path, &results) {
            eprintln!("error: could not write {}: {e}", path.display());
            std::process::exit(1);
        }
        println!("wrote {}", path.display());
        return;
    }
    if let Some(i) = args.iter().position(|a| a == "--bench-ingest") {
        let path = args
            .get(i + 1)
            .filter(|a| !a.starts_with("--"))
            .map_or_else(
                || std::path::PathBuf::from("BENCH_ingest.json"),
                std::path::PathBuf::from,
            );
        let results = tagspin_bench::ingest_bench::run(quick);
        println!("session ingest (throughput and fix refresh vs window):");
        println!("{}", tagspin_bench::ingest_bench::report(&results));
        if let Err(e) = tagspin_bench::ingest_bench::write_json(&path, &results) {
            eprintln!("error: could not write {}: {e}", path.display());
            std::process::exit(1);
        }
        println!("wrote {}", path.display());
        return;
    }
    if let Some(i) = args.iter().position(|a| a == "--bench-robustness") {
        let path = args
            .get(i + 1)
            .filter(|a| !a.starts_with("--"))
            .map_or_else(
                || std::path::PathBuf::from("BENCH_robustness.json"),
                std::path::PathBuf::from,
            );
        let results = tagspin_bench::robustness_bench::run(quick);
        println!("robustness (2D accuracy vs fault rate, quarantine on/off):");
        println!("{}", tagspin_bench::robustness_bench::report(&results));
        if let Err(e) = tagspin_bench::robustness_bench::write_json(&path, &results) {
            eprintln!("error: could not write {}: {e}", path.display());
            std::process::exit(1);
        }
        println!("wrote {}", path.display());
        return;
    }
    if let Some(i) = args.iter().position(|a| a == "--bench-estimator") {
        let path = args
            .get(i + 1)
            .filter(|a| !a.starts_with("--"))
            .map_or_else(
                || std::path::PathBuf::from("BENCH_estimator.json"),
                std::path::PathBuf::from,
            );
        let results = tagspin_bench::estimator_bench::run(quick);
        println!("estimator shootout (2D accuracy vs fault rate, spectrum/ml/hybrid):");
        println!("{}", tagspin_bench::estimator_bench::report(&results));
        if let Err(e) = tagspin_bench::estimator_bench::write_json(&path, &results) {
            eprintln!("error: could not write {}: {e}", path.display());
            std::process::exit(1);
        }
        println!("wrote {}", path.display());
        return;
    }
    if let Some(i) = args.iter().position(|a| a == "--bench-serve") {
        let path = args
            .get(i + 1)
            .filter(|a| !a.starts_with("--"))
            .map_or_else(
                || std::path::PathBuf::from("BENCH_serve.json"),
                std::path::PathBuf::from,
            );
        let results = tagspin_bench::serve_bench::run(quick);
        println!("serve fleet load (closed loop over loopback TCP):");
        println!("{}", tagspin_bench::serve_bench::report(&results));
        if let Err(e) = tagspin_bench::serve_bench::write_json(&path, &results) {
            eprintln!("error: could not write {}: {e}", path.display());
            std::process::exit(1);
        }
        println!("wrote {}", path.display());
        return;
    }
    if let Some(i) = args.iter().position(|a| a == "--bench-store") {
        let path = args
            .get(i + 1)
            .filter(|a| !a.starts_with("--"))
            .map_or_else(
                || std::path::PathBuf::from("BENCH_store.json"),
                std::path::PathBuf::from,
            );
        let results = tagspin_bench::store_bench::run(quick);
        println!("calibration store (cold vs warm boot):");
        println!("{}", tagspin_bench::store_bench::report(&results));
        if let Err(e) = tagspin_bench::store_bench::write_json(&path, &results) {
            eprintln!("error: could not write {}: {e}", path.display());
            std::process::exit(1);
        }
        println!("wrote {}", path.display());
        return;
    }
    if let Some(i) = args.iter().position(|a| a == "--bench-obs") {
        let path = args
            .get(i + 1)
            .filter(|a| !a.starts_with("--"))
            .map_or_else(
                || std::path::PathBuf::from("BENCH_obs.json"),
                std::path::PathBuf::from,
            );
        let results = tagspin_bench::obs_bench::run(quick);
        println!("observability overhead (per observer arm):");
        println!("{}", tagspin_bench::obs_bench::report(&results));
        if let Err(e) = tagspin_bench::obs_bench::write_json(&path, &results) {
            eprintln!("error: could not write {}: {e}", path.display());
            std::process::exit(1);
        }
        println!("wrote {}", path.display());
        if let Some(metrics_path) = args
            .iter()
            .position(|a| a == "--metrics-out")
            .and_then(|i| args.get(i + 1))
            .map(std::path::PathBuf::from)
        {
            let registry = tagspin_bench::obs_bench::collect_metrics(quick);
            if let Err(e) = std::fs::write(&metrics_path, registry.export_json()) {
                eprintln!("error: could not write {}: {e}", metrics_path.display());
                std::process::exit(1);
            }
            println!("wrote {}", metrics_path.display());
        }
        return;
    }
    let csv_dir = args
        .iter()
        .position(|a| a == "--csv")
        .and_then(|i| args.get(i + 1))
        .map(std::path::PathBuf::from);
    let trials_override: Option<usize> = args
        .iter()
        .position(|a| a == "--trials")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok());
    let mut skip_next = false;
    let ids: Vec<&String> = args
        .iter()
        .filter(|a| {
            if skip_next {
                skip_next = false;
                return false;
            }
            if *a == "--csv" || *a == "--trials" {
                skip_next = true;
            }
            !a.starts_with("--")
        })
        .collect();

    if list {
        println!("available experiments:");
        for (id, _) in registry() {
            println!("  {id}");
        }
        return;
    }

    let mut fidelity = if quick {
        Fidelity::quick()
    } else {
        Fidelity::full()
    };
    if let Some(trials) = trials_override {
        fidelity.trials = trials;
    }
    // Accumulate a copy of everything printed; the run log lands under the
    // CSV output directory instead of polluting the repo root.
    let mut log = String::new();
    let header = format!(
        "# Tagspin reproduction — fidelity: {} ({} trials/config, seed {:#x})\n",
        if quick { "quick" } else { "full" },
        fidelity.trials,
        fidelity.seed
    );
    println!("{header}");
    log.push_str(&header);
    log.push('\n');

    let selected: Vec<&'static str> = if ids.is_empty() {
        registry().iter().map(|(id, _)| *id).collect()
    } else {
        registry()
            .iter()
            .map(|(id, _)| *id)
            .filter(|id| ids.iter().any(|want| want == id))
            .collect()
    };
    if selected.is_empty() {
        eprintln!("no matching experiments; try --list");
        std::process::exit(1);
    }

    let total = Instant::now();
    for id in selected {
        let t0 = Instant::now();
        let Some(report) = run(id, &fidelity) else {
            // Unreachable for ids filtered through the registry above, but
            // a skipped experiment beats a panic mid-run.
            eprintln!("warning: experiment {id} vanished from the registry; skipping");
            continue;
        };
        println!("{report}");
        log.push_str(&report.to_string());
        log.push('\n');
        if let Some(dir) = &csv_dir {
            if let Err(e) = report.write_csv(dir) {
                eprintln!("warning: csv export for {id} failed: {e}");
            }
        }
        let timing = format!("  [{} took {:.1} s]\n", id, t0.elapsed().as_secs_f64());
        println!("{timing}");
        log.push_str(&timing);
    }
    let footer = format!("total: {:.1} s", total.elapsed().as_secs_f64());
    println!("{footer}");
    log.push_str(&footer);
    log.push('\n');

    let log_dir = csv_dir.unwrap_or_else(|| std::path::PathBuf::from("reproduce_csv"));
    let log_path = log_dir.join(format!(
        "reproduce_{}.log",
        if quick { "quick" } else { "full" }
    ));
    if let Err(e) = std::fs::create_dir_all(&log_dir).and_then(|()| std::fs::write(&log_path, log))
    {
        eprintln!("warning: could not write {}: {e}", log_path.display());
    } else {
        println!("log written to {}", log_path.display());
    }
}
