//! Cold-vs-warm boot benchmark for the calibration store, emitted as
//! `BENCH_store.json` (schema `tagspin-bench-store/v1`).
//!
//! Two cases over one on-disk [`FileStore`]:
//!
//! * `cold` — an empty store: every steering-table prewarm misses, builds
//!   from first principles, and persists the result (`store_persisted`
//!   must cover every table — a `cargo xtask bench-check` invariant).
//! * `warm` — the same directory rebooted: every prewarm loads from disk
//!   (`store_hits` > 0) and the boot must be **strictly faster** than the
//!   cold one. Structurally guaranteed: the warm path's work (read, CRC,
//!   decode, spot-check) is a subset of the cold path's (trig build,
//!   encode, CRC, write), but the invariant pins it.
//!
//! Each case also replays a localization fix with and without the store
//! attached and counts `to_bits` differences across the fix coordinates —
//! required to be exactly zero: a store (cold, warm, or corrupt) must
//! never change a fix.
//!
//! Like the sibling benches the JSON is hand-rolled and timing is
//! `Instant`-based; `quick` shrinks grids and the capture for CI.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;
use tagspin_core::prelude::*;
use tagspin_core::spinning::SpinningTag;
use tagspin_epc::inventory::{run_inventory, ReaderConfig, Transponder};
use tagspin_epc::InventoryLog;
use tagspin_geom::{Pose, Vec3};
use tagspin_rf::channel::Environment;
use tagspin_rf::{TagInstance, TagModel};

/// Polar grid size for the prewarmed tables (odd keeps γ = 0 on-grid).
const POLAR_STEPS: usize = 33;

/// One measured boot case.
#[derive(Debug, Clone)]
pub struct CaseResult {
    /// Stable case identifier (`cold`, `warm`).
    pub name: String,
    /// Distinct steering tables prewarmed.
    pub tables: usize,
    /// Azimuth grid size of every prewarmed table.
    pub azimuth_steps: usize,
    /// Polar grid size of every prewarmed table.
    pub polar_steps: usize,
    /// Wall-clock nanoseconds for the full prewarm loop.
    pub boot_ns: u64,
    /// `boot_ns / tables`.
    pub ns_per_table: f64,
    /// Tables served from the store (zero on cold, all on warm).
    pub store_hits: u64,
    /// Tables persisted to the store (all on cold, zero on warm).
    pub store_persisted: u64,
    /// `to_bits` differences between a storeless fix and a store-attached
    /// fix over the same capture. Must be zero.
    pub fix_bits_mismatches: u64,
}

/// Open the store at `dir` (the bench treats failures as fatal).
fn open_store(dir: &Path) -> Arc<FileStore> {
    // lint:allow(no-panic) a temp dir that cannot be created means no bench
    Arc::new(FileStore::open(dir).expect("bench store dir opens"))
}

/// Prewarm `radii` tables through a fresh engine attached to `dir`,
/// returning the wall-clock nanoseconds and the engine's store counters.
fn timed_prewarm(dir: &Path, radii: &[f64], cfg: &SpectrumConfig) -> (u64, StoreStats) {
    let ecfg = SpectrumEngineConfig {
        cache_capacity: radii.len().max(1),
        ..SpectrumEngineConfig::default()
    };
    let mut engine = SpectrumEngine::new(&ecfg);
    engine.set_store(open_store(dir));
    let t0 = Instant::now();
    for &radius in radii {
        engine.prewarm_radius(radius, cfg);
    }
    let boot_ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
    (boot_ns, engine.store_stats())
}

/// A two-tag capture from one reader: two bearings, enough for a 2D fix.
fn fix_fixture(rotations: f64) -> (InventoryLog, [DiskConfig; 2]) {
    let mut rng = StdRng::seed_from_u64(11);
    let d1 = DiskConfig::paper_default(Vec3::new(-0.3, 0.0, 0.0));
    let d2 = DiskConfig::paper_default(Vec3::new(0.3, 0.0, 0.0));
    let t1 = SpinningTag::new(d1, TagInstance::manufacture(TagModel::DEFAULT, 1, &mut rng));
    let t2 = SpinningTag::new(d2, TagInstance::manufacture(TagModel::DEFAULT, 2, &mut rng));
    let reader = ReaderConfig::at(Pose::facing_toward(Vec3::new(0.0, 2.0, 0.0), Vec3::ZERO));
    let log = run_inventory(
        &Environment::paper_default(),
        &reader,
        &[&t1 as &dyn Transponder, &t2 as &dyn Transponder],
        d1.period_s() * rotations,
        &mut rng,
    );
    (log, [d1, d2])
}

/// Register the fixture's two tags on a fresh server.
fn fix_server(disks: &[DiskConfig; 2]) -> LocalizationServer {
    let mut server = LocalizationServer::new(PipelineConfig::default());
    // lint:allow(no-panic) fixed distinct EPCs cannot collide
    server.register(1, disks[0]).expect("distinct epcs");
    // lint:allow(no-panic) fixed distinct EPCs cannot collide
    server.register(2, disks[1]).expect("distinct epcs");
    server
}

/// Count `to_bits` differences between a storeless 2D fix and one served
/// by a store-attached server over the same capture.
fn fix_bits_mismatches(dir: &Path, log: &InventoryLog, disks: &[DiskConfig; 2]) -> u64 {
    let baseline = fix_server(disks);
    // lint:allow(no-panic) the two-tag capture always yields a fix
    let want = baseline.locate_2d(log).expect("baseline fix");

    let mut stored = fix_server(disks);
    stored.set_store(open_store(dir));
    // lint:allow(no-panic) the two-tag capture always yields a fix
    let got = stored.locate_2d(log).expect("stored fix");

    u64::from(want.position.x.to_bits() != got.position.x.to_bits())
        + u64::from(want.position.y.to_bits() != got.position.y.to_bits())
        + u64::from(want.residual_m.to_bits() != got.residual_m.to_bits())
}

/// Run the cold/warm boot suite. `quick` shrinks the grids and capture
/// for CI; the two cases and their invariants are identical either way.
pub fn run(quick: bool) -> Vec<CaseResult> {
    let (tables, azimuth_steps, rotations) = if quick {
        (6usize, 16_384usize, 1.5)
    } else {
        (8usize, 262_144usize, 3.0)
    };
    let root = std::env::temp_dir().join(format!("tagspin-store-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let table_dir = root.join("tables");
    let fix_dir = root.join("fixes");
    let radii: Vec<f64> = (0..tables)
        .map(|i| {
            // lint:allow(lossy-cast) table counts are tiny, exact in f64
            0.05 + 0.01 * i as f64
        })
        .collect();
    let cfg = SpectrumConfig {
        azimuth_steps,
        polar_steps: POLAR_STEPS,
        ..SpectrumConfig::default()
    };
    let (log, disks) = fix_fixture(rotations);

    let mut results = Vec::with_capacity(2);
    for name in ["cold", "warm"] {
        // Cold runs against the empty directories; warm reuses both, so
        // its prewarm loads what cold persisted.
        let (boot_ns, stats) = timed_prewarm(&table_dir, &radii, &cfg);
        let mismatches = fix_bits_mismatches(&fix_dir, &log, &disks);
        results.push(CaseResult {
            name: name.to_string(),
            tables,
            azimuth_steps,
            polar_steps: POLAR_STEPS,
            boot_ns,
            // lint:allow(lossy-cast) nanosecond totals are far below 2^53
            ns_per_table: boot_ns as f64 / (tables.max(1)) as f64,
            store_hits: stats.hits,
            store_persisted: stats.persisted,
            fix_bits_mismatches: mismatches,
        });
    }
    let _ = std::fs::remove_dir_all(&root);
    results
}

/// Serialize results as the `tagspin-bench-store/v1` JSON document.
pub fn to_json(results: &[CaseResult]) -> String {
    let mut out = String::from("{\n  \"schema\": \"tagspin-bench-store/v1\",\n  \"cases\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"tables\": {}, \"azimuth_steps\": {}, \
             \"polar_steps\": {}, \"boot_ns\": {}, \"ns_per_table\": {:.0}, \
             \"store_hits\": {}, \"store_persisted\": {}, \
             \"fix_bits_mismatches\": {}}}{}\n",
            r.name,
            r.tables,
            r.azimuth_steps,
            r.polar_steps,
            r.boot_ns,
            r.ns_per_table,
            r.store_hits,
            r.store_persisted,
            r.fix_bits_mismatches,
            if i + 1 < results.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Write the JSON document to `path`.
///
/// # Errors
///
/// Propagates the filesystem error when `path` is not writable.
pub fn write_json(path: &std::path::Path, results: &[CaseResult]) -> std::io::Result<()> {
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        std::fs::create_dir_all(dir)?;
    }
    std::fs::write(path, to_json(results))
}

/// One human-readable line per case.
pub fn report(results: &[CaseResult]) -> String {
    results
        .iter()
        .map(|r| {
            format!(
                "{:<6} {} tables ({} × {} grid)  boot {:>8.2} ms  \
                 ({:>7.2} ms/table)  {} store hits  {} persisted  \
                 {} fix-bit mismatches",
                r.name,
                r.tables,
                r.azimuth_steps,
                r.polar_steps,
                // lint:allow(lossy-cast) nanosecond totals are far below 2^53
                r.boot_ns as f64 / 1e6,
                r.ns_per_table / 1e6,
                r.store_hits,
                r.store_persisted,
                r.fix_bits_mismatches,
            )
        })
        .collect::<Vec<_>>()
        .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_is_well_formed_enough() {
        let cases = vec![
            CaseResult {
                name: "cold".into(),
                tables: 6,
                azimuth_steps: 16_384,
                polar_steps: 33,
                boot_ns: 42_000_000,
                ns_per_table: 7_000_000.0,
                store_hits: 0,
                store_persisted: 6,
                fix_bits_mismatches: 0,
            },
            CaseResult {
                name: "warm".into(),
                tables: 6,
                azimuth_steps: 16_384,
                polar_steps: 33,
                boot_ns: 9_000_000,
                ns_per_table: 1_500_000.0,
                store_hits: 6,
                store_persisted: 0,
                fix_bits_mismatches: 0,
            },
        ];
        let json = to_json(&cases);
        assert!(json.contains("\"schema\": \"tagspin-bench-store/v1\""));
        assert!(json.contains("\"name\": \"warm\""));
        assert!(json.contains("\"fix_bits_mismatches\": 0"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn quick_suite_upholds_the_store_invariants() {
        let results = run(true);
        assert_eq!(results.len(), 2);
        let cold = &results[0];
        let warm = &results[1];
        assert_eq!(cold.name, "cold");
        assert_eq!(warm.name, "warm");
        assert_eq!(cold.store_hits, 0);
        assert_eq!(cold.store_persisted, cold.tables as u64);
        assert_eq!(warm.store_hits, warm.tables as u64);
        assert_eq!(warm.store_persisted, 0);
        assert_eq!(cold.fix_bits_mismatches, 0);
        assert_eq!(warm.fix_bits_mismatches, 0);
        assert!(
            warm.boot_ns < cold.boot_ns,
            "warm boot ({}) must beat cold boot ({})",
            warm.boot_ns,
            cold.boot_ns
        );
    }
}
