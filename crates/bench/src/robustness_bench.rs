//! Machine-readable robustness benchmark: 2D accuracy versus fault rate,
//! with and without the ingest quarantine, emitted as
//! `BENCH_robustness.json` (schema `tagspin-bench-robustness/v1`).
//!
//! Each rate point runs seeded [`tagspin_sim::fault::run_trial_2d_ab`]
//! trials: one simulated observation corrupted by
//! [`tagspin_sim::FaultPlan::at_rate`], then the *same* hostile stream
//! through a hardened session (value/duplicate screens + quality gate) and
//! a permissive one. The artifact is the accuracy curve pair — the
//! measured answer to "what does the quarantine layer buy?" — and the CI
//! regression gate (`cargo xtask bench-check`) holds the hardened curve to
//! its committed baseline and requires hardened ≤ permissive at every rate
//! of at least 10%.
//!
//! Trials that fail to produce a fix (for the permissive arm under NaN
//! bombardment that is common) are scored as a bounded room-scale penalty
//! rather than dropped, so medians stay comparable across arms and the
//! JSON stays numeric.

use tagspin_geom::Vec2;
use tagspin_sim::fault::run_trial_2d_ab;
use tagspin_sim::{FaultPlan, Scenario};

/// Error charged to a trial arm that produced no fix: a room-diagonal
/// miss, far beyond any real fix in the paper's office scenario.
pub const FAILED_FIX_PENALTY_M: f64 = 10.0;

/// One measured fault-rate point of the accuracy curve pair.
#[derive(Debug, Clone)]
pub struct RatePoint {
    /// The fault-mixture knob fed to [`FaultPlan::at_rate`].
    pub rate: f64,
    /// Trials run at this rate.
    pub trials: usize,
    /// Median 2D error with the quarantine on (hardened arm), meters.
    pub median_err_on_m: f64,
    /// Median 2D error with the quarantine off (permissive arm), meters.
    pub median_err_off_m: f64,
    /// Mean 2D error, hardened arm, meters.
    pub mean_err_on_m: f64,
    /// Mean 2D error, permissive arm, meters.
    pub mean_err_off_m: f64,
    /// Hardened-arm trials that produced no fix (penalty-scored).
    pub fails_on: usize,
    /// Permissive-arm trials that produced no fix (penalty-scored).
    pub fails_off: usize,
}

fn median(sorted: &[f64]) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let mid = sorted.len() / 2;
    if sorted.len() % 2 == 1 {
        sorted[mid]
    } else {
        (sorted[mid - 1] + sorted[mid]) / 2.0
    }
}

/// Run the robustness sweep. `quick` shrinks the per-rate trial count for
/// CI; the measured rates are identical either way.
pub fn run(quick: bool) -> Vec<RatePoint> {
    let trials = if quick { 6 } else { 30 };
    let rates = [0.0, 0.05, 0.1, 0.2, 0.3];
    let scenario = Scenario::paper_2d(Vec2::new(0.4, 1.8)).quick();

    rates
        .iter()
        .map(|&rate| {
            let plan = FaultPlan::at_rate(rate);
            let mut errs_on = Vec::with_capacity(trials);
            let mut errs_off = Vec::with_capacity(trials);
            let (mut fails_on, mut fails_off) = (0usize, 0usize);
            for t in 0..trials {
                // Stable per-trial seeds, disjoint across rates.
                let seed = 0xAB00 + ((rate * 100.0).round() as u64) * 1000 + t as u64;
                let Ok(ab) = run_trial_2d_ab(&scenario, &plan, seed) else {
                    // Shared-setup failure hits both arms identically.
                    fails_on += 1;
                    fails_off += 1;
                    errs_on.push(FAILED_FIX_PENALTY_M);
                    errs_off.push(FAILED_FIX_PENALTY_M);
                    continue;
                };
                match ab.hardened {
                    Ok(out) => errs_on.push(out.error.combined),
                    Err(_) => {
                        fails_on += 1;
                        errs_on.push(FAILED_FIX_PENALTY_M);
                    }
                }
                match ab.permissive {
                    Ok(out) => errs_off.push(out.error.combined),
                    Err(_) => {
                        fails_off += 1;
                        errs_off.push(FAILED_FIX_PENALTY_M);
                    }
                }
            }
            errs_on.sort_by(f64::total_cmp);
            errs_off.sort_by(f64::total_cmp);
            RatePoint {
                rate,
                trials,
                median_err_on_m: median(&errs_on),
                median_err_off_m: median(&errs_off),
                mean_err_on_m: errs_on.iter().sum::<f64>() / trials as f64,
                mean_err_off_m: errs_off.iter().sum::<f64>() / trials as f64,
                fails_on,
                fails_off,
            }
        })
        .collect()
}

/// Serialize results as the `tagspin-bench-robustness/v1` JSON document.
pub fn to_json(results: &[RatePoint]) -> String {
    let mut out =
        String::from("{\n  \"schema\": \"tagspin-bench-robustness/v1\",\n  \"cases\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"rate_{:03}\", \"fault_rate\": {:.2}, \"trials\": {}, \
             \"median_err_on_m\": {:.4}, \"median_err_off_m\": {:.4}, \
             \"mean_err_on_m\": {:.4}, \"mean_err_off_m\": {:.4}, \
             \"fails_on\": {}, \"fails_off\": {}}}{}\n",
            (r.rate * 100.0).round() as u32,
            r.rate,
            r.trials,
            r.median_err_on_m,
            r.median_err_off_m,
            r.mean_err_on_m,
            r.mean_err_off_m,
            r.fails_on,
            r.fails_off,
            if i + 1 < results.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Write the JSON document to `path`.
///
/// # Errors
///
/// Propagates the filesystem error when `path` is not writable.
pub fn write_json(path: &std::path::Path, results: &[RatePoint]) -> std::io::Result<()> {
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        std::fs::create_dir_all(dir)?;
    }
    std::fs::write(path, to_json(results))
}

/// One human-readable line per rate point.
pub fn report(results: &[RatePoint]) -> String {
    results
        .iter()
        .map(|r| {
            format!(
                "fault rate {:>4.0}%  quarantine on: median {:>6.1} cm (fails {}/{})  \
                 off: median {:>6.1} cm (fails {}/{})",
                r.rate * 100.0,
                r.median_err_on_m * 100.0,
                r.fails_on,
                r.trials,
                r.median_err_off_m * 100.0,
                r.fails_off,
                r.trials,
            )
        })
        .collect::<Vec<_>>()
        .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_is_well_formed_enough() {
        let cases = vec![
            RatePoint {
                rate: 0.0,
                trials: 6,
                median_err_on_m: 0.05,
                median_err_off_m: 0.05,
                mean_err_on_m: 0.06,
                mean_err_off_m: 0.06,
                fails_on: 0,
                fails_off: 0,
            },
            RatePoint {
                rate: 0.2,
                trials: 6,
                median_err_on_m: 0.08,
                median_err_off_m: 4.2,
                mean_err_on_m: 0.09,
                mean_err_off_m: 6.0,
                fails_on: 0,
                fails_off: 3,
            },
        ];
        let json = to_json(&cases);
        assert!(json.contains("\"schema\": \"tagspin-bench-robustness/v1\""));
        assert!(json.contains("\"name\": \"rate_000\""));
        assert!(json.contains("\"name\": \"rate_020\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(!report(&cases).is_empty());
    }

    #[test]
    fn median_of_even_and_odd() {
        assert!((median(&[1.0, 2.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((median(&[1.0, 3.0]) - 2.0).abs() < 1e-12);
        assert!(median(&[]).is_nan());
    }
}
