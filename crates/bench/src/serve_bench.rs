//! Closed-loop load benchmark for the `tagspin-serve` fleet daemon,
//! emitted as `BENCH_serve.json` (schema `tagspin-bench-serve/v1`).
//!
//! The loop is closed over the daemon's own wire surfaces: paced reader
//! threads stream framed LLRP reports over real loopback TCP, a query
//! thread measures `GET /fix/2d` latency over HTTP while the load runs,
//! and the drive settles by polling `GET /stats` until every sent frame
//! is on the books. Three cases:
//!
//! * `peak` — unthrottled readers against full-speed shards: the raw
//!   sustained ingest rate of the sharded service.
//! * `rated` — shard service time is pinned with an artificial per-batch
//!   delay ([`tagspin_serve::ServeConfig::shard_delay`]) and the readers
//!   are paced at **half** the resulting capacity. Below rated load the
//!   bounded queues must absorb everything: the shed rate is required to
//!   be exactly zero (a `cargo xtask bench-check` invariant).
//! * `overload_2x` — same pinned service time, readers paced at **2×**
//!   capacity with small queues. Shedding is the designed behavior, and
//!   the p99 fix latency must stay bounded (queries ride the same shard
//!   queues; a full queue may delay a fix but never starve it).
//!
//! Like the sibling benches the JSON is hand-rolled and timing is
//! `Instant`-based; `quick` shrinks readers and capture length for CI.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::f64::consts::TAU;
use std::time::{Duration, Instant};
use tagspin_core::prelude::*;
use tagspin_epc::inventory::{run_inventory, ReaderConfig, Transponder};
use tagspin_epc::InventoryLog;
use tagspin_geom::{Pose, Vec3};
use tagspin_rf::channel::Environment;
use tagspin_rf::{ReaderAntenna, TagInstance, TagModel};
use tagspin_serve::{http_get, ReaderClient, ServeConfig, ServeDaemon};

/// Reports per wire frame in the generated load.
const FRAME_REPORTS: usize = 64;
/// Artificial shard service time per batch for the paced cases; pins the
/// service capacity so "rated" and "2× overload" are well-defined.
const SERVICE_DELAY: Duration = Duration::from_millis(10);
/// Minimum fix-latency samples per case (topped up after the drive if the
/// in-flight query loop came up short on a fast machine).
const MIN_FIXES: usize = 16;

/// One measured load case.
#[derive(Debug, Clone)]
pub struct CaseResult {
    /// Stable case identifier (`peak`, `rated`, `overload_2x`).
    pub name: String,
    /// Concurrent reader connections driven.
    pub readers: usize,
    /// Shard worker threads in the daemon under test.
    pub shards: usize,
    /// Bounded shard-queue capacity, in batches.
    pub queue_capacity: usize,
    /// Reports offered on the wire across all readers.
    pub reports_sent: u64,
    /// Reports accepted into shard queues.
    pub reports_accepted: u64,
    /// Reports shed as typed `Overload` rejects.
    pub reports_shed: u64,
    /// `reports_shed / reports_sent`.
    pub shed_rate: f64,
    /// Accepted reports per wall-clock second, connection to drained.
    pub sustained_reports_per_sec: f64,
    /// Fix queries answered while the load ran.
    pub fixes: usize,
    /// Median `GET /fix/2d` round-trip, nanoseconds.
    pub p50_fix_latency_ns: f64,
    /// 99th-percentile `GET /fix/2d` round-trip, nanoseconds.
    pub p99_fix_latency_ns: f64,
}

/// The fleet fixture: two registered disks and one framed report stream
/// per reader, captured from a ring of antennas around the rig.
pub fn fleet_fixture(readers: u8, rotations: f64) -> (LocalizationServer, Vec<Vec<InventoryLog>>) {
    let mut rng = StdRng::seed_from_u64(7);
    let d1 = DiskConfig::paper_default(Vec3::new(-0.3, 0.0, 0.0));
    let d2 = DiskConfig::paper_default(Vec3::new(0.3, 0.0, 0.0));
    let t1 = SpinningTag::new(d1, TagInstance::manufacture(TagModel::DEFAULT, 1, &mut rng));
    let t2 = SpinningTag::new(d2, TagInstance::manufacture(TagModel::DEFAULT, 2, &mut rng));
    let mut server = LocalizationServer::new(PipelineConfig::default());
    // lint:allow(no-panic) fixed distinct EPCs cannot collide
    server.register(1, d1).expect("distinct epcs");
    // lint:allow(no-panic) fixed distinct EPCs cannot collide
    server.register(2, d2).expect("distinct epcs");

    let streams = (1..=readers)
        .map(|antenna| {
            let angle = f64::from(antenna) / f64::from(readers) * TAU;
            let pos = Vec3::new(1.7 * angle.cos(), 1.7 * angle.sin(), 0.0);
            let reader = ReaderConfig::at(Pose::facing_toward(pos, Vec3::ZERO))
                .with_antenna(ReaderAntenna::typical(antenna));
            let mut run_rng = StdRng::seed_from_u64(900 + u64::from(antenna));
            let log = run_inventory(
                &Environment::paper_default(),
                &reader,
                &[&t1 as &dyn Transponder, &t2 as &dyn Transponder],
                d1.period_s() * rotations,
                &mut run_rng,
            );
            log.reports()
                .chunks(FRAME_REPORTS)
                .map(|chunk| chunk.iter().copied().collect())
                .collect()
        })
        .collect();
    (server, streams)
}

/// Nearest-rank percentile of an unsorted nanosecond sample.
fn percentile_ns(samples: &mut [f64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_by(f64::total_cmp);
    // lint:allow(lossy-cast) sample counts are far below 2^53
    let rank = (p / 100.0 * (samples.len() - 1) as f64).round() as usize;
    samples[rank.min(samples.len() - 1)]
}

/// Drive one case: stream every reader's frames (optionally paced),
/// query fixes concurrently, settle via `/stats`, drain, and account.
fn run_case(
    name: &str,
    server: LocalizationServer,
    streams: &[Vec<InventoryLog>],
    config: &ServeConfig,
    pace: Option<Duration>,
) -> CaseResult {
    // lint:allow(no-panic) loopback listeners bind or the bench is moot
    let daemon = ServeDaemon::start(server, config).expect("daemon boots on loopback");
    let frames_sent: u64 = streams.iter().map(|f| f.len() as u64).sum();
    let reports_sent: u64 = streams.iter().flatten().map(|f| f.len() as u64).sum();
    let readers = streams.len();
    let http_addr = daemon.http_addr();
    let ingest_addr = daemon.ingest_addr();

    let t0 = Instant::now();
    let mut latencies: Vec<f64> = Vec::new();
    let driving = std::sync::atomic::AtomicBool::new(true);
    std::thread::scope(|scope| {
        let driving = &driving;
        for frames in streams {
            scope.spawn(move || {
                // lint:allow(no-panic) loopback connects or the bench is moot
                let mut client = ReaderClient::connect(ingest_addr).expect("reader connects");
                for frame in frames {
                    // lint:allow(no-panic) loopback writes or the bench is moot
                    client.send_log(frame).expect("frame sends");
                    if let Some(gap) = pace {
                        std::thread::sleep(gap);
                    }
                }
                let _ = client.finish();
            });
        }
        let fix_latencies = scope.spawn(move || {
            let mut samples = Vec::new();
            let mut antenna: u64 = 0;
            // ordering: relaxed — stop flag for a measurement loop; no data published through it
            while driving.load(std::sync::atomic::Ordering::Relaxed) {
                antenna += 1;
                // lint:allow(lossy-cast) modulo keeps the value in 1..=readers
                let target = (antenna % readers as u64 + 1) as u8;
                let q0 = Instant::now();
                if http_get(http_addr, &format!("/fix/2d?antenna={target}")).is_ok() {
                    samples.push(q0.elapsed().as_nanos() as f64);
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            samples
        });
        // The readers' scope-joins close the drive; settle the books, then
        // release the query thread.
        let daemon = &daemon;
        scope.spawn(move || {
            // (runs concurrently with readers; waits for frames to land)
            for _ in 0..4000 {
                let done = daemon.stats().frames + daemon.stats().frame_errors >= frames_sent;
                if done {
                    break;
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            daemon.drain();
            // ordering: Relaxed — same stop flag as above.
            driving.store(false, std::sync::atomic::Ordering::Relaxed);
        });
        // lint:allow(no-panic) the sampling thread only pushes to a Vec
        latencies = fix_latencies.join().expect("query thread");
    });
    let elapsed_s = t0.elapsed().as_secs_f64();

    // Top up the latency sample after the drive if the run was too short
    // for the in-flight loop to gather a stable percentile.
    while latencies.len() < MIN_FIXES {
        // lint:allow(lossy-cast) modulo keeps the value in 1..=readers
        let target = (latencies.len() % readers + 1) as u8;
        let q0 = Instant::now();
        if http_get(http_addr, &format!("/fix/2d?antenna={target}")).is_ok() {
            latencies.push(q0.elapsed().as_nanos() as f64);
        }
    }

    let stats = daemon.stats();
    daemon.shutdown();
    let fixes = latencies.len();
    let p50 = percentile_ns(&mut latencies, 50.0);
    let p99 = percentile_ns(&mut latencies, 99.0);
    CaseResult {
        name: name.to_string(),
        readers,
        shards: config.shards,
        queue_capacity: config.queue_capacity,
        reports_sent,
        reports_accepted: stats.reports_enqueued,
        reports_shed: stats.reports_shed,
        // lint:allow(lossy-cast) report counts are far below 2^53
        shed_rate: stats.reports_shed as f64 / (reports_sent as f64).max(1.0),
        // lint:allow(lossy-cast) report counts are far below 2^53
        sustained_reports_per_sec: stats.reports_enqueued as f64 / elapsed_s.max(1e-9),
        fixes,
        p50_fix_latency_ns: p50,
        p99_fix_latency_ns: p99,
    }
}

/// Run the serve load suite. `quick` shrinks the fleet and the capture
/// for CI; the three cases and their invariants are identical either way.
pub fn run(quick: bool) -> Vec<CaseResult> {
    let (readers, rotations) = if quick { (4u8, 0.25) } else { (8u8, 1.0) };
    let shards = 2;
    // Pinned service capacity for the paced cases, in batches/second
    // across all shards.
    let capacity = shards as f64 / SERVICE_DELAY.as_secs_f64();
    // Per-reader inter-frame gap hitting `fraction × capacity` overall.
    let gap_for =
        |fraction: f64| Duration::from_secs_f64(f64::from(readers) / (fraction * capacity));

    // Bounded windows are the serving configuration: a fix query runs on
    // the shard thread, and an unbounded window would let its recompute
    // cost grow with the capture and eat the pinned service capacity.
    let window = WindowConfig::last_reports(256);
    let peak = {
        let (server, streams) = fleet_fixture(readers, rotations);
        let config = ServeConfig {
            shards,
            queue_capacity: 4096,
            window,
            ..ServeConfig::default()
        };
        run_case("peak", server, &streams, &config, None)
    };
    let rated = {
        let (server, streams) = fleet_fixture(readers, rotations);
        let config = ServeConfig {
            shards,
            queue_capacity: 16,
            window,
            shard_delay: Some(SERVICE_DELAY),
            ..ServeConfig::default()
        };
        run_case("rated", server, &streams, &config, Some(gap_for(0.5)))
    };
    let overload = {
        let (server, streams) = fleet_fixture(readers, rotations);
        let config = ServeConfig {
            shards,
            queue_capacity: if quick { 4 } else { 16 },
            window,
            shard_delay: Some(SERVICE_DELAY),
            ..ServeConfig::default()
        };
        run_case("overload_2x", server, &streams, &config, Some(gap_for(2.0)))
    };
    vec![peak, rated, overload]
}

/// Serialize results as the `tagspin-bench-serve/v1` JSON document.
pub fn to_json(results: &[CaseResult]) -> String {
    let mut out = String::from("{\n  \"schema\": \"tagspin-bench-serve/v1\",\n  \"cases\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"readers\": {}, \"shards\": {}, \
             \"queue_capacity\": {}, \"reports_sent\": {}, \
             \"reports_accepted\": {}, \"reports_shed\": {}, \
             \"shed_rate\": {:.4}, \"sustained_reports_per_sec\": {:.0}, \
             \"fixes\": {}, \"p50_fix_latency_ns\": {:.0}, \
             \"p99_fix_latency_ns\": {:.0}}}{}\n",
            r.name,
            r.readers,
            r.shards,
            r.queue_capacity,
            r.reports_sent,
            r.reports_accepted,
            r.reports_shed,
            r.shed_rate,
            r.sustained_reports_per_sec,
            r.fixes,
            r.p50_fix_latency_ns,
            r.p99_fix_latency_ns,
            if i + 1 < results.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Write the JSON document to `path`.
///
/// # Errors
///
/// Propagates the filesystem error when `path` is not writable.
pub fn write_json(path: &std::path::Path, results: &[CaseResult]) -> std::io::Result<()> {
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        std::fs::create_dir_all(dir)?;
    }
    std::fs::write(path, to_json(results))
}

/// One human-readable line per case.
pub fn report(results: &[CaseResult]) -> String {
    results
        .iter()
        .map(|r| {
            format!(
                "{:<12} {} readers / {} shards (queue {:>4})  \
                 {:>7} sent  {:>7} accepted  {:>6} shed ({:>5.1}%)  \
                 {:>8.0} reports/s  fix p50 {:>7.2} ms  p99 {:>7.2} ms",
                r.name,
                r.readers,
                r.shards,
                r.queue_capacity,
                r.reports_sent,
                r.reports_accepted,
                r.reports_shed,
                r.shed_rate * 100.0,
                r.sustained_reports_per_sec,
                r.p50_fix_latency_ns / 1e6,
                r.p99_fix_latency_ns / 1e6,
            )
        })
        .collect::<Vec<_>>()
        .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_is_well_formed_enough() {
        let cases = vec![
            CaseResult {
                name: "rated".into(),
                readers: 8,
                shards: 2,
                queue_capacity: 16,
                reports_sent: 23000,
                reports_accepted: 23000,
                reports_shed: 0,
                shed_rate: 0.0,
                sustained_reports_per_sec: 6200.0,
                fixes: 120,
                p50_fix_latency_ns: 9.0e6,
                p99_fix_latency_ns: 4.1e7,
            },
            CaseResult {
                name: "overload_2x".into(),
                readers: 8,
                shards: 2,
                queue_capacity: 16,
                reports_sent: 23000,
                reports_accepted: 12000,
                reports_shed: 11000,
                shed_rate: 0.478,
                sustained_reports_per_sec: 11000.0,
                fixes: 80,
                p50_fix_latency_ns: 6.0e7,
                p99_fix_latency_ns: 2.0e8,
            },
        ];
        let json = to_json(&cases);
        assert!(json.contains("\"schema\": \"tagspin-bench-serve/v1\""));
        assert!(json.contains("\"name\": \"rated\""));
        assert!(json.contains("\"shed_rate\": 0.0000"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn fixture_frames_are_monotonic_and_capped() {
        let (server, streams) = fleet_fixture(3, 0.05);
        assert_eq!(server.tags().len(), 2);
        assert_eq!(streams.len(), 3);
        for frames in &streams {
            assert!(!frames.is_empty());
            for frame in frames {
                assert!(frame.len() <= FRAME_REPORTS);
                assert!(frame
                    .reports()
                    .windows(2)
                    .all(|w| w[1].timestamp_us >= w[0].timestamp_us));
            }
        }
    }

    #[test]
    fn percentiles_are_nearest_rank() {
        let mut s: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile_ns(&mut s, 50.0), 51.0);
        assert_eq!(percentile_ns(&mut s, 99.0), 99.0);
        assert_eq!(percentile_ns(&mut [], 99.0), 0.0);
    }
}
