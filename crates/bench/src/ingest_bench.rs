//! Machine-readable streaming-ingest benchmark: session ingest throughput
//! and fix-refresh latency versus sliding-window size, emitted as
//! `BENCH_ingest.json` (schema `tagspin-bench-ingest/v1`).
//!
//! The question this artifact answers: how fast can a [`ReaderSession`]
//! drain an LLRP report stream, and how expensive is a fix refresh once the
//! window bounds the per-tag buffers? Smaller windows mean fewer snapshots
//! per spectrum and therefore cheaper refreshes — the artifact quantifies
//! that trade against the unbounded (batch-equivalent) window.
//!
//! Like `spectrum_bench`, the JSON is hand-rolled (no serde_json in the
//! vendored set) and the timing loop is `Instant`-based so the criterion
//! stand-in's lack of programmatic means does not matter.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;
use tagspin_core::prelude::*;
use tagspin_epc::inventory::{run_inventory, ReaderConfig, Transponder};
use tagspin_epc::{InventoryLog, TagReport};
use tagspin_geom::{Pose, Vec3};
use tagspin_rf::channel::Environment;
use tagspin_rf::{TagInstance, TagModel};

/// One measured window configuration.
#[derive(Debug, Clone)]
pub struct CaseResult {
    /// Stable case identifier (e.g. `window_256`).
    pub name: String,
    /// Count bound of the window (`None` = unbounded, the batch-equivalent
    /// configuration).
    pub max_reports: Option<usize>,
    /// Reports ingested during the throughput measurement.
    pub reports: usize,
    /// Mean wall-clock nanoseconds per ingested report.
    pub mean_ingest_ns: f64,
    /// Ingest throughput, reports per second.
    pub reports_per_sec: f64,
    /// Mean wall-clock nanoseconds per fix refresh (a small burst of new
    /// reports dirties every stream, then `fix_2d` recomputes them).
    pub mean_fix_refresh_ns: f64,
    /// Snapshots buffered across all streams after the full ingest — shows
    /// the window actually bounding memory.
    pub buffered: usize,
}

/// The two-tag streaming fixture: a server with the paper-default disks at
/// (±30 cm, 0) and a simulated inventory log from a reader at 2 m.
pub fn streaming_fixture(rotations: f64, seed: u64) -> (LocalizationServer, InventoryLog) {
    let mut rng = StdRng::seed_from_u64(seed);
    let d1 = DiskConfig::paper_default(Vec3::new(-0.3, 0.0, 0.0));
    let d2 = DiskConfig::paper_default(Vec3::new(0.3, 0.0, 0.0));
    let t1 = SpinningTag::new(d1, TagInstance::manufacture(TagModel::DEFAULT, 1, &mut rng));
    let t2 = SpinningTag::new(d2, TagInstance::manufacture(TagModel::DEFAULT, 2, &mut rng));
    let reader = ReaderConfig::at(Pose::facing_toward(Vec3::new(0.4, 2.0, 0.0), Vec3::ZERO));
    let log = run_inventory(
        &Environment::paper_default(),
        &reader,
        &[&t1 as &dyn Transponder, &t2 as &dyn Transponder],
        d1.period_s() * rotations,
        &mut rng,
    );
    let mut server = LocalizationServer::new(PipelineConfig::default());
    // lint:allow(no-panic) fixed distinct EPCs cannot collide
    server.register(1, d1).expect("distinct epcs");
    // lint:allow(no-panic) fixed distinct EPCs cannot collide
    server.register(2, d2).expect("distinct epcs");
    (server, log)
}

/// A synthetic continuation of `log`: `n` fresh reports, alternating EPCs,
/// with strictly advancing timestamps. Used to dirty the streams between
/// fix refreshes without exhausting the recorded log.
fn continuation(log: &InventoryLog, n: usize) -> Vec<TagReport> {
    let mut t_us = log.reports().last().map_or(0, |r| r.timestamp_us);
    (0..n)
        .map(|i| {
            t_us += 5_000;
            TagReport {
                epc: (i % 2 + 1) as u128,
                timestamp_us: t_us,
                phase: tagspin_geom::angle::wrap_tau(i as f64 * 0.37),
                rssi_dbm: -60.0,
                channel_index: (i % 16) as u8,
                antenna_id: 1,
            }
        })
        .collect()
}

/// Run the ingest benchmark suite. `quick` shrinks the observation and
/// refresh counts for CI; the measured window configurations are identical
/// either way.
pub fn run(quick: bool) -> Vec<CaseResult> {
    let (rotations, refreshes) = if quick { (0.5, 3u32) } else { (2.0, 10u32) };
    let (server, log) = streaming_fixture(rotations, 7);
    let windows: [(String, Option<usize>); 4] = [
        ("window_unbounded".into(), None),
        ("window_1024".into(), Some(1024)),
        ("window_256".into(), Some(256)),
        ("window_64".into(), Some(64)),
    ];

    windows
        .into_iter()
        .map(|(name, max_reports)| {
            let window = match max_reports {
                Some(n) => WindowConfig::last_reports(n),
                None => WindowConfig::unbounded(),
            };

            // Throughput: drain the whole recorded log report-by-report.
            let mut session = server.session(window);
            let t0 = Instant::now();
            for report in log.stream() {
                session.ingest(report);
            }
            let ingest_ns = t0.elapsed().as_nanos() as f64;
            let reports = log.len();
            let mean_ingest_ns = ingest_ns / reports.max(1) as f64;
            let reports_per_sec = if ingest_ns > 0.0 {
                reports as f64 / (ingest_ns * 1e-9)
            } else {
                0.0
            };

            // Refresh latency: a small burst dirties both streams, then the
            // fix refreshes exactly the dirty tags over the current window.
            // Two warmup fixes, not one: the first is the legacy fresh
            // recompute that satisfies `engage_after_recomputes`, the second
            // pays the incremental path's one-time anchor rebuild. The timed
            // fixes then measure the steady-state accumulator sync.
            let burst = continuation(&log, (refreshes as usize + 2) * 2);
            let mut chunks = burst.chunks_exact(2);
            for warmup in chunks.by_ref().take(2) {
                for r in warmup {
                    session.ingest(r);
                }
                let _ = session.fix_2d();
            }
            let mut fix_ns = 0.0;
            let mut timed = 0u32;
            for chunk in chunks.take(refreshes as usize) {
                for r in chunk {
                    session.ingest(r);
                }
                let t0 = Instant::now();
                let _ = session.fix_2d();
                fix_ns += t0.elapsed().as_nanos() as f64;
                timed += 1;
            }
            let mean_fix_refresh_ns = fix_ns / f64::from(timed.max(1));

            CaseResult {
                name,
                max_reports,
                reports,
                mean_ingest_ns,
                reports_per_sec,
                mean_fix_refresh_ns,
                buffered: session.stats().buffered,
            }
        })
        .collect()
}

/// Serialize results as the `tagspin-bench-ingest/v1` JSON document.
pub fn to_json(results: &[CaseResult]) -> String {
    let mut out = String::from("{\n  \"schema\": \"tagspin-bench-ingest/v1\",\n  \"cases\": [\n");
    for (i, r) in results.iter().enumerate() {
        let max_reports = match r.max_reports {
            Some(n) => n.to_string(),
            None => "null".into(),
        };
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"max_reports\": {}, \"reports\": {}, \
             \"mean_ingest_ns\": {:.0}, \"reports_per_sec\": {:.0}, \
             \"mean_fix_refresh_ns\": {:.0}, \"buffered\": {}}}{}\n",
            r.name,
            max_reports,
            r.reports,
            r.mean_ingest_ns,
            r.reports_per_sec,
            r.mean_fix_refresh_ns,
            r.buffered,
            if i + 1 < results.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Write the JSON document to `path`.
///
/// # Errors
///
/// Propagates the filesystem error when `path` is not writable.
pub fn write_json(path: &std::path::Path, results: &[CaseResult]) -> std::io::Result<()> {
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        std::fs::create_dir_all(dir)?;
    }
    std::fs::write(path, to_json(results))
}

/// One human-readable line per case.
pub fn report(results: &[CaseResult]) -> String {
    results
        .iter()
        .map(|r| {
            let window = match r.max_reports {
                Some(n) => n.to_string(),
                None => "∞".into(),
            };
            format!(
                "{:<18} window {:>5}  ingest {:>7.0} ns/report ({:>9.0} reports/s)  \
                 fix refresh {:>9.2} ms  buffered {:>5}",
                r.name,
                window,
                r.mean_ingest_ns,
                r.reports_per_sec,
                r.mean_fix_refresh_ns / 1e6,
                r.buffered
            )
        })
        .collect::<Vec<_>>()
        .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_is_well_formed_enough() {
        let cases = vec![
            CaseResult {
                name: "window_unbounded".into(),
                max_reports: None,
                reports: 500,
                mean_ingest_ns: 120.0,
                reports_per_sec: 8.3e6,
                mean_fix_refresh_ns: 2.5e6,
                buffered: 500,
            },
            CaseResult {
                name: "window_64".into(),
                max_reports: Some(64),
                reports: 500,
                mean_ingest_ns: 130.0,
                reports_per_sec: 7.7e6,
                mean_fix_refresh_ns: 0.4e6,
                buffered: 128,
            },
        ];
        let json = to_json(&cases);
        assert!(json.contains("\"schema\": \"tagspin-bench-ingest/v1\""));
        assert!(json.contains("\"max_reports\": null"));
        assert!(json.contains("\"max_reports\": 64"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn fixture_and_continuation_are_usable() {
        let (server, log) = streaming_fixture(0.1, 3);
        assert_eq!(server.tags().len(), 2);
        assert!(!log.is_empty());
        let cont = continuation(&log, 4);
        assert_eq!(cont.len(), 4);
        assert!(cont
            .windows(2)
            .all(|w| w[1].timestamp_us > w[0].timestamp_us));
        assert!(cont[0].timestamp_us > log.reports().last().unwrap().timestamp_us);
    }
}
