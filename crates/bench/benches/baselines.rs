//! Criterion benchmarks for the baseline localizers (Table 2 comparators).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use tagspin_baselines::{dtw, AntLoc, BackPos, Bounds2D, Landmarc, PinIt, ReferenceProfile};
use tagspin_geom::{Vec2, Vec3};

fn refs_grid() -> Vec<Vec3> {
    let mut v = Vec::new();
    for ix in -1..=1 {
        for iy in 0..3 {
            v.push(Vec3::new(ix as f64, 0.5 + iy as f64, 0.0));
        }
    }
    v
}

fn bench_landmarc(c: &mut Criterion) {
    let mut group = c.benchmark_group("baseline_landmarc");
    let predict =
        |reader: Vec3, tag: Vec3| -> f64 { -40.0 - 20.0 * reader.distance(tag).max(0.05).log10() };
    let truth = Vec3::new(0.4, 1.5, 0.0);
    let measured: Vec<f64> = refs_grid().iter().map(|&t| predict(truth, t)).collect();
    for &step in &[0.2f64, 0.1, 0.05] {
        let lm = Landmarc {
            grid_step: step,
            ..Landmarc::new(refs_grid(), Bounds2D::paper_room())
        };
        group.bench_with_input(
            BenchmarkId::from_parameter((step * 100.0) as u32),
            &lm,
            |b, lm| b.iter(|| lm.locate(black_box(&measured), predict).expect("fix")),
        );
    }
    group.finish();
}

fn bench_antloc(c: &mut Criterion) {
    let al = AntLoc::new(refs_grid(), 30.0, 2.0);
    let truth = Vec2::new(0.3, 1.2);
    let thresholds: Vec<f64> = al
        .references
        .iter()
        .map(|t| 30.0 - 20.0 * t.distance(truth.with_z(0.0)).log10())
        .collect();
    c.bench_function("baseline_antloc_locate", |b| {
        b.iter(|| al.locate(black_box(&thresholds)).expect("fix"))
    });
}

fn bench_dtw(c: &mut Criterion) {
    let mut group = c.benchmark_group("baseline_dtw");
    for &n in &[90usize, 180, 360] {
        let a: Vec<f64> = (0..n).map(|i| (i as f64 * 0.1).sin()).collect();
        let bv: Vec<f64> = (0..n).map(|i| (i as f64 * 0.1 + 0.4).sin()).collect();
        group.bench_with_input(BenchmarkId::new("full", n), &n, |bch, _| {
            bch.iter(|| dtw(black_box(&a), black_box(&bv)))
        });
        group.bench_with_input(BenchmarkId::new("banded", n), &n, |bch, _| {
            bch.iter(|| tagspin_baselines::pinit::dtw_banded(black_box(&a), black_box(&bv), n / 8))
        });
    }
    group.finish();
}

fn bench_pinit(c: &mut Criterion) {
    let bins = 180;
    let profile_for = |pos: Vec2| -> Vec<f64> {
        let bearing = pos.bearing();
        (0..bins)
            .map(|i| {
                let phi = i as f64 * std::f64::consts::TAU / bins as f64;
                let mut d = (phi - bearing).abs();
                if d > std::f64::consts::PI {
                    d = std::f64::consts::TAU - d;
                }
                (1.0 / (1.0 + pos.norm())) * (-(d / 0.3).powi(2)).exp()
            })
            .collect()
    };
    let refs: Vec<ReferenceProfile> = (0..24)
        .map(|i| {
            let p = Vec2::new((i % 6) as f64 * 0.5 - 1.25, 0.5 + (i / 6) as f64 * 0.5);
            ReferenceProfile {
                position: p,
                profile: profile_for(p),
            }
        })
        .collect();
    let pinit = PinIt::new(refs, 3);
    let target = profile_for(Vec2::new(0.3, 1.3));
    c.bench_function("baseline_pinit_locate_24refs", |b| {
        b.iter(|| pinit.locate(black_box(&target)).expect("fix"))
    });
}

fn bench_backpos(c: &mut Criterion) {
    let mut group = c.benchmark_group("baseline_backpos");
    group.sample_size(10);
    let lambda = 0.325;
    let refs = vec![
        Vec3::new(-1.2, -0.8, 0.0),
        Vec3::new(1.2, -0.8, 0.0),
        Vec3::new(1.2, 1.2, 0.0),
        Vec3::new(-1.2, 1.2, 0.0),
        Vec3::new(0.0, 0.3, 0.0),
    ];
    let truth = Vec2::new(0.35, -0.4);
    let k = 4.0 * std::f64::consts::PI / lambda;
    let phases: Vec<f64> = refs
        .iter()
        .map(|t| tagspin_geom::angle::wrap_tau(k * t.distance(truth.with_z(0.0))))
        .collect();
    let bp = BackPos::new(
        refs,
        lambda,
        Bounds2D::new(Vec2::new(-2.0, -2.0), Vec2::new(2.0, 2.0)),
    );
    group.bench_function("locate", |b| {
        b.iter(|| bp.locate(black_box(&phases)).expect("fix"))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_landmarc,
    bench_antloc,
    bench_dtw,
    bench_pinit,
    bench_backpos
);
criterion_main!(benches);
