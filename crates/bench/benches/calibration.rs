//! Criterion benchmarks for the calibration stages (Figs. 3–5, 11):
//! smoothing, Fourier fitting and offset application.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use tagspin_bench::synthetic_snapshots;
use tagspin_core::calib::diversity::{relative_phases, smooth};
use tagspin_core::calib::orientation::OrientationCalibration;
use tagspin_core::snapshot::{Snapshot, SnapshotSet};
use tagspin_core::spinning::DiskConfig;
use tagspin_dsp::fourier::FourierSeries;
use tagspin_geom::Vec3;
use tagspin_rf::OrientationPhase;

/// A center-spin capture carrying a hidden ψ — the Fourier-fit workload.
fn center_capture(n: usize) -> SnapshotSet {
    let disk = DiskConfig::paper_default(Vec3::ZERO);
    let psi = OrientationPhase::template(0.7);
    SnapshotSet::from_snapshots(
        (0..n)
            .map(|i| {
                let t = i as f64 * disk.period_s() * 1.3 / n as f64;
                Snapshot {
                    t_s: t,
                    phase: tagspin_geom::angle::wrap_tau(2.0 + psi.eval(disk.disk_angle(t))),
                    disk_angle: disk.disk_angle(t),
                    lambda: 0.325,
                    rssi_dbm: -60.0,
                }
            })
            .collect(),
    )
}

fn bench_smoothing(c: &mut Criterion) {
    let mut group = c.benchmark_group("calibration_smooth");
    for &n in &[100usize, 1000, 10_000] {
        let set = synthetic_snapshots(Vec3::new(0.0, 2.0, 0.0), n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &set, |b, set| {
            b.iter(|| smooth(black_box(set)))
        });
    }
    group.finish();
}

fn bench_relative_phases(c: &mut Criterion) {
    let set = synthetic_snapshots(Vec3::new(0.0, 2.0, 0.0), 1000);
    c.bench_function("calibration_relative_phases_1000", |b| {
        b.iter(|| relative_phases(black_box(&set), 0))
    });
}

fn bench_orientation_fit(c: &mut Criterion) {
    let mut group = c.benchmark_group("calibration_orientation_fit");
    for &n in &[200usize, 800, 3200] {
        let set = center_capture(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &set, |b, set| {
            b.iter(|| OrientationCalibration::fit(black_box(set)).expect("fits"))
        });
    }
    group.finish();
}

fn bench_orientation_apply(c: &mut Criterion) {
    let cal = OrientationCalibration::fit(&center_capture(800)).expect("fits");
    let set = synthetic_snapshots(Vec3::new(0.0, 2.0, 0.0), 800);
    c.bench_function("calibration_orientation_apply_800", |b| {
        b.iter(|| cal.apply(black_box(&set)))
    });
}

fn bench_fourier_orders(c: &mut Criterion) {
    // Cost of the least-squares fit vs series order (the ablation knob of
    // Section III-B).
    let mut group = c.benchmark_group("calibration_fourier_order");
    let samples: Vec<(f64, f64)> = (0..720)
        .map(|i| {
            let rho = i as f64 * std::f64::consts::TAU / 720.0;
            (rho, 0.35 * rho.cos() + 0.1 * (2.0 * rho).sin())
        })
        .collect();
    for &order in &[1usize, 3, 6, 10] {
        group.bench_with_input(BenchmarkId::from_parameter(order), &order, |b, &order| {
            b.iter(|| FourierSeries::fit(black_box(&samples), order).expect("fits"))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_smoothing,
    bench_relative_phases,
    bench_orientation_fit,
    bench_orientation_apply,
    bench_fourier_orders
);
criterion_main!(benches);
