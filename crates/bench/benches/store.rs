//! Cold-vs-warm boot benchmark for the calibration store.
//!
//! Like the serve bench this one has no criterion micro-timings: each
//! case is one whole-boot measurement (prewarm a batch of steering
//! tables through a store-attached engine), so the suite in
//! `store_bench` *is* the measurement. It emits the machine-readable
//! `BENCH_store.json` artifact (schema `tagspin-bench-store/v1`):
//! cold/warm boot time, store hit/persist counters, and the zero-by-
//! construction fix bit-mismatch count. Set `TAGSPIN_BENCH_STORE_JSON`
//! to move the artifact, `TAGSPIN_BENCH_QUICK=1` to shrink the grids
//! (CI).

use tagspin_bench::store_bench;

fn main() {
    let quick = std::env::var_os("TAGSPIN_BENCH_QUICK").is_some_and(|v| v == "1");
    let results = store_bench::run(quick);
    println!("calibration store (cold vs warm boot):");
    println!("{}", store_bench::report(&results));
    let path = std::env::var_os("TAGSPIN_BENCH_STORE_JSON")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("BENCH_store.json"));
    match store_bench::write_json(&path, &results) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}
