//! Criterion benchmarks for the substrate layers: RF channel evaluation,
//! EPC inventory simulation, LLRP encode/decode, DSP kernels.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use tagspin_bench::bench_inventory;
use tagspin_dsp::lstsq::{self, Matrix};
use tagspin_dsp::unwrap;
use tagspin_epc::llrp::{decode_report, encode_report};
use tagspin_geom::Vec2;
use tagspin_geom::{Pose, Vec3};
use tagspin_rf::channel::{measure, Environment};
use tagspin_rf::constants::DEFAULT_CARRIER_HZ;
use tagspin_rf::multipath::room_walls;
use tagspin_rf::{ReaderAntenna, TagInstance, TagModel};

fn bench_channel_measure(c: &mut Criterion) {
    let mut group = c.benchmark_group("rf_measure");
    let reader = Pose::facing_toward(Vec3::new(2.0, 0.0, 0.0), Vec3::ZERO);
    let antenna = ReaderAntenna::typical(1);
    let tag = TagInstance::ideal(TagModel::DEFAULT, 1);
    let anechoic = Environment::paper_default();
    let office = Environment::office(room_walls(Vec2::new(-3.0, -4.5), 6.0, 9.0, 0.3));
    group.bench_function("anechoic", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| {
            measure(
                black_box(&anechoic),
                reader,
                &antenna,
                &tag,
                Vec3::ZERO,
                0.3,
                DEFAULT_CARRIER_HZ,
                &mut rng,
            )
        })
    });
    group.bench_function("office_4_walls", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| {
            measure(
                black_box(&office),
                reader,
                &antenna,
                &tag,
                Vec3::ZERO,
                0.3,
                DEFAULT_CARRIER_HZ,
                &mut rng,
            )
        })
    });
    group.finish();
}

fn bench_inventory_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("epc_inventory");
    group.sample_size(10);
    for &rot in &[0.25f64, 1.0] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{rot}rot")),
            &rot,
            |b, &rot| b.iter(|| bench_inventory(black_box(rot), 7)),
        );
    }
    group.finish();
}

fn bench_llrp(c: &mut Criterion) {
    let (log, _) = bench_inventory(1.0, 3);
    let bytes = encode_report(&log, 1);
    let mut group = c.benchmark_group("epc_llrp");
    group.bench_function(format!("encode_{}_reads", log.len()), |b| {
        b.iter(|| encode_report(black_box(&log), 1))
    });
    group.bench_function(format!("decode_{}_reads", log.len()), |b| {
        b.iter(|| decode_report(black_box(bytes.clone())).expect("valid"))
    });
    group.finish();
}

fn bench_dsp_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("dsp");
    let phases: Vec<f64> = (0..10_000)
        .map(|i| tagspin_geom::angle::wrap_tau(0.03 * i as f64))
        .collect();
    group.bench_function("unwrap_10k", |b| {
        b.iter(|| unwrap::unwrap(black_box(&phases)))
    });
    // A 360×7 Fourier-design least squares, the calibration fit's shape.
    let a = Matrix::from_fn(360, 7, |r, col| {
        let rho = r as f64 * std::f64::consts::TAU / 360.0;
        match col {
            0 => 1.0,
            c if c % 2 == 1 => (c.div_ceil(2) as f64 * rho).cos(),
            c => ((c / 2) as f64 * rho).sin(),
        }
    });
    let x_true = [0.1, 0.3, -0.2, 0.05, 0.02, -0.01, 0.0];
    let b_vec = a.mul_vec(&x_true);
    group.bench_function("lstsq_360x7", |bch| {
        bch.iter(|| lstsq::solve(black_box(&a), black_box(&b_vec)).expect("solves"))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_channel_measure,
    bench_inventory_sim,
    bench_llrp,
    bench_dsp_kernels
);
criterion_main!(benches);
