//! Criterion benchmarks for the streaming session front-end: per-report
//! ingest cost and fix-refresh latency under bounded windows.
//!
//! Besides the criterion-style console output, this bench emits the
//! machine-readable `BENCH_ingest.json` artifact (schema
//! `tagspin-bench-ingest/v1`): session ingest throughput (reports/s) and
//! mean fix-refresh latency versus sliding-window size. Set
//! `TAGSPIN_BENCH_INGEST_JSON` to move the artifact,
//! `TAGSPIN_BENCH_QUICK=1` to shrink iteration counts (CI).

use criterion::{black_box, criterion_group, BenchmarkId, Criterion};
use tagspin_bench::ingest_bench;
use tagspin_core::prelude::*;

fn bench_session_ingest(c: &mut Criterion) {
    let mut group = c.benchmark_group("session_ingest");
    let (server, log) = ingest_bench::streaming_fixture(0.5, 7);
    for (label, window) in [
        ("unbounded", WindowConfig::unbounded()),
        ("last_256", WindowConfig::last_reports(256)),
    ] {
        group.bench_with_input(BenchmarkId::new("drain_log", label), &window, |b, &w| {
            b.iter(|| {
                let mut session = server.session(w);
                for report in log.stream() {
                    session.ingest(black_box(report));
                }
                session.stats().buffered
            })
        });
    }
    group.finish();
}

fn bench_fix_refresh(c: &mut Criterion) {
    // A warm session whose streams stay clean between samples: the first
    // fix computes, later ones hit the per-tag caches.
    let mut group = c.benchmark_group("session_fix");
    group.sample_size(10);
    let (server, log) = ingest_bench::streaming_fixture(0.5, 7);
    let mut session = server.session(WindowConfig::unbounded());
    for report in log.stream() {
        session.ingest(report);
    }
    group.bench_function("fix_2d_cached", |b| b.iter(|| session.fix_2d()));
    group.finish();
}

criterion_group!(benches, bench_session_ingest, bench_fix_refresh);

fn main() {
    benches();

    let quick = std::env::var_os("TAGSPIN_BENCH_QUICK").is_some_and(|v| v == "1");
    let results = ingest_bench::run(quick);
    println!("\nsession ingest (throughput and fix refresh vs window):");
    println!("{}", ingest_bench::report(&results));
    let path = std::env::var_os("TAGSPIN_BENCH_INGEST_JSON")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("BENCH_ingest.json"));
    match ingest_bench::write_json(&path, &results) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}
