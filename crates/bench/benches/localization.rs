//! Criterion benchmarks for the localization stages (Fig. 10): bearing
//! intersection and the full server pipeline.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use tagspin_core::locate::plane::{locate_2d, Bearing2D};
use tagspin_core::locate::space::{locate_3d, Bearing3D};
use tagspin_geom::vec3::Direction3;
use tagspin_geom::{Vec2, Vec3};
use tagspin_sim::scenario::Scenario;
use tagspin_sim::trial::{observe, setup_trial};

fn bench_intersection_2d(c: &mut Criterion) {
    let mut group = c.benchmark_group("locate_2d");
    let target = Vec2::new(0.5, 2.0);
    for &n in &[2usize, 4, 16, 64] {
        let bearings: Vec<Bearing2D> = (0..n)
            .map(|i| {
                let origin = Vec2::new(i as f64 * 0.2 - 1.0, 0.0);
                Bearing2D::new(origin, (target - origin).bearing())
            })
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &bearings, |b, bs| {
            b.iter(|| locate_2d(black_box(bs)).expect("intersects"))
        });
    }
    group.finish();
}

fn bench_intersection_3d(c: &mut Criterion) {
    let target = Vec3::new(0.5, 2.0, 1.2);
    let bearings: Vec<Bearing3D> = (0..4)
        .map(|i| {
            let origin = Vec3::new(i as f64 * 0.3 - 0.45, 0.0, 0.9);
            let rel = target - origin;
            Bearing3D::new(origin, Direction3::new(rel.azimuth(), rel.polar()))
        })
        .collect();
    c.bench_function("locate_3d_4_bearings", |b| {
        b.iter(|| locate_3d(black_box(&bearings)).expect("intersects"))
    });
}

fn bench_full_pipeline(c: &mut Criterion) {
    // The complete server-side computation on a realistic log (inventory
    // excluded — that is the world, not the algorithm).
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    let scenario = Scenario::paper_2d(Vec2::new(0.4, 1.8)).quick();
    let mut rng = StdRng::seed_from_u64(42);
    let setup = setup_trial(&scenario, &mut rng).expect("setup succeeds");
    let log = observe(&scenario, &setup, &mut rng);
    group.bench_function("locate_2d_end_to_end", |b| {
        b.iter(|| setup.server.locate_2d(black_box(&log)).expect("fix"))
    });

    let scenario3 = Scenario::paper_3d(Vec3::new(0.3, 1.6, 1.5)).quick();
    let mut rng = StdRng::seed_from_u64(43);
    let setup3 = setup_trial(&scenario3, &mut rng).expect("setup succeeds");
    let log3 = observe(&scenario3, &setup3, &mut rng);
    group.bench_function("locate_3d_end_to_end", |b| {
        b.iter(|| setup3.server.locate_3d(black_box(&log3)).expect("fix"))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_intersection_2d,
    bench_intersection_3d,
    bench_full_pipeline
);
criterion_main!(benches);
