//! Load benchmark for the `tagspin-serve` fleet daemon.
//!
//! Unlike the sibling benches this one has no criterion micro-timings:
//! the workload is a multi-threaded closed-loop drive over real loopback
//! TCP, so the suite in `serve_bench` *is* the measurement. It emits the
//! machine-readable `BENCH_serve.json` artifact (schema
//! `tagspin-bench-serve/v1`): sustained reports/s, fix-latency
//! percentiles, and shed rate for the `peak` / `rated` / `overload_2x`
//! cases. Set `TAGSPIN_BENCH_SERVE_JSON` to move the artifact,
//! `TAGSPIN_BENCH_QUICK=1` to shrink the fleet and capture (CI).

use tagspin_bench::serve_bench;

fn main() {
    let quick = std::env::var_os("TAGSPIN_BENCH_QUICK").is_some_and(|v| v == "1");
    let results = serve_bench::run(quick);
    println!("serve fleet load (closed loop over loopback TCP):");
    println!("{}", serve_bench::report(&results));
    let path = std::env::var_os("TAGSPIN_BENCH_SERVE_JSON")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("BENCH_serve.json"));
    match serve_bench::write_json(&path, &results) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}
