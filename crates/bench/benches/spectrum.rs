//! Criterion benchmarks for the angle-spectrum kernels (Figs. 1, 6, 8):
//! the computational heart of Tagspin.
//!
//! Besides the criterion-style console output, this bench emits the
//! machine-readable `BENCH_spectrum.json` artifact (schema
//! `tagspin-bench-spectrum/v1`) comparing the `SpectrumEngine`'s
//! coarse-to-fine peak search against the exhaustive reference path. Set
//! `TAGSPIN_BENCH_JSON` to move the artifact, `TAGSPIN_BENCH_QUICK=1` to
//! shrink iteration counts (CI).

use criterion::{black_box, criterion_group, BenchmarkId, Criterion};
use tagspin_bench::{spectrum_bench, synthetic_snapshots};
use tagspin_core::spectrum::engine::{SpectrumEngine, SpectrumEngineConfig};
use tagspin_core::spectrum::{spectrum_2d, spectrum_3d, ProfileKind, SpectrumConfig};
use tagspin_geom::Vec3;

fn bench_spectrum_2d(c: &mut Criterion) {
    let mut group = c.benchmark_group("spectrum_2d");
    let reader = Vec3::new(-0.8, 1.5, 0.0);
    for &n in &[100usize, 400, 1600] {
        let set = synthetic_snapshots(reader, n);
        let cfg = SpectrumConfig::default();
        group.bench_with_input(BenchmarkId::new("traditional", n), &set, |b, set| {
            b.iter(|| spectrum_2d(black_box(set), 0.1, ProfileKind::Traditional, &cfg))
        });
        group.bench_with_input(BenchmarkId::new("enhanced", n), &set, |b, set| {
            b.iter(|| spectrum_2d(black_box(set), 0.1, ProfileKind::Enhanced, &cfg))
        });
    }
    group.finish();
}

fn bench_spectrum_3d(c: &mut Criterion) {
    let mut group = c.benchmark_group("spectrum_3d");
    group.sample_size(10);
    let reader = Vec3::new(-0.8, 1.5, 0.6);
    let set = synthetic_snapshots(reader, 400);
    let cfg = SpectrumConfig {
        azimuth_steps: 360,
        polar_steps: 61,
        ..SpectrumConfig::default()
    };
    group.bench_function("traditional_400", |b| {
        b.iter(|| spectrum_3d(black_box(&set), 0.1, ProfileKind::Traditional, &cfg))
    });
    group.bench_function("enhanced_400", |b| {
        b.iter(|| spectrum_3d(black_box(&set), 0.1, ProfileKind::Enhanced, &cfg))
    });
    group.finish();
}

fn bench_grid_resolution(c: &mut Criterion) {
    // How the azimuth grid trades cost for resolution (fig6 sweep).
    let mut group = c.benchmark_group("spectrum_grid");
    let set = synthetic_snapshots(Vec3::new(-0.8, 0.0, 0.0), 400);
    for &steps in &[180usize, 360, 720, 1440] {
        let cfg = SpectrumConfig {
            azimuth_steps: steps,
            ..SpectrumConfig::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(steps), &cfg, |b, cfg| {
            b.iter(|| spectrum_2d(black_box(&set), 0.1, ProfileKind::Enhanced, cfg))
        });
    }
    group.finish();
}

fn bench_engine_peaks(c: &mut Criterion) {
    // Coarse-to-fine engine versus the exhaustive reference, criterion view
    // (the JSON artifact re-measures the same cases via spectrum_bench).
    let mut group = c.benchmark_group("spectrum_engine");
    group.sample_size(10);
    let set = synthetic_snapshots(Vec3::new(-0.8, 1.5, 0.0), 400);
    let ecfg = SpectrumEngineConfig::default();
    let exhaustive = SpectrumEngineConfig {
        exhaustive: true,
        ..ecfg
    };
    for &steps in &[360usize, 720] {
        let cfg = SpectrumConfig {
            azimuth_steps: steps,
            ..SpectrumConfig::default()
        };
        let engine = SpectrumEngine::new(&ecfg);
        group.bench_with_input(BenchmarkId::new("fast_2d", steps), &cfg, |b, cfg| {
            b.iter(|| engine.peak_2d(black_box(&set), 0.1, ProfileKind::Hybrid, cfg, &ecfg))
        });
        group.bench_with_input(BenchmarkId::new("exhaustive_2d", steps), &cfg, |b, cfg| {
            b.iter(|| engine.peak_2d(black_box(&set), 0.1, ProfileKind::Hybrid, cfg, &exhaustive))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_spectrum_2d,
    bench_spectrum_3d,
    bench_grid_resolution,
    bench_engine_peaks
);

fn main() {
    benches();

    let quick = std::env::var_os("TAGSPIN_BENCH_QUICK").is_some_and(|v| v == "1");
    let results = spectrum_bench::run(quick);
    println!("\nspectrum engine (coarse-to-fine vs exhaustive):");
    println!("{}", spectrum_bench::report(&results));
    let path = std::env::var_os("TAGSPIN_BENCH_JSON")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("BENCH_spectrum.json"));
    match spectrum_bench::write_json(&path, &results) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}
