//! Criterion benchmarks for the angle-spectrum kernels (Figs. 1, 6, 8):
//! the computational heart of Tagspin.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use tagspin_bench::synthetic_snapshots;
use tagspin_core::spectrum::{spectrum_2d, spectrum_3d, ProfileKind, SpectrumConfig};
use tagspin_geom::Vec3;

fn bench_spectrum_2d(c: &mut Criterion) {
    let mut group = c.benchmark_group("spectrum_2d");
    let reader = Vec3::new(-0.8, 1.5, 0.0);
    for &n in &[100usize, 400, 1600] {
        let set = synthetic_snapshots(reader, n);
        let cfg = SpectrumConfig::default();
        group.bench_with_input(BenchmarkId::new("traditional", n), &set, |b, set| {
            b.iter(|| spectrum_2d(black_box(set), 0.1, ProfileKind::Traditional, &cfg))
        });
        group.bench_with_input(BenchmarkId::new("enhanced", n), &set, |b, set| {
            b.iter(|| spectrum_2d(black_box(set), 0.1, ProfileKind::Enhanced, &cfg))
        });
    }
    group.finish();
}

fn bench_spectrum_3d(c: &mut Criterion) {
    let mut group = c.benchmark_group("spectrum_3d");
    group.sample_size(10);
    let reader = Vec3::new(-0.8, 1.5, 0.6);
    let set = synthetic_snapshots(reader, 400);
    let cfg = SpectrumConfig {
        azimuth_steps: 360,
        polar_steps: 61,
        ..SpectrumConfig::default()
    };
    group.bench_function("traditional_400", |b| {
        b.iter(|| spectrum_3d(black_box(&set), 0.1, ProfileKind::Traditional, &cfg))
    });
    group.bench_function("enhanced_400", |b| {
        b.iter(|| spectrum_3d(black_box(&set), 0.1, ProfileKind::Enhanced, &cfg))
    });
    group.finish();
}

fn bench_grid_resolution(c: &mut Criterion) {
    // How the azimuth grid trades cost for resolution (fig6 sweep).
    let mut group = c.benchmark_group("spectrum_grid");
    let set = synthetic_snapshots(Vec3::new(-0.8, 0.0, 0.0), 400);
    for &steps in &[180usize, 360, 720, 1440] {
        let cfg = SpectrumConfig {
            azimuth_steps: steps,
            ..SpectrumConfig::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(steps), &cfg, |b, cfg| {
            b.iter(|| spectrum_2d(black_box(&set), 0.1, ProfileKind::Enhanced, cfg))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_spectrum_2d,
    bench_spectrum_3d,
    bench_grid_resolution
);
criterion_main!(benches);
