//! Estimator shootout runner: 2D accuracy and fix latency of the
//! spectrum, ML, and hybrid backends across the fault matrix.
//!
//! Like the robustness bench this measures *accuracy* (plus per-arm fix
//! latency), so there is no criterion loop — each rate point runs seeded
//! trials over the same corrupted stream with only the estimator backend
//! flipped, emitted as `BENCH_estimator.json` (schema
//! `tagspin-bench-estimator/v1`). Set `TAGSPIN_BENCH_ESTIMATOR_JSON` to
//! move the artifact, `TAGSPIN_BENCH_QUICK=1` to shrink per-rate trial
//! counts (CI).

use tagspin_bench::estimator_bench;

fn main() {
    let quick = std::env::var_os("TAGSPIN_BENCH_QUICK").is_some_and(|v| v == "1");
    let results = estimator_bench::run(quick);
    println!("estimator shootout (2D accuracy vs fault rate, spectrum/ml/hybrid):");
    println!("{}", estimator_bench::report(&results));
    let path = std::env::var_os("TAGSPIN_BENCH_ESTIMATOR_JSON")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("BENCH_estimator.json"));
    match estimator_bench::write_json(&path, &results) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}
