//! Robustness benchmark runner: accuracy versus fault rate with and
//! without the ingest quarantine.
//!
//! Unlike the timing benches this one measures *accuracy*, so there is no
//! criterion loop — each rate point runs seeded A/B fault-injection trials
//! and the artifact is the curve pair, emitted as `BENCH_robustness.json`
//! (schema `tagspin-bench-robustness/v1`). Set
//! `TAGSPIN_BENCH_ROBUSTNESS_JSON` to move the artifact,
//! `TAGSPIN_BENCH_QUICK=1` to shrink per-rate trial counts (CI).

use tagspin_bench::robustness_bench;

fn main() {
    let quick = std::env::var_os("TAGSPIN_BENCH_QUICK").is_some_and(|v| v == "1");
    let results = robustness_bench::run(quick);
    println!("robustness (2D accuracy vs fault rate, quarantine on/off):");
    println!("{}", robustness_bench::report(&results));
    let path = std::env::var_os("TAGSPIN_BENCH_ROBUSTNESS_JSON")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("BENCH_robustness.json"));
    match robustness_bench::write_json(&path, &results) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}
