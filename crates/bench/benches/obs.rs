//! Criterion benchmarks for the observability layer: the streaming-ingest
//! fixture under the disabled (`NullObserver`), `MetricsObserver` and
//! `RecordingObserver` arms.
//!
//! Besides the criterion-style console output, this bench emits the
//! machine-readable `BENCH_obs.json` artifact (schema
//! `tagspin-bench-obs/v1`): per-arm ingest and fix-refresh means plus the
//! informational ingest overhead relative to the disabled arm. Set
//! `TAGSPIN_BENCH_OBS_JSON` to move the artifact, `TAGSPIN_BENCH_QUICK=1`
//! to shrink iteration counts (CI).

use criterion::{black_box, criterion_group, BenchmarkId, Criterion};
use std::sync::Arc;
use tagspin_bench::{ingest_bench, obs_bench};
use tagspin_core::prelude::*;

fn bench_observer_arms(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_ingest");
    let (server, log) = ingest_bench::streaming_fixture(0.5, 7);
    let arms: [(&str, Option<Arc<dyn Observer>>); 3] = [
        ("null", None),
        (
            "metrics",
            Some(Arc::new(MetricsObserver::new(Arc::new(
                MetricsRegistry::new(),
            )))),
        ),
        ("recording", Some(Arc::new(RecordingObserver::new()))),
    ];
    for (label, observer) in arms {
        group.bench_with_input(BenchmarkId::new("drain_log", label), &observer, |b, obs| {
            b.iter(|| {
                let mut session = server.session(WindowConfig::last_reports(512));
                if let Some(obs) = obs {
                    session.set_observer(Arc::clone(obs));
                }
                for report in log.stream() {
                    session.ingest(black_box(report));
                }
                session.stats().buffered
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_observer_arms);

fn main() {
    benches();

    let quick = std::env::var_os("TAGSPIN_BENCH_QUICK").is_some_and(|v| v == "1");
    let results = obs_bench::run(quick);
    println!("\nobservability overhead (per observer arm):");
    println!("{}", obs_bench::report(&results));
    let path = std::env::var_os("TAGSPIN_BENCH_OBS_JSON")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("BENCH_obs.json"));
    match obs_bench::write_json(&path, &results) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}
