//! Observability conformance: the observer layer must be invisible and
//! exact.
//!
//! The contract under test, over hostile streams from
//! [`tagspin::sim::fault::FaultPlan`] (drops, duplicates, reordering,
//! corrupt phases, ghost EPCs):
//!
//! 1. **Invisible** — a session with a [`RecordingObserver`] attached
//!    produces bit-identical ingest outcomes, fixes and stats (stage
//!    timers aside) to the default [`NullObserver`] session, and the null
//!    session's stage timers stay exactly zero (the disabled path never
//!    reads the clock).
//! 2. **Exact** — the recorded event stream reconciles with
//!    [`SessionStats`] and [`RejectCounts`] counter-for-counter: no event
//!    double-counted, none missing, across accepts, per-reason rejects,
//!    evictions, fresh/cached recomputes, gate withholdings, fix attempts
//!    and per-stage timer sums.
//!
//! Case count defaults to 256 and is pinned in CI via `PROPTEST_CASES`.

use std::sync::{Arc, OnceLock};

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use tagspin::core::prelude::*;
use tagspin::epc::inventory::{run_inventory, ReaderConfig, Transponder};
use tagspin::epc::InventoryLog;
use tagspin::geom::{Pose, Vec3};
use tagspin::rf::channel::Environment;
use tagspin::rf::tags::{TagInstance, TagModel};
use tagspin::sim::fault::FaultPlan;

/// Two registered disks (EPCs 1 and 2) with the paper-default pipeline.
fn server() -> LocalizationServer {
    let mut server = LocalizationServer::new(PipelineConfig::default());
    server
        .register(1, DiskConfig::paper_default(Vec3::new(-0.3, 0.0, 0.0)))
        .expect("unique EPC");
    server
        .register(2, DiskConfig::paper_default(Vec3::new(0.3, 0.0, 0.0)))
        .expect("unique EPC");
    server
}

/// One clean simulated rotation of the two-tag deployment, built once: the
/// fault plans below derive every hostile stream from it deterministically.
fn clean_log() -> &'static InventoryLog {
    static LOG: OnceLock<InventoryLog> = OnceLock::new();
    LOG.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(7);
        let d1 = DiskConfig::paper_default(Vec3::new(-0.3, 0.0, 0.0));
        let d2 = DiskConfig::paper_default(Vec3::new(0.3, 0.0, 0.0));
        let t1 = SpinningTag::new(d1, TagInstance::manufacture(TagModel::DEFAULT, 1, &mut rng));
        let t2 = SpinningTag::new(d2, TagInstance::manufacture(TagModel::DEFAULT, 2, &mut rng));
        let reader = ReaderConfig::at(Pose::facing_toward(Vec3::new(0.4, 1.7, 0.0), Vec3::ZERO));
        run_inventory(
            &Environment::paper_default(),
            &reader,
            &[&t1 as &dyn Transponder, &t2 as &dyn Transponder],
            d1.period_s(),
            &mut rng,
        )
    })
}

fn window(sel: u8) -> WindowConfig {
    match sel % 4 {
        0 => WindowConfig::unbounded(),
        1 => WindowConfig::last_reports(64),
        2 => WindowConfig::last_reports(512),
        _ => WindowConfig::last_seconds(3.0),
    }
}

/// Fold a recorded event stream into the totals [`SessionStats`] should
/// agree with.
#[derive(Debug, Default, PartialEq)]
struct EventTotals {
    accepted: u64,
    rejects: RejectCounts,
    evicted: u64,
    fresh: u64,
    cached: u64,
    gate_withheld: u64,
    fixes: u64,
    fix_ok: u64,
    skipped: u64,
    estimator_fixes: u64,
    stage: StageTimes,
    cache_lookups: u64,
    peak_searches: u64,
    incremental: IncrementalCounts,
}

fn fold(events: &[Event]) -> EventTotals {
    let mut t = EventTotals::default();
    for e in events {
        match e {
            Event::IngestAccepted { .. } => t.accepted += 1,
            Event::IngestRejected { reason, .. } => t.rejects.record(*reason),
            Event::Evicted { count, .. } => t.evicted += count,
            Event::BearingServed { recomputed, .. } => {
                if *recomputed {
                    t.fresh += 1;
                } else {
                    t.cached += 1;
                }
            }
            Event::GateWithheld { .. } => t.gate_withheld += 1,
            Event::FixAttempt { skipped, ok, .. } => {
                t.fixes += 1;
                t.fix_ok += u64::from(*ok);
                t.skipped += *skipped as u64;
            }
            Event::EstimatorFix { .. } => t.estimator_fixes += 1,
            Event::StageTime { stage, nanos } => match stage {
                Stage::Ingest => t.stage.ingest_ns += nanos,
                Stage::Coarse => t.stage.coarse_ns += nanos,
                Stage::Fine => t.stage.fine_ns += nanos,
                Stage::Recompute => t.stage.recompute_ns += nanos,
                Stage::Fix => t.stage.fix_ns += nanos,
                Stage::Refine => t.stage.refine_ns += nanos,
                // Serve-daemon stages; the session pipeline never emits them.
                Stage::Decode | Stage::Route => {}
            },
            Event::CacheLookup { .. } => t.cache_lookups += 1,
            Event::PeakSearch { .. } => t.peak_searches += 1,
            Event::IncrementalSync {
                applied,
                downdated,
                reanchored,
                fallback,
                ..
            } => {
                t.incremental.applied += applied;
                t.incremental.downdated += downdated;
                t.incremental.reanchors += u64::from(*reanchored);
                t.incremental.fallbacks += u64::from(*fallback);
            }
        }
    }
    t
}

proptest! {
    /// Invariants 1 and 2 over one hostile stream: the recording arm is
    /// bit-identical to the null arm, and its event stream reconciles
    /// exactly with the session counters.
    #[test]
    fn prop_observer_invisible_and_event_counts_reconcile(
        rate in 0.0f64..0.45,
        seed in 0u64..4096,
        window_sel in 0u8..8,
    ) {
        let reports = FaultPlan::at_rate(rate).apply(clean_log(), seed);

        // Separate servers per arm: sessions cloned from one engine share
        // its stage-time atomics, and the point here is that the *null*
        // arm's timers stay untouched.
        let null_server = server();
        let mut null_session = null_server.session(window(window_sel));

        let mut rec_server = server();
        let recorder = Arc::new(RecordingObserver::new());
        rec_server.set_observer(Arc::clone(&recorder) as Arc<dyn Observer>);
        let mut rec_session = rec_server.session(window(window_sel));

        for report in &reports {
            let a = null_session.ingest(report);
            let b = rec_session.ingest(report);
            prop_assert_eq!(a, b, "ingest outcomes diverged");
        }
        // First fix computes, second reuses the per-tag caches — the
        // cached path must be equally invisible and equally counted.
        prop_assert_eq!(null_session.fix_2d(), rec_session.fix_2d());
        prop_assert_eq!(null_session.fix_2d(), rec_session.fix_2d());

        let null_stats = null_session.stats();
        let rec_stats = rec_session.stats();

        // Invariant 1: identical outputs. Stats agree field-for-field once
        // the (observer-gated, wall-clock) stage timers are set aside —
        // and the null arm's timers are exactly zero.
        let mut rec_flat = rec_stats;
        rec_flat.stage = StageTimes::default();
        let mut null_flat = null_stats;
        null_flat.stage = StageTimes::default();
        prop_assert_eq!(null_flat, rec_flat);
        prop_assert_eq!(null_stats.stage, StageTimes::default(),
            "disabled observer path read the clock");

        // Invariant 2: exact reconciliation, counter-for-counter.
        let totals = fold(&recorder.take());
        prop_assert_eq!(totals.accepted, rec_stats.ingested);
        prop_assert_eq!(totals.rejects, rec_stats.rejects);
        prop_assert_eq!(totals.evicted, rec_stats.evicted);
        prop_assert_eq!(totals.fresh, rec_stats.recomputes);
        prop_assert_eq!(totals.gate_withheld, rec_stats.gate_withheld);
        prop_assert_eq!(totals.fixes, rec_stats.fixes);
        prop_assert_eq!(totals.skipped, rec_stats.skips.total());
        // Every successful fix is served through the estimator dispatch —
        // exactly one EstimatorFix event per FixAttempt { ok: true }.
        prop_assert_eq!(totals.estimator_fixes, totals.fix_ok);
        // The default spectrum backend never runs a refinement.
        prop_assert_eq!(rec_stats.stage.refine_ns, 0);
        prop_assert_eq!(totals.stage, rec_stats.stage);
        prop_assert_eq!(totals.incremental, rec_stats.incremental);
        // Conservation: every buffered report is still buffered or evicted.
        prop_assert_eq!(rec_stats.ingested,
            rec_stats.buffered as u64 + rec_stats.evicted);
        // Gate withholdings only happen on fresh recomputes.
        prop_assert!(totals.gate_withheld <= totals.fresh);
    }

    /// The [`MetricsObserver`] agrees with the raw event stream: feeding
    /// the same hostile stream to a metrics arm yields registry counters
    /// equal to the recording arm's event counts.
    #[test]
    fn prop_metrics_registry_matches_event_stream(
        rate in 0.0f64..0.45,
        seed in 0u64..4096,
    ) {
        let reports = FaultPlan::at_rate(rate).apply(clean_log(), seed);

        let mut rec_server = server();
        let recorder = Arc::new(RecordingObserver::new());
        rec_server.set_observer(Arc::clone(&recorder) as Arc<dyn Observer>);
        let mut rec_session = rec_server.session(WindowConfig::last_reports(256));

        let mut met_server = server();
        let registry = Arc::new(MetricsRegistry::new());
        met_server.set_observer(Arc::new(MetricsObserver::new(Arc::clone(&registry))));
        let mut met_session = met_server.session(WindowConfig::last_reports(256));

        for report in &reports {
            let a = rec_session.ingest(report);
            let b = met_session.ingest(report);
            prop_assert_eq!(a, b);
        }
        prop_assert_eq!(rec_session.fix_2d(), met_session.fix_2d());

        let totals = fold(&recorder.take());
        let snap = registry.snapshot();
        let counter = |name: &str| snap.counters.get(name).copied().unwrap_or(0);
        prop_assert_eq!(counter("ingest.accepted"), totals.accepted);
        prop_assert_eq!(counter("ingest.rejected.unknown_tag"), totals.rejects.unknown_tag);
        prop_assert_eq!(counter("ingest.rejected.out_of_order"), totals.rejects.out_of_order);
        prop_assert_eq!(counter("ingest.rejected.duplicate"), totals.rejects.duplicate);
        prop_assert_eq!(counter("ingest.rejected.non_finite_phase"),
            totals.rejects.non_finite_phase);
        prop_assert_eq!(counter("ingest.rejected.phase_out_of_range"),
            totals.rejects.phase_out_of_range);
        prop_assert_eq!(counter("ingest.rejected.bad_rssi"), totals.rejects.bad_rssi);
        prop_assert_eq!(counter("ingest.rejected.null_epc"), totals.rejects.null_epc);
        prop_assert_eq!(counter("session.evicted"), totals.evicted);
        prop_assert_eq!(counter("session.recompute.fresh"), totals.fresh);
        prop_assert_eq!(counter("session.recompute.cached"), totals.cached);
        prop_assert_eq!(counter("session.gate_withheld"), totals.gate_withheld);
        prop_assert_eq!(counter("fix.attempts"), totals.fixes);
        prop_assert_eq!(counter("fix.skipped_tags"), totals.skipped);
        prop_assert_eq!(counter("estimator.fix.spectrum"), totals.estimator_fixes);
        prop_assert_eq!(counter("estimator.fix.ml") + counter("estimator.fix.hybrid"), 0);
        prop_assert_eq!(counter("engine.cache.hit") + counter("engine.cache.miss"),
            totals.cache_lookups);
        prop_assert_eq!(counter("engine.peak_searches"), totals.peak_searches);
        prop_assert_eq!(counter("session.incremental.applied"), totals.incremental.applied);
        prop_assert_eq!(counter("session.incremental.downdated"),
            totals.incremental.downdated);
        prop_assert_eq!(counter("session.incremental.reanchors"),
            totals.incremental.reanchors);
        prop_assert_eq!(counter("session.incremental.fallbacks"),
            totals.incremental.fallbacks);
    }
}

/// The incremental accumulator path is visible and reconciled: once a
/// stream passes the engage threshold, every fresh fix emits exactly one
/// `IncrementalSync` event per tag whose deltas match the session counters
/// AND the metrics registry — proving the batched counter path (one
/// `on_batch` per sync instead of one atomic add per accumulator update)
/// loses nothing.
#[test]
fn incremental_sync_events_reconcile_with_stats_and_metrics() {
    let reports = FaultPlan::at_rate(0.0).apply(clean_log(), 0);
    let mut srv = server();
    let recorder = Arc::new(RecordingObserver::new());
    let registry = Arc::new(MetricsRegistry::new());
    srv.set_observer(Arc::new(FanoutObserver::new(vec![
        Arc::clone(&recorder) as Arc<dyn Observer>,
        Arc::new(MetricsObserver::new(Arc::clone(&registry))) as Arc<dyn Observer>,
    ])));
    let mut session = srv.session(WindowConfig::last_reports(256));

    // Fix after every chunk: fix 1 serves the legacy path (engage
    // threshold), fix 2 anchors the incremental state, later fixes apply
    // deltas against the count window.
    for chunk in reports.chunks(reports.len() / 4) {
        for report in chunk {
            session.ingest(report);
        }
        let _ = session.fix_2d();
    }

    let stats = session.stats();
    assert!(
        stats.incremental.reanchors >= 2,
        "2D slots never anchored: {:?}",
        stats.incremental
    );
    assert!(
        stats.incremental.applied > 0,
        "no accumulator updates applied"
    );
    assert_eq!(
        stats.incremental.fallbacks, 0,
        "clean stream must not fall back"
    );

    let totals = fold(&recorder.take());
    assert_eq!(totals.incremental, stats.incremental);

    let snap = registry.snapshot();
    let counter = |name: &str| snap.counters.get(name).copied().unwrap_or(0);
    assert_eq!(
        counter("session.incremental.applied"),
        stats.incremental.applied
    );
    assert_eq!(
        counter("session.incremental.downdated"),
        stats.incremental.downdated
    );
    assert_eq!(
        counter("session.incremental.reanchors"),
        stats.incremental.reanchors
    );
    assert_eq!(
        counter("session.incremental.fallbacks"),
        stats.incremental.fallbacks
    );
}

/// The quality gate's withholdings are visible, not folded into other
/// skips: a capture covering a sliver of the rotation passes the count
/// floor but fails the structural gate, and both the `quality_gated` skip
/// bucket and the `gate_withheld` counter say so — matching the recorded
/// `GateWithheld` events exactly.
#[test]
fn quality_gate_withholding_is_visible_and_reconciled() {
    let mut server = server();
    server.config.ingest = IngestPolicy::hardened();
    server.config.quality_gate = QualityGate::paper_default();
    let recorder = Arc::new(RecordingObserver::new());
    server.set_observer(Arc::clone(&recorder) as Arc<dyn Observer>);
    let mut session = server.session(WindowConfig::unbounded());

    // 60 reads per tag inside half a second — a sliver of the ~12.6 s
    // rotation, so angular coverage is far below the gate's floor.
    for i in 0..120u64 {
        let outcome = session.ingest(&tagspin::epc::TagReport {
            epc: 1 + (i % 2) as u128,
            timestamp_us: i * 4_000,
            phase: (i as f64 * 0.37) % std::f64::consts::TAU,
            rssi_dbm: -60.0,
            channel_index: 0,
            antenna_id: 1,
        });
        assert_eq!(outcome, IngestOutcome::Buffered, "clean read {i} rejected");
    }
    let err = session.fix_2d().expect_err("both tags must be withheld");
    assert!(
        matches!(err, ServerError::NotEnoughBearings { usable: 0 }),
        "unexpected error {err:?}"
    );

    let stats = session.stats();
    assert_eq!(stats.skips.quality_gated, 2, "gate skips must be visible");
    assert_eq!(stats.skips.total(), 2);
    assert_eq!(stats.gate_withheld, 2);
    assert_eq!(stats.recomputes, 2);

    let totals = fold(&recorder.take());
    assert_eq!(totals.gate_withheld, 2);
    assert_eq!(totals.fresh, 2);
    assert_eq!(totals.skipped, 2);
    assert_eq!(totals.fixes, 1);
}

/// A fan-out delivers the identical event stream to every sink: two
/// recorders behind one [`FanoutObserver`] record equal sequences.
#[test]
fn fanout_sinks_record_identical_streams() {
    let reports = FaultPlan::at_rate(0.3).apply(clean_log(), 11);
    let mut srv = server();
    let a = Arc::new(RecordingObserver::new());
    let b = Arc::new(RecordingObserver::new());
    srv.set_observer(Arc::new(FanoutObserver::new(vec![
        Arc::clone(&a) as Arc<dyn Observer>,
        Arc::clone(&b) as Arc<dyn Observer>,
    ])));
    let mut session = srv.session(WindowConfig::last_reports(128));
    for report in &reports {
        session.ingest(report);
    }
    let _ = session.fix_2d();
    let ea = a.take();
    assert!(!ea.is_empty(), "no events recorded");
    assert_eq!(ea, b.take());
}
