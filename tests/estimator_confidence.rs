//! Degenerate-geometry conformance for the typed fix confidence.
//!
//! The contract under test: every confidence path — the CRLB-propagated
//! bearing-line fusion and the ML backend's covariance — either returns a
//! finite, positive-semidefinite [`FixConfidence`] or a typed
//! [`ConfidenceError`]/[`ServerError`] refusal. It never panics and never
//! leaks a NaN, across collinear antenna rails, near-zero baselines, and
//! single-tag 3D geometry.
//!
//! Case count defaults to 256 and is pinned in CI via `PROPTEST_CASES`.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::f64::consts::TAU;
use tagspin::core::estimator::{backend_impl, confidence_from_bearing_lines};
use tagspin::core::prelude::*;
use tagspin::geom::{Vec2, Vec3};
use tagspin::rf::noise::gaussian;

const LAMBDA: f64 = 0.325;

/// A synthesized snapshot window: the round-trip phase model from `truth`
/// with additive Gaussian noise, one full rotation.
fn synth_observation(epc: u128, disk: DiskConfig, truth: Vec3, seed: u64) -> TagObservation {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = 240;
    let set = SnapshotSet::from_snapshots(
        (0..n)
            .map(|i| {
                let t = i as f64 * disk.period_s() / n as f64;
                let d = disk.tag_position(t).distance(truth);
                Snapshot {
                    t_s: t,
                    phase: tagspin::geom::angle::wrap_tau(
                        2.0 * TAU / LAMBDA * d + 0.7 + 0.1 * gaussian(&mut rng),
                    ),
                    disk_angle: disk.disk_angle(t),
                    lambda: LAMBDA,
                    rssi_dbm: -60.0,
                }
            })
            .collect(),
    );
    TagObservation { epc, disk, set }
}

/// The invariant every confidence result must satisfy.
fn assert_confidence_sane(res: &Result<FixConfidence, ConfidenceError>) {
    if let Ok(conf) = res {
        assert!(
            conf.is_finite_psd(),
            "non-PSD confidence accepted: {conf:?}"
        );
        assert!(
            conf.sigma_major_m.is_finite() && conf.sigma_minor_m.is_finite(),
            "{conf:?}"
        );
        assert!(conf.sigma_major_m >= conf.sigma_minor_m, "{conf:?}");
    }
}

proptest! {
    /// Collinear antennas with exactly parallel bearings: the information
    /// matrix is rank one, so the fusion must refuse with a typed error
    /// regardless of rail length, spacing, or query position.
    #[test]
    fn prop_parallel_rail_is_refused(
        n in 2usize..6,
        spacing in 1e-6f64..2.0,
        azimuth in 0.0f64..TAU,
        px in -5.0f64..5.0,
        py in -5.0f64..5.0,
        sigma in 1e-4f64..0.5,
    ) {
        let lines: Vec<(Vec2, f64, f64)> = (0..n)
            .map(|i| (Vec2::new(i as f64 * spacing, 0.0), azimuth, sigma))
            .collect();
        let res = confidence_from_bearing_lines(&lines, Vec2::new(px, py), None);
        prop_assert!(res.is_err(), "parallel rail accepted: {res:?}");
        assert_confidence_sane(&res);
    }

    /// Near-zero baselines: all origins collapsed inside an ε-ball. The
    /// fusion may refuse (position inside the ball, near-parallel lines)
    /// or answer — but an answer must be finite and PSD.
    #[test]
    fn prop_zero_baseline_finite_or_refused(
        eps in 0.0f64..1e-6,
        az1 in 0.0f64..TAU,
        az2 in 0.0f64..TAU,
        az3 in 0.0f64..TAU,
        px in -3.0f64..3.0,
        py in -3.0f64..3.0,
        sigma in 1e-4f64..0.5,
    ) {
        let lines = [
            (Vec2::new(0.0, 0.0), az1, sigma),
            (Vec2::new(eps, 0.0), az2, sigma),
            (Vec2::new(0.0, eps), az3, sigma),
        ];
        let res = confidence_from_bearing_lines(&lines, Vec2::new(px, py), None);
        assert_confidence_sane(&res);
    }

    /// Arbitrary line soup, including non-finite azimuths, infinite and
    /// non-positive CRLBs, and positions on top of origins: the result is
    /// always a typed verdict, never a NaN-carrying confidence.
    #[test]
    fn prop_line_soup_never_yields_nan(
        ox in proptest::collection::vec(-4.0f64..4.0, 2..6),
        oy in proptest::collection::vec(-4.0f64..4.0, 2..6),
        az in proptest::collection::vec(-10.0f64..10.0, 2..6),
        sig in proptest::collection::vec(-0.1f64..0.5, 2..6),
        px in -5.0f64..5.0,
        py in -5.0f64..5.0,
        poison_sel in 0u8..4,
    ) {
        let n = ox.len().min(oy.len()).min(az.len()).min(sig.len());
        let mut lines: Vec<(Vec2, f64, f64)> = (0..n)
            .map(|i| (Vec2::new(ox[i], oy[i]), az[i], sig[i]))
            .collect();
        // Poison one entry with the non-finite values the API documents
        // as zero-information or refusals.
        match poison_sel {
            0 => lines[0].2 = f64::INFINITY,
            1 => lines[0].1 = f64::NAN,
            2 => lines[0].0 = Vec2::new(px, py),
            _ => {}
        }
        let res = confidence_from_bearing_lines(&lines, Vec2::new(px, py), None);
        assert_confidence_sane(&res);
        // Non-positive finite sigmas are a hard refusal, checked typed.
        if let Err(e) = res {
            let typed = matches!(
                e,
                ConfidenceError::DegenerateGeometry
                    | ConfidenceError::NonFinite
                    | ConfidenceError::TooFewBearings { got: _ }
            );
            prop_assert!(typed, "unexpected refusal type: {e:?}");
        }
    }

    /// Single-tag 3D through the ML backend: one bearing cannot fix a 3D
    /// position, so the estimate must either refuse with a typed
    /// [`ServerError`] or (if the seed resolves) carry only finite fields
    /// and a sane confidence verdict.
    #[test]
    fn prop_single_tag_3d_refuses_or_stays_finite(
        seed in 0u64..512,
        tx in -1.0f64..1.0,
        ty in 1.0f64..2.5,
        tz in -0.5f64..0.8,
        backend_sel in 0u8..3,
    ) {
        let truth = Vec3::new(tx, ty, tz);
        let disk = DiskConfig::paper_default(Vec3::ZERO);
        let obs = synth_observation(1, disk, truth, seed);
        let rel = truth - disk.center;
        let bearing = tagspin::core::locate::space::Bearing3D::new(
            disk.center,
            tagspin::geom::vec3::Direction3::new(rel.azimuth(), rel.polar()),
        );
        let backend = match backend_sel {
            0 => EstimatorBackend::Spectrum,
            1 => EstimatorBackend::Ml,
            _ => EstimatorBackend::Hybrid,
        };
        let cfg = PipelineConfig::default();
        match backend_impl(backend).estimate_3d(&[bearing], &[obs], &cfg) {
            Ok(est) => {
                prop_assert!(est.fix.position.is_finite(), "{:?}", est.fix);
                assert_confidence_sane(&est.confidence);
            }
            Err(e) => {
                // A refusal must be the locate layer's typed geometry
                // error, not a panic or a poisoned value.
                prop_assert!(!e.to_string().is_empty());
            }
        }
    }
}

/// Deterministic spot check: two crossing bearings at a right angle give a
/// well-conditioned confidence through the public fusion entry point.
#[test]
fn crossing_bearings_give_finite_confidence() {
    let p = Vec2::new(0.0, 1.0);
    let lines = [
        (Vec2::new(-1.0, 1.0), 0.0, 0.01),
        (Vec2::new(0.0, 0.0), TAU / 4.0, 0.01),
    ];
    let conf = confidence_from_bearing_lines(&lines, p, None).expect("well-conditioned");
    assert!(conf.is_finite_psd());
    assert_eq!(conf.bearings, 2);
}
