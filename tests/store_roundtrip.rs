//! Calibration-store round-trip suite: every record the store can hold —
//! steering tables under 2D (`for_radius`) and 3D (`for_disk`,
//! horizontal and vertical planes) ids across arbitrary grids, and
//! orientation calibrations across Fourier orders — survives
//! save → load → save with byte-identical files and bit-identical
//! contents; spectra computed through store-loaded tables match fresh
//! ones for every [`ProfileKind`]; and an empty store is a clean no-op
//! for a zero-tag server.
//!
//! Case count defaults to 256 and is pinned in CI via `PROPTEST_CASES`.

use proptest::prelude::*;
use std::f64::consts::TAU;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use tagspin::core::prelude::*;
use tagspin::core::snapshot::{Snapshot, SnapshotSet};
use tagspin::core::spinning::DiskPlane;
use tagspin::dsp::fourier::FourierSeries;
use tagspin::geom::{angle, Vec3};

/// A fresh per-case store directory.
fn case_dir(tag: &str) -> PathBuf {
    static CASE: AtomicU64 = AtomicU64::new(0);
    // ordering: relaxed — unique-id counter; no data is published through it
    let n = CASE.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "tagspin-store-roundtrip-{}-{tag}-{n}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The single `.tsc` file in a one-record store.
fn record_bytes(dir: &PathBuf) -> Vec<u8> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .expect("store dir listable")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "tsc"))
        .collect();
    assert_eq!(files.len(), 1, "expected exactly one record in {dir:?}");
    files.sort();
    std::fs::read(&files[0]).expect("record readable")
}

fn tables_bit_identical(a: &SteeringTable, b: &SteeringTable) -> bool {
    let planes = [
        (a.cos_phi(), b.cos_phi()),
        (a.sin_phi(), b.sin_phi()),
        (a.cos_gamma(), b.cos_gamma()),
        (a.sin_gamma(), b.sin_gamma()),
    ];
    planes.iter().all(|(x, y)| {
        x.len() == y.len()
            && x.iter()
                .zip(y.iter())
                .all(|(p, q)| p.to_bits() == q.to_bits())
    })
}

/// Synthetic capture of `n` reads over one disk period (same shape as the
/// engine's own conformance fixtures).
fn synthesize(disk: &DiskConfig, reader: Vec3, n: usize) -> SnapshotSet {
    const LAMBDA: f64 = 0.325;
    let t_max = disk.period_s();
    SnapshotSet::from_snapshots(
        (0..n)
            .map(|i| {
                let t = i as f64 * t_max / n as f64;
                let d = disk.tag_position(t).distance(reader);
                Snapshot {
                    t_s: t,
                    phase: angle::wrap_tau(2.0 * TAU / LAMBDA * d + 0.77),
                    disk_angle: disk.disk_angle(t),
                    lambda: LAMBDA,
                    rssi_dbm: -60.0,
                }
            })
            .collect(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// save → load → save is byte-stable for steering tables under every
    /// id shape: 2D plain-radius, 3D horizontal, 3D vertical.
    #[test]
    fn prop_table_records_are_byte_stable(
        radius in 0.02f64..0.5,
        omega in 0.1f64..2.0,
        initial_angle in 0.0f64..TAU,
        normal_azimuth in 0.0f64..TAU,
        azimuth_steps in 4usize..96,
        polar_steps in 2usize..16,
        id_kind in 0u8..3,
    ) {
        let cfg = SpectrumConfig {
            azimuth_steps,
            polar_steps,
            ..SpectrumConfig::default()
        };
        let mut disk = DiskConfig::paper_default(Vec3::ZERO);
        disk.radius = radius;
        disk.omega = omega;
        disk.initial_angle = initial_angle;
        let id = match id_kind {
            0 => TableId::for_radius(radius, &cfg),
            1 => TableId::for_disk(&disk, &cfg),
            _ => {
                disk.plane = DiskPlane::Vertical { normal_azimuth };
                TableId::for_disk(&disk, &cfg)
            }
        };
        let table = SteeringTable::build(azimuth_steps, polar_steps);

        let dir1 = case_dir("table-a");
        let store1 = FileStore::open(&dir1).expect("store opens");
        store1.save_table(&id, &table).expect("save");
        let bytes1 = record_bytes(&dir1);

        let loaded = store1.load_table(&id).expect("load");
        prop_assert!(tables_bit_identical(&table, &loaded),
            "loaded table differs from the one saved");

        let dir2 = case_dir("table-b");
        let store2 = FileStore::open(&dir2).expect("store opens");
        store2.save_table(&id, &loaded).expect("re-save");
        let bytes2 = record_bytes(&dir2);
        prop_assert_eq!(bytes1, bytes2, "save → load → save not byte-stable");

        let _ = std::fs::remove_dir_all(&dir1);
        let _ = std::fs::remove_dir_all(&dir2);
    }

    /// save → load → save is byte-stable for orientation calibrations
    /// across Fourier orders, and the decoded series is bit-identical.
    #[test]
    fn prop_orientation_records_are_byte_stable(
        epc_hi in proptest::num::u64::ANY,
        epc_lo in proptest::num::u64::ANY,
        a0 in -3.0f64..3.0,
        harmonics in proptest::collection::vec((-2.0f64..2.0, -2.0f64..2.0), 0..6),
        rms in 0.0f64..0.5,
    ) {
        let epc = (u128::from(epc_hi) << 64) | u128::from(epc_lo);
        let series = FourierSeries::from_coefficients(a0, harmonics);
        let cal = OrientationCalibration::from_parts(series, rms);

        let dir1 = case_dir("orient-a");
        let store1 = FileStore::open(&dir1).expect("store opens");
        store1.save_orientation(epc, &cal).expect("save");
        let bytes1 = record_bytes(&dir1);

        let loaded = store1.load_orientation(epc).expect("load");
        prop_assert_eq!(
            loaded.series().dc().to_bits(),
            cal.series().dc().to_bits()
        );
        prop_assert_eq!(loaded.series().order(), cal.series().order());
        for (got, want) in loaded
            .series()
            .harmonics()
            .iter()
            .zip(cal.series().harmonics())
        {
            prop_assert_eq!(got.0.to_bits(), want.0.to_bits());
            prop_assert_eq!(got.1.to_bits(), want.1.to_bits());
        }
        prop_assert_eq!(loaded.rms_residual().to_bits(), cal.rms_residual().to_bits());

        let dir2 = case_dir("orient-b");
        let store2 = FileStore::open(&dir2).expect("store opens");
        store2.save_orientation(epc, &loaded).expect("re-save");
        let bytes2 = record_bytes(&dir2);
        prop_assert_eq!(bytes1, bytes2, "save → load → save not byte-stable");

        let _ = std::fs::remove_dir_all(&dir1);
        let _ = std::fs::remove_dir_all(&dir2);
    }
}

/// Spectra computed through store-loaded tables are bit-identical to
/// fresh-build spectra for every [`ProfileKind`], in 2D and both 3D
/// entry points.
#[test]
fn spectra_from_stored_tables_match_every_profile_kind() {
    let cfg = SpectrumConfig {
        azimuth_steps: 90,
        polar_steps: 7,
        references: 4,
        ..SpectrumConfig::default()
    };
    let ecfg = SpectrumEngineConfig::default();
    let mut disk = DiskConfig::paper_default(Vec3::ZERO);
    disk.plane = DiskPlane::Vertical {
        normal_azimuth: 0.4,
    };
    let set = synthesize(&disk, Vec3::new(1.2, 0.8, 0.3), 48);

    let dir = case_dir("spectra");
    // Cold engine populates the store.
    let mut cold = SpectrumEngine::new(&ecfg);
    cold.set_store(Arc::new(FileStore::open(&dir).expect("store opens")));
    // Warm engine must serve every kind from the persisted tables.
    let mut warm = SpectrumEngine::new(&ecfg);
    warm.set_store(Arc::new(FileStore::open(&dir).expect("store reopens")));
    let fresh = SpectrumEngine::new(&ecfg);

    for kind in [
        ProfileKind::Traditional,
        ProfileKind::Enhanced,
        ProfileKind::Hybrid,
    ] {
        let want_2d = fresh.spectrum_2d(&set, disk.radius, kind, &cfg, &ecfg);
        let want_3d = fresh.spectrum_3d_for_disk(&set, &disk, kind, &cfg, &ecfg);
        for engine in [&cold, &warm] {
            let got_2d = engine.spectrum_2d(&set, disk.radius, kind, &cfg, &ecfg);
            assert_eq!(got_2d.values().len(), want_2d.values().len());
            for (g, w) in got_2d.values().iter().zip(want_2d.values()) {
                assert_eq!(g.to_bits(), w.to_bits(), "2D spectrum diverged ({kind:?})");
            }
            let got_3d = engine.spectrum_3d_for_disk(&set, &disk, kind, &cfg, &ecfg);
            assert_eq!(got_3d.values().len(), want_3d.values().len());
            for (g, w) in got_3d.values().iter().zip(want_3d.values()) {
                assert_eq!(g.to_bits(), w.to_bits(), "3D spectrum diverged ({kind:?})");
            }
        }
    }
    let stats = warm.store_stats();
    assert!(stats.hits > 0, "warm engine never hit the store: {stats:?}");
    assert_eq!(stats.invalid, 0, "valid records flagged invalid: {stats:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// An empty store round-trips: nothing to list, nothing to verify,
/// nothing to collect — and a zero-tag server attached to one neither
/// reads nor writes a record.
#[test]
fn empty_store_and_zero_tag_registry_round_trip() {
    let dir = case_dir("empty");
    let store = FileStore::open(&dir).expect("store opens");
    assert!(store.entries().expect("entries").is_empty());
    assert!(store.verify().expect("verify").is_empty());
    assert!(store.gc().expect("gc").is_empty());

    // Reopening the same directory is equally empty (open is idempotent).
    let reopened = FileStore::open(&dir).expect("store reopens");
    assert!(reopened.entries().expect("entries").is_empty());

    // A server with zero registered tags attached to the store performs no
    // store traffic and leaves the directory empty.
    let mut server = LocalizationServer::new(PipelineConfig::default());
    server.set_store(Arc::new(store));
    assert!(reopened.entries().expect("entries").is_empty());
    let _ = std::fs::remove_dir_all(&dir);
}
