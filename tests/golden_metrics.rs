//! Golden metrics fixture: the `tagspin-metrics/v1` snapshot of the
//! canonical two-spinning-tag 2D trace, pinned so instrumentation-point
//! drift (a metric renamed, an emit site added, dropped or double-counted)
//! fails CI with a reviewable fixture diff.
//!
//! The trace is the deterministic seeded deployment the crate-level
//! example uses: two paper-default disks at (±30 cm, 0), one full rotation
//! observed from (0.4, 1.7), streamed through a 512-report window with two
//! `fix_2d` refreshes (one fresh, one cached). Every counter, gauge and
//! non-timing histogram field is compared exactly; `stage.*_ns` histograms
//! record wall-clock time, so only their *counts* — which emit sites fired
//! and how often — are pinned.
//!
//! Regenerate after an *intentional* instrumentation change with
//! `cargo xtask golden --bless` (or `GOLDEN_BLESS=1 cargo test --test
//! golden_metrics`), and review the fixture diff like any other code.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;
use tagspin::core::prelude::*;
use tagspin::epc::inventory::{run_inventory, ReaderConfig, Transponder};
use tagspin::geom::{Pose, Vec3};
use tagspin::rf::channel::Environment;
use tagspin::rf::tags::{TagInstance, TagModel};
use xtask::json::{self, Value};

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("metrics_2d.txt")
}

/// Run the canonical trace under a `MetricsObserver` and return the
/// populated registry.
fn canonical_metrics() -> Arc<MetricsRegistry> {
    let mut rng = StdRng::seed_from_u64(7);
    let d1 = DiskConfig::paper_default(Vec3::new(-0.3, 0.0, 0.0));
    let d2 = DiskConfig::paper_default(Vec3::new(0.3, 0.0, 0.0));
    let t1 = SpinningTag::new(d1, TagInstance::manufacture(TagModel::DEFAULT, 1, &mut rng));
    let t2 = SpinningTag::new(d2, TagInstance::manufacture(TagModel::DEFAULT, 2, &mut rng));
    let reader = ReaderConfig::at(Pose::facing_toward(Vec3::new(0.4, 1.7, 0.0), Vec3::ZERO));
    let log = run_inventory(
        &Environment::paper_default(),
        &reader,
        &[&t1 as &dyn Transponder, &t2 as &dyn Transponder],
        d1.period_s(),
        &mut rng,
    );

    let mut server = LocalizationServer::new(PipelineConfig::default());
    server.register(1, d1).expect("unique EPC");
    server.register(2, d2).expect("unique EPC");
    let registry = Arc::new(MetricsRegistry::new());
    server.set_observer(Arc::new(MetricsObserver::new(Arc::clone(&registry))));

    let mut session = server.session(WindowConfig::last_reports(512));
    for report in log.stream() {
        session.ingest(report);
    }
    // One fresh fix and one cached refresh, so both recompute paths emit.
    session
        .fix_2d()
        .expect("canonical trace must produce a fix");
    session.fix_2d().expect("cached refresh must also fix");
    registry
}

/// Render the snapshot in fixture form: everything exact except the
/// wall-clock content of `stage.*_ns` histograms (count pinned, sum and
/// buckets omitted). Floats use shortest-round-trip `Display`, so the
/// comparison is bit-exact.
fn render(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let w = &mut out;
    // lint:allow(no-panic) writing to a String cannot fail
    let ok = "String writes are infallible";
    writeln!(w, "# tagspin golden metrics v1 — canonical 2-tag 2D trace").expect(ok);
    writeln!(
        w,
        "# stage.*_ns histograms are wall-clock: only their counts are pinned."
    )
    .expect(ok);
    for (name, v) in &snap.counters {
        writeln!(w, "counter {name} {v}").expect(ok);
    }
    for (name, v) in &snap.gauges {
        writeln!(w, "gauge {name} {v}").expect(ok);
    }
    for (name, h) in &snap.histograms {
        if name.ends_with("_ns") {
            writeln!(w, "hist {name} count {}", h.count).expect(ok);
        } else {
            write!(w, "hist {name} count {} sum {} buckets", h.count, h.sum).expect(ok);
            for b in &h.buckets {
                write!(w, " {b}").expect(ok);
            }
            writeln!(w).expect(ok);
        }
    }
    out
}

#[test]
fn golden_metrics_2d() {
    let registry = canonical_metrics();
    let rendered = render(&registry.snapshot());
    let path = golden_path();
    if std::env::var_os("GOLDEN_BLESS").is_some_and(|v| v == "1") {
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("create tests/golden");
        std::fs::write(&path, rendered).expect("write fixture");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing fixture {} ({e}); run `cargo xtask golden --bless`",
            path.display()
        )
    });
    assert_eq!(
        rendered, expected,
        "metrics snapshot drifted from the blessed fixture; if the \
         instrumentation change is intentional, run `cargo xtask golden \
         --bless` and review the diff"
    );
}

/// The canonical export is a valid `tagspin-metrics/v1` document under the
/// same parser `cargo xtask bench-check` uses, and its counter section
/// agrees name-for-name with the typed snapshot the fixture pins.
#[test]
fn canonical_export_parses_as_metrics_v1() {
    let registry = canonical_metrics();
    let doc = json::parse(&registry.export_json()).expect("export must parse");
    assert_eq!(
        doc.get("schema").and_then(Value::as_str),
        Some("tagspin-metrics/v1")
    );
    let Some(Value::Obj(counters)) = doc.get("counters") else {
        panic!("counters section missing or not an object");
    };
    let snap = registry.snapshot();
    let parsed_names: Vec<&str> = counters.iter().map(|(k, _)| k.as_str()).collect();
    let typed_names: Vec<&str> = snap.counters.keys().map(String::as_str).collect();
    assert_eq!(parsed_names, typed_names);
}
