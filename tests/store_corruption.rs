//! Calibration-store corruption suite: whatever happens to the bytes on
//! disk — truncation, bit flips, wrong magic, stale schema versions,
//! key/file mismatches — loading yields a *typed* [`StoreError`] (never a
//! panic) or a bit-identical record, and a fix computed through a
//! corrupted store is bit-for-bit the fix a storeless run produces. The
//! store is a cache with a conformance proof, not a source of truth.
//!
//! The fixture is built once: a two-tag deployment is inventoried, a
//! storeless baseline fix recorded, and a golden store directory
//! populated by one store-attached run. Every proptest case then copies
//! the golden record into a fresh directory, mangles it, and checks both
//! the direct load and the end-to-end fix.
//!
//! Case count defaults to 256 and is pinned in CI via `PROPTEST_CASES`
//! (the nightly corruption soak raises it to 4096).

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use tagspin::core::prelude::*;
use tagspin::epc::inventory::{run_inventory, ReaderConfig, Transponder};
use tagspin::epc::InventoryLog;
use tagspin::geom::{Pose, Vec3};
use tagspin::rf::channel::Environment;
use tagspin::rf::tags::{TagInstance, TagModel};

/// A small grid keeps each per-case fix cheap without changing the code
/// paths under test.
fn pipeline_config() -> PipelineConfig {
    PipelineConfig {
        spectrum: SpectrumConfig {
            azimuth_steps: 72,
            polar_steps: 3,
            ..SpectrumConfig::default()
        },
        ..PipelineConfig::default()
    }
}

/// The shared fixture: capture, disks, storeless-baseline fix bits, and a
/// golden store directory holding the pristine persisted record.
struct Fixture {
    log: InventoryLog,
    disks: [DiskConfig; 2],
    baseline_bits: [u64; 3],
    golden: PathBuf,
}

/// Build a registered two-tag server (two bearings make a 2D fix).
fn server(disks: &[DiskConfig; 2]) -> LocalizationServer {
    let mut server = LocalizationServer::new(pipeline_config());
    server.register(1, disks[0]).expect("distinct epcs");
    server.register(2, disks[1]).expect("distinct epcs");
    server
}

fn fix_bits(server: &LocalizationServer, log: &InventoryLog) -> [u64; 3] {
    let fix = server.locate_2d(log).expect("two-bearing fix");
    [
        fix.position.x.to_bits(),
        fix.position.y.to_bits(),
        fix.residual_m.to_bits(),
    ]
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(29);
        let d1 = DiskConfig::paper_default(Vec3::new(-0.3, 0.0, 0.0));
        let d2 = DiskConfig::paper_default(Vec3::new(0.3, 0.0, 0.0));
        let t1 = SpinningTag::new(d1, TagInstance::manufacture(TagModel::DEFAULT, 1, &mut rng));
        let t2 = SpinningTag::new(d2, TagInstance::manufacture(TagModel::DEFAULT, 2, &mut rng));
        let reader = ReaderConfig::at(Pose::facing_toward(Vec3::new(0.0, 2.0, 0.0), Vec3::ZERO));
        let log = run_inventory(
            &Environment::paper_default(),
            &reader,
            &[&t1 as &dyn Transponder, &t2 as &dyn Transponder],
            d1.period_s() * 1.5,
            &mut rng,
        );
        let disks = [d1, d2];
        let baseline_bits = fix_bits(&server(&disks), &log);

        let golden = std::env::temp_dir().join(format!(
            "tagspin-store-corruption-{}-golden",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&golden);
        let mut populate = server(&disks);
        populate.set_store(std::sync::Arc::new(
            FileStore::open(&golden).expect("golden store opens"),
        ));
        let populated_bits = fix_bits(&populate, &log);
        assert_eq!(
            populated_bits, baseline_bits,
            "populating the store already changed the fix"
        );
        Fixture {
            log,
            disks,
            baseline_bits,
            golden,
        }
    })
}

/// The golden record's on-disk file (exactly one table is persisted:
/// both paper-default disks share a radius, hence a [`TableId`]).
fn golden_record(fx: &Fixture) -> (PathBuf, Vec<u8>) {
    let mut files: Vec<PathBuf> = std::fs::read_dir(&fx.golden)
        .expect("golden dir listable")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "tsc"))
        .collect();
    files.sort();
    assert_eq!(files.len(), 1, "expected exactly one golden record");
    let bytes = std::fs::read(&files[0]).expect("golden record readable");
    (files[0].clone(), bytes)
}

/// A fresh per-case directory (proptest cases run concurrently across
/// test binaries; the counter keeps them disjoint).
fn case_dir() -> PathBuf {
    static CASE: AtomicU64 = AtomicU64::new(0);
    // ordering: relaxed — unique-id counter; no data is published through it
    let n = CASE.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "tagspin-store-corruption-{}-case-{n}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("case dir creatable");
    dir
}

/// The requested table id for the fixture's fix path.
fn fixture_table_id(fx: &Fixture) -> TableId {
    TableId::for_radius(fx.disks[0].radius, &pipeline_config().spectrum)
}

/// Mutations, coded by hand (the vendored proptest has no `prop_oneof!`):
/// 0 truncate, 1 bit flip, 2 wrong magic, 3 stale version, 4 key/file
/// mismatch.
fn mangle(code: u8, offset: usize, bytes: &mut Vec<u8>) -> &'static str {
    match code {
        0 => {
            bytes.truncate(offset % bytes.len().max(1));
            "truncation"
        }
        1 => {
            let at = offset % bytes.len().max(1);
            // lint:allow(lossy-cast) offset folded into [0, 8); one bit
            bytes[at] ^= 1u8 << ((offset / bytes.len().max(1)) % 8) as u8;
            "bit flip"
        }
        2 => {
            bytes[..8].copy_from_slice(b"NOTSPNC\0");
            "wrong magic"
        }
        3 => {
            // Version field is little-endian at header offset 8.
            bytes[8] = 0xFF;
            bytes[9] = 0xFF;
            "stale version"
        }
        _ => "key mismatch",
    }
}

/// Assert the mutated record's direct load is safe: a typed error with a
/// non-empty rendering, or a bit-identical table (a flip in the reserved
/// header byte, or a truncation landing exactly at the end, changes
/// nothing the decoder checks).
fn assert_load_is_safe(
    store: &FileStore,
    requested: &TableId,
    pristine: &SteeringTable,
    what: &'static str,
) -> Result<(), TestCaseError> {
    match store.load_table(requested) {
        Ok(table) => {
            let same = table
                .cos_phi()
                .iter()
                .zip(pristine.cos_phi())
                .all(|(a, b)| a.to_bits() == b.to_bits())
                && table
                    .sin_phi()
                    .iter()
                    .zip(pristine.sin_phi())
                    .all(|(a, b)| a.to_bits() == b.to_bits())
                && table.cos_phi().len() == pristine.cos_phi().len();
            prop_assert!(same, "{what}: load succeeded with a *different* table");
        }
        Err(e) => {
            prop_assert!(!e.to_string().is_empty(), "{what}: blank error rendering");
        }
    }
    Ok(())
}

/// Copy the golden record into `dir` under `name`.
fn plant(dir: &Path, name: &std::ffi::OsStr, bytes: &[u8]) {
    std::fs::write(dir.join(name), bytes).expect("case record writable");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every coded mutation of the on-disk record yields a typed error or
    /// an identical table on direct load — and the end-to-end fix through
    /// the mangled store stays bit-identical to the storeless baseline.
    #[test]
    fn prop_corrupt_records_never_change_a_fix(
        code in 0u8..5,
        offset in 0usize..1 << 20,
        alt_radius_sel in 0u8..4,
    ) {
        let fx = fixture();
        let (golden_path, golden_bytes) = golden_record(fx);
        let golden_name = golden_path.file_name().expect("record has a name");
        let requested = fixture_table_id(fx);

        // Decode the pristine record once for the identical-table arm.
        let pristine_store = FileStore::open(&fx.golden).expect("golden store reopens");
        let pristine = pristine_store
            .load_table(&requested)
            .expect("golden record loads");

        let dir = case_dir();
        let (what, target_id) = if code == 4 {
            // Key mismatch: the intact record planted under a *different*
            // id's file name, then requested under that id.
            let cfg = pipeline_config().spectrum;
            let radius = [0.31, 0.47, 0.59, 0.73][usize::from(alt_radius_sel)];
            let other = TableId::for_radius(radius, &cfg);
            let name = format!("table-{:016x}.tsc", other.content_hash());
            plant(&dir, std::ffi::OsStr::new(&name), &golden_bytes);
            ("key mismatch", other)
        } else {
            let mut bytes = golden_bytes.clone();
            let what = mangle(code, offset, &mut bytes);
            plant(&dir, golden_name, &bytes);
            (what, requested)
        };

        let store = FileStore::open(&dir).expect("case store opens");
        if code == 4 {
            // The planted record decodes fine but carries the wrong key:
            // this must be the typed KeyMismatch, not a silent accept.
            let loaded = store.load_table(&target_id);
            prop_assert!(
                matches!(loaded, Err(StoreError::KeyMismatch { .. })),
                "key mismatch load returned {loaded:?}"
            );
        } else {
            assert_load_is_safe(&store, &target_id, &pristine, what)?;
        }

        // End to end: a server over the mangled directory must produce the
        // storeless fix, bit for bit.
        let mut through_store = server(&fx.disks);
        through_store.set_store(std::sync::Arc::new(store));
        let got = fix_bits(&through_store, &fx.log);
        prop_assert_eq!(
            got, fx.baseline_bits,
            "{} changed the fix", what
        );

        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Truncations hitting inside the header or payload are reported as
    /// the typed `Truncated`/`Malformed` family with the right byte
    /// accounting — never a panic, never a partial table.
    #[test]
    fn prop_truncations_are_typed(cut in 0usize..1 << 20) {
        let fx = fixture();
        let (golden_path, golden_bytes) = golden_record(fx);
        let golden_name = golden_path.file_name().expect("record has a name");
        let cut = cut % golden_bytes.len(); // strictly shorter than full
        let dir = case_dir();
        plant(&dir, golden_name, &golden_bytes[..cut]);
        let store = FileStore::open(&dir).expect("case store opens");
        let loaded = store.load_table(&fixture_table_id(fx));
        prop_assert!(
            matches!(loaded, Err(StoreError::Truncated { .. })),
            "cut at {cut} of {} returned {loaded:?}",
            golden_bytes.len()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// `FileStore::verify` flags every mangled record (and `gc` then
    /// removes it), so operators can audit a store without loading it
    /// through an engine.
    #[test]
    fn prop_verify_flags_and_gc_removes_corruption(
        code in 0u8..4,
        offset in 0usize..1 << 20,
    ) {
        let fx = fixture();
        let (golden_path, golden_bytes) = golden_record(fx);
        let golden_name = golden_path.file_name().expect("record has a name");
        let mut bytes = golden_bytes.clone();
        let what = mangle(code, offset, &mut bytes);
        // Skip the mutations that happen to leave a valid record.
        let dir = case_dir();
        plant(&dir, golden_name, &bytes);
        let store = FileStore::open(&dir).expect("case store opens");
        let still_valid = store.load_table(&fixture_table_id(fx)).is_ok();
        let report = store.verify().expect("verify walks the dir");
        prop_assert_eq!(report.len(), 1);
        if still_valid {
            prop_assert!(report[0].error.is_none(), "{}: verify flagged a valid record", what);
        } else {
            prop_assert!(report[0].error.is_some(), "{}: verify missed the corruption", what);
            let removed = store.gc().expect("gc walks the dir");
            prop_assert_eq!(removed.len(), 1, "{}: gc kept a corrupt record", what);
            let after = store.verify().expect("verify after gc");
            prop_assert!(after.is_empty(), "{}: corrupt record survived gc", what);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
