//! End-to-end estimator backend conformance over the simulated pipeline.
//!
//! One clean two-tag inventory log, served through every
//! [`EstimatorBackend`] at both the batch (`locate_*`) and streaming
//! (session `fix_*`) entry points. The contract:
//!
//! 1. **Default invariance** — the spectrum backend's estimate carries
//!    exactly the legacy `locate_2d`/`fix_2d` fix, bit for bit.
//! 2. **Refinement quality** — the ML and hybrid backends deliver finite
//!    fixes within a small radius of the true reader position, with a
//!    finite PSD confidence when one is computed.
//! 3. **Hybrid policy** — on a clean capture the hybrid fix equals the ML
//!    fix; on a corrupted capture it falls back to the spectrum fix.
//! 4. **Wrapper parity** — `fix_2d()` and `fix_2d_estimate().fix` agree
//!    for every backend (the deduplicated dispatch path serves both).

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::OnceLock;
use tagspin::core::prelude::*;
use tagspin::epc::inventory::{run_inventory, ReaderConfig, Transponder};
use tagspin::epc::InventoryLog;
use tagspin::geom::{Pose, Vec2, Vec3};
use tagspin::rf::channel::Environment;
use tagspin::rf::tags::{TagInstance, TagModel};

const TRUTH: Vec3 = Vec3::new(0.4, 1.7, 0.0);

fn server_with(backend: EstimatorBackend) -> LocalizationServer {
    let mut server = LocalizationServer::new(PipelineConfig::default());
    server.config.estimator.backend = backend;
    server
        .register(1, DiskConfig::paper_default(Vec3::new(-0.3, 0.0, 0.0)))
        .expect("unique EPC");
    server
        .register(2, DiskConfig::paper_default(Vec3::new(0.3, 0.0, 0.0)))
        .expect("unique EPC");
    server
}

/// One clean simulated rotation of the two-tag deployment, built once.
fn clean_log() -> &'static InventoryLog {
    static LOG: OnceLock<InventoryLog> = OnceLock::new();
    LOG.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(41);
        let d1 = DiskConfig::paper_default(Vec3::new(-0.3, 0.0, 0.0));
        let d2 = DiskConfig::paper_default(Vec3::new(0.3, 0.0, 0.0));
        let t1 = SpinningTag::new(d1, TagInstance::manufacture(TagModel::DEFAULT, 1, &mut rng));
        let t2 = SpinningTag::new(d2, TagInstance::manufacture(TagModel::DEFAULT, 2, &mut rng));
        let reader = ReaderConfig::at(Pose::facing_toward(TRUTH, Vec3::ZERO));
        run_inventory(
            &Environment::paper_default(),
            &reader,
            &[&t1 as &dyn Transponder, &t2 as &dyn Transponder],
            d1.period_s(),
            &mut rng,
        )
    })
}

#[test]
fn spectrum_estimate_is_legacy_fix_verbatim() {
    let server = server_with(EstimatorBackend::Spectrum);
    let est = server.locate_2d_estimate(clean_log()).expect("fix");
    let legacy = server.locate_2d(clean_log()).expect("fix");
    assert_eq!(est.fix, legacy);
    assert_eq!(est.backend, EstimatorBackend::Spectrum);
    assert!(est.ml.is_none());
}

#[test]
fn every_backend_lands_near_truth_2d() {
    for backend in [
        EstimatorBackend::Spectrum,
        EstimatorBackend::Ml,
        EstimatorBackend::Hybrid,
    ] {
        let server = server_with(backend);
        let est = server.locate_2d_estimate(clean_log()).expect("fix");
        let err = (est.fix.position - TRUTH.xy()).norm();
        assert!(
            err < 0.15,
            "{backend:?} fix {:?} is {err:.3} m from truth",
            est.fix.position
        );
        assert!(est.fix.position.is_finite());
        if let Ok(conf) = est.confidence {
            assert!(conf.is_finite_psd(), "{backend:?}: {conf:?}");
        }
    }
}

#[test]
fn ml_backend_reports_an_accepted_refinement() {
    let server = server_with(EstimatorBackend::Ml);
    let est = server.locate_2d_estimate(clean_log()).expect("fix");
    let report = est.ml.expect("ml report");
    assert!(report.accepted, "{report:?}");
    assert!(report.final_cost <= report.seed_cost + 1e-12, "{report:?}");
    assert!(report.mean_weight > 0.5, "{report:?}");
    let conf = est.confidence.expect("ml confidence");
    assert!(conf.is_finite_psd());
}

#[test]
fn hybrid_matches_ml_on_clean_capture() {
    let ml = server_with(EstimatorBackend::Ml)
        .locate_2d_estimate(clean_log())
        .expect("fix");
    let hybrid = server_with(EstimatorBackend::Hybrid)
        .locate_2d_estimate(clean_log())
        .expect("fix");
    assert!(hybrid.ml.expect("report").accepted);
    assert_eq!(hybrid.fix, ml.fix);
    assert_eq!(hybrid.backend, EstimatorBackend::Hybrid);
}

#[test]
fn hybrid_falls_back_to_spectrum_on_corrupted_phases() {
    // Re-randomize every phase: the bearings stay plausible enough for the
    // spectrum seed but the raw-phase model collapses, so the hybrid
    // weight floor must reject the refinement.
    let mut rng = StdRng::seed_from_u64(99);
    let corrupted: InventoryLog = clean_log()
        .reports()
        .iter()
        .map(|r| {
            let mut r = *r;
            r.phase = tagspin::geom::angle::wrap_tau(8.13 * tagspin::rf::noise::gaussian(&mut rng));
            r
        })
        .collect();
    let hybrid_server = server_with(EstimatorBackend::Hybrid);
    let spectrum_server = server_with(EstimatorBackend::Spectrum);
    let (Ok(hybrid), Ok(spectrum)) = (
        hybrid_server.locate_2d_estimate(&corrupted),
        spectrum_server.locate_2d_estimate(&corrupted),
    ) else {
        // Fully scrambled phases may fail the spectrum fix itself; that
        // refusal path is exercised elsewhere.
        return;
    };
    assert_eq!(hybrid.fix, spectrum.fix);
    assert!(!hybrid.ml.expect("report").accepted);
}

#[test]
fn session_wrappers_agree_with_estimate_path() {
    for backend in [
        EstimatorBackend::Spectrum,
        EstimatorBackend::Ml,
        EstimatorBackend::Hybrid,
    ] {
        let server = server_with(backend);
        let mut plain = server.session(WindowConfig::unbounded());
        plain.ingest_log(clean_log());
        let fix = plain.fix_2d().expect("fix");

        let mut est_session = server.session(WindowConfig::unbounded());
        est_session.ingest_log(clean_log());
        let est = est_session.fix_2d_estimate().expect("fix");
        assert_eq!(fix, est.fix, "{backend:?} wrapper parity");
        assert_eq!(est.backend, backend);
    }
}

#[test]
fn backends_resolve_3d_and_aided_fixes() {
    for backend in [
        EstimatorBackend::Spectrum,
        EstimatorBackend::Ml,
        EstimatorBackend::Hybrid,
    ] {
        let server = server_with(backend);
        let est = server.locate_3d_estimate(clean_log()).expect("3d fix");
        assert!(est.fix.position.is_finite());
        assert!(
            (est.fix.position.xy() - TRUTH.xy()).norm() < 0.3,
            "{backend:?}: {:?}",
            est.fix.position
        );
        let aided = server
            .locate_3d_aided_estimate(clean_log())
            .expect("aided fix");
        assert!(aided.fix.position.is_finite());
    }
}

#[test]
fn estimator_metrics_count_served_backend() {
    let mut server = server_with(EstimatorBackend::Ml);
    let registry = std::sync::Arc::new(MetricsRegistry::new());
    server.set_observer(std::sync::Arc::new(MetricsObserver::new(
        std::sync::Arc::clone(&registry),
    )));
    let mut session = server.session(WindowConfig::unbounded());
    session.ingest_log(clean_log());
    session.fix_2d_estimate().expect("fix");
    let snap = registry.snapshot();
    let counter = |name: &str| snap.counters.get(name).copied().unwrap_or(0);
    assert_eq!(counter("estimator.fix.ml"), 1);
    assert_eq!(counter("estimator.fix.spectrum"), 0);
}

#[test]
fn truth_constant_matches_scenario_geometry() {
    // The reader faces the rig midpoint; sanity-pin the layout the other
    // assertions lean on.
    assert!((TRUTH.xy() - Vec2::new(0.4, 1.7)).norm() < 1e-12);
}
