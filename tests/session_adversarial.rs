//! Adversarial ingest: the quarantine layer under hostile streams.
//!
//! The contract under test: a hardened [`ReaderSession`] fed *arbitrary*
//! reports — NaN/infinite/out-of-range phases, bogus RSSI, null and
//! unknown EPCs, backward timestamps, exact duplicates — must
//!
//! 1. never panic,
//! 2. account for every single report: `ingested` equals the number of
//!    `Buffered` outcomes, `rejects` matches the returned reasons
//!    counter-for-counter, and per-stream stats sum back to the session
//!    totals, and
//! 3. stay equivalent to the batch pipeline on the surviving clean
//!    subset: re-running the buffered reports (time-sorted) through
//!    `locate_2d` reproduces the streaming fix bit-for-bit, errors
//!    included.

use std::f64::consts::TAU;

use proptest::prelude::*;
use tagspin::core::prelude::*;
use tagspin::epc::{InventoryLog, TagReport};
use tagspin::geom::Vec3;

/// Two registered disks (EPCs 1 and 2); EPC 99 stays unknown, EPC 0 is
/// the null tag the value screen rejects.
fn hostile_server() -> LocalizationServer {
    let mut server = LocalizationServer::new(PipelineConfig::default());
    server
        .register(1, DiskConfig::paper_default(Vec3::new(-0.3, 0.0, 0.0)))
        .expect("unique EPC");
    server
        .register(2, DiskConfig::paper_default(Vec3::new(0.3, 0.0, 0.0)))
        .expect("unique EPC");
    server
}

/// Decode one strategy tuple into a (possibly hostile) report.
///
/// `phase_sel` / `rssi_sel` pick between poisoned and plausible values so
/// every generated stream mixes valid reads with every defect class;
/// `dup` re-keys the report onto round timestamps so exact duplicates and
/// backward jumps both occur often.
#[allow(clippy::too_many_arguments)]
fn decode(
    epc_sel: u8,
    t_us: u64,
    dup: bool,
    phase_sel: u8,
    phase_raw: f64,
    rssi_sel: u8,
    rssi_raw: f64,
    channel: u8,
) -> TagReport {
    let epc = match epc_sel % 5 {
        0 => 0,  // null EPC: value screen
        1 => 99, // unregistered: registry screen
        2 => 1,
        3 => 2,
        _ => 1,
    };
    let phase = match phase_sel % 6 {
        0 => f64::NAN,
        1 => f64::INFINITY,
        2 => f64::NEG_INFINITY,
        3 => phase_raw,                      // likely out of [0, TAU)
        _ => phase_raw.abs() % (TAU - 1e-9), // lint:allow(angle-hygiene) — forging raw reports, not wrapping angles
    };
    let rssi_dbm = match rssi_sel % 5 {
        0 => f64::NAN,
        1 => rssi_raw, // likely out of [-120, 20]
        _ => -60.0,
    };
    TagReport {
        epc,
        // Collapsing to a coarse grid makes exact timestamp collisions
        // (duplicate keys) and backward jumps common rather than rare.
        timestamp_us: if dup { (t_us / 4) * 4 } else { t_us },
        phase,
        rssi_dbm,
        channel_index: channel % 64,
        antenna_id: 1,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Invariants 1 and 2: no panic, and exact quarantine accounting.
    #[test]
    fn prop_hostile_stream_is_fully_accounted(
        raw in proptest::collection::vec(
            (0u8..8, 0u64..2_000_000, (0u8..2).prop_map(|b| b == 1), 0u8..8,
             -10.0f64..10.0, 0u8..8, -300.0f64..200.0, 0u8..255),
            0..250,
        ),
    ) {
        let server = hostile_server();
        let mut session = server.session(WindowConfig::unbounded());

        let mut buffered = 0u64;
        let mut rejected = 0u64;
        let mut by_reason = RejectCounts::default();
        for &(e, t, d, ps, pr, rs, rr, ch) in &raw {
            let report = decode(e, t, d, ps, pr, rs, rr, ch);
            match session.ingest(&report) {
                IngestOutcome::Buffered => buffered += 1,
                IngestOutcome::Rejected(reason) => {
                    rejected += 1;
                    by_reason.record(reason);
                }
            }
        }

        let stats = session.stats();
        prop_assert_eq!(stats.ingested, buffered);
        prop_assert_eq!(stats.rejects.total(), rejected);
        prop_assert_eq!(stats.ingested + stats.rejects.total(), raw.len() as u64);
        // Reason-for-reason agreement with the returned outcomes.
        prop_assert_eq!(stats.rejects, by_reason);
        // Unbounded window: nothing evicted, streams sum to the total.
        prop_assert_eq!(stats.evicted, 0);
        let per_stream: u64 = [1u128, 2]
            .iter()
            .filter_map(|&epc| session.tag_stats(epc))
            .map(|s| s.buffered as u64)
            .sum();
        prop_assert_eq!(per_stream, stats.buffered as u64);
        prop_assert_eq!(stats.ingested, per_stream);
    }

    /// Invariant 3: the streaming fix over a hostile stream equals the
    /// batch fix over the clean subset that survived quarantine.
    #[test]
    fn prop_clean_subset_batch_equivalence(
        raw in proptest::collection::vec(
            (0u8..8, 0u64..2_000_000, (0u8..2).prop_map(|b| b == 1), 0u8..8,
             -10.0f64..10.0, 0u8..8, -300.0f64..200.0, 0u8..255),
            0..250,
        ),
    ) {
        let server = hostile_server();
        let mut session = server.session(WindowConfig::unbounded());

        let mut survivors: Vec<TagReport> = Vec::new();
        for &(e, t, d, ps, pr, rs, rr, ch) in &raw {
            let report = decode(e, t, d, ps, pr, rs, rr, ch);
            if session.ingest(&report) == IngestOutcome::Buffered {
                survivors.push(report);
            }
        }

        // Stable sort by timestamp: globally monotone (InventoryLog's
        // requirement) while preserving each stream's buffered order, so
        // the batch session screens the identical per-stream sequences.
        survivors.sort_by_key(|r| r.timestamp_us);
        let mut clean = InventoryLog::new();
        for r in survivors {
            clean.push(r);
        }
        prop_assert_eq!(server.locate_2d(&clean), session.fix_2d());
    }
}

/// A focused non-property case: one poisoned report of each defect class
/// plus a clean capture; the quarantine isolates the poison and the fix
/// still lands near the clean-only fix.
#[test]
fn each_defect_class_is_isolated() {
    let server = hostile_server();
    let mut session = server.session(WindowConfig::unbounded());

    let poison = [
        (0u128, 10, 1.0, -60.0),       // null EPC
        (1, 20, f64::NAN, -60.0),      // NaN phase
        (1, 30, f64::INFINITY, -60.0), // infinite phase
        (1, 40, 100.0, -60.0),         // phase out of range
        (1, 50, 1.0, f64::NAN),        // NaN RSSI
        (1, 60, 1.0, -500.0),          // RSSI out of range
        (99, 70, 1.0, -60.0),          // unknown tag
    ];
    for (epc, t, phase, rssi) in poison {
        let outcome = session.ingest(&TagReport {
            epc,
            timestamp_us: t,
            phase,
            rssi_dbm: rssi,
            channel_index: 0,
            antenna_id: 1,
        });
        assert!(
            matches!(outcome, IngestOutcome::Rejected(_)),
            "poisoned report must be rejected, got {outcome:?}"
        );
    }
    let stats = session.stats();
    assert_eq!(stats.rejects.total(), poison.len() as u64);
    assert_eq!(stats.rejects.null_epc, 1);
    assert_eq!(stats.rejects.non_finite_phase, 2);
    assert_eq!(stats.rejects.phase_out_of_range, 1);
    assert_eq!(stats.rejects.bad_rssi, 2);
    assert_eq!(stats.rejects.unknown_tag, 1);
    assert_eq!(stats.ingested, 0);
}
