//! End-to-end fleet-service equivalence: N concurrent simulated readers
//! stream framed LLRP reports into a live `tagspin-serve` daemon over
//! real loopback TCP, and every fix answered over HTTP must be
//! **bit-identical** to a single-process `SessionManager` fed the same
//! wire stream — clean captures and fault-injected ones alike (the PR-4
//! adversarial `FaultPlan` supplies the corruption).
//!
//! The local twin ingests the *decoded wire* reports (LLRP quantizes
//! phase to 1/4096 turn and RSSI to centi-dBm), so both sides see the
//! same bytes-on-the-wire truth, the way a second daemon replica would.
//! Accounting is pinned too: at low rate with roomy queues nothing may
//! be shed, every frame and report must be counted, and the `/metrics`
//! scrape must agree with the daemon's own books.

use std::f64::consts::TAU;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;
use tagspin::core::prelude::*;
use tagspin::epc::inventory::{run_inventory, ReaderConfig, Transponder};
use tagspin::epc::llrp;
use tagspin::epc::{InventoryLog, TagReport};
use tagspin::geom::{Pose, Vec3};
use tagspin::rf::channel::Environment;
use tagspin::rf::tags::{TagInstance, TagModel};
use tagspin::rf::ReaderAntenna;
use tagspin::serve::{http_get, ReaderClient, ServeConfig, ServeDaemon};
use tagspin::sim::fault::FaultPlan;
use xtask::json::{self, Value};

/// Concurrent simulated readers (the ISSUE's N ≥ 8 floor).
const READERS: u8 = 8;
/// Reports per wire frame (before monotonic-run splitting).
const FRAME_REPORTS: usize = 48;

fn disks() -> (DiskConfig, DiskConfig) {
    (
        DiskConfig::paper_default(Vec3::new(-0.3, 0.0, 0.0)),
        DiskConfig::paper_default(Vec3::new(0.3, 0.0, 0.0)),
    )
}

fn make_server() -> LocalizationServer {
    let (d1, d2) = disks();
    let mut server = LocalizationServer::new(PipelineConfig::default());
    server.register(1, d1).expect("unique EPC");
    server.register(2, d2).expect("unique EPC");
    server
}

/// One reader's capture: a full rotation observed from a ring position,
/// reported under its own antenna id.
fn reader_log(antenna: u8) -> InventoryLog {
    let mut rng = StdRng::seed_from_u64(7);
    let (d1, d2) = disks();
    let t1 = SpinningTag::new(d1, TagInstance::manufacture(TagModel::DEFAULT, 1, &mut rng));
    let t2 = SpinningTag::new(d2, TagInstance::manufacture(TagModel::DEFAULT, 2, &mut rng));
    let angle = f64::from(antenna) / f64::from(READERS) * TAU;
    let pos = Vec3::new(1.7 * angle.cos(), 1.7 * angle.sin(), 0.0);
    let reader = ReaderConfig::at(Pose::facing_toward(pos, Vec3::ZERO))
        .with_antenna(ReaderAntenna::typical(antenna));
    let mut run_rng = StdRng::seed_from_u64(100 + u64::from(antenna));
    run_inventory(
        &Environment::paper_default(),
        &reader,
        &[&t1 as &dyn Transponder, &t2 as &dyn Transponder],
        d1.period_s(),
        &mut run_rng,
    )
}

/// Split a (possibly fault-reordered) delivery stream into wire frames:
/// maximal monotonic runs capped at [`FRAME_REPORTS`], preserving
/// delivery order. LLRP messages are time-ordered *within* a frame; the
/// reorder faults survive across frame boundaries, which is exactly
/// where the session's out-of-order screen sees them.
fn wire_frames(stream: &[TagReport]) -> Vec<InventoryLog> {
    let mut frames = Vec::new();
    let mut run: Vec<TagReport> = Vec::new();
    for report in stream {
        let breaks = run.len() >= FRAME_REPORTS
            || run
                .last()
                .is_some_and(|last| report.timestamp_us < last.timestamp_us);
        if breaks {
            frames.push(run.drain(..).collect());
        }
        run.push(*report);
    }
    if !run.is_empty() {
        frames.push(run.into_iter().collect());
    }
    frames
}

/// What the daemon's decoder reconstructs from one frame — the
/// quantized wire truth both sides must ingest.
fn wire_roundtrip(frame: &InventoryLog) -> InventoryLog {
    let bytes = llrp::encode_report(frame, 1);
    llrp::decode_report(bytes).expect("own encoding decodes").0
}

/// Drive all readers' frame sequences concurrently through the daemon,
/// wait for the books to settle, and return (frames_sent, reports_sent).
fn stream_all(daemon: &ServeDaemon, per_reader: &[Vec<InventoryLog>]) -> (u64, u64) {
    let frames_sent: u64 = per_reader.iter().map(|f| f.len() as u64).sum();
    let reports_sent: u64 = per_reader.iter().flatten().map(|f| f.len() as u64).sum();
    let addr = daemon.ingest_addr();
    std::thread::scope(|scope| {
        for frames in per_reader {
            scope.spawn(move || {
                let mut client = ReaderClient::connect(addr).expect("connect reader");
                for frame in frames {
                    client.send_log(frame).expect("send frame");
                }
                client.finish().expect("clean close");
            });
        }
    });
    // The readers have closed, but their daemon-side threads may still be
    // decoding buffered bytes: wait until every frame is on the books,
    // then barrier the shard queues.
    for _ in 0..2000 {
        if daemon.stats().frames + daemon.stats().frame_errors >= frames_sent {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    let (status, _body) = http_get(daemon.http_addr(), "/drain").expect("drain");
    assert_eq!(status, 200);
    (frames_sent, reports_sent)
}

/// Fetch `/fix/2d?antenna=N` and compare bit-for-bit against the local
/// twin's answer for the same antenna.
fn assert_fix_matches(daemon: &ServeDaemon, local: Result<Fix2D, String>, antenna: u8) {
    let (status, body) =
        http_get(daemon.http_addr(), &format!("/fix/2d?antenna={antenna}")).expect("fix query");
    let doc = json::parse(&body).expect("fix body parses as JSON");
    match local {
        Ok(fix) => {
            assert_eq!(status, 200, "antenna {antenna}: {body}");
            let field = |k: &str| {
                doc.get(k)
                    .and_then(Value::as_num)
                    .unwrap_or_else(|| panic!("antenna {antenna}: missing {k} in {body}"))
            };
            assert_eq!(
                field("x").to_bits(),
                fix.position.x.to_bits(),
                "antenna {antenna} x"
            );
            assert_eq!(
                field("y").to_bits(),
                fix.position.y.to_bits(),
                "antenna {antenna} y"
            );
            assert_eq!(
                field("residual_m").to_bits(),
                fix.residual_m.to_bits(),
                "antenna {antenna} residual"
            );
        }
        Err(message) => {
            assert_eq!(status, 409, "antenna {antenna}: {body}");
            assert_eq!(
                doc.get("error").and_then(Value::as_str),
                Some(message.as_str()),
                "antenna {antenna} error text"
            );
        }
    }
}

/// The shared scenario: build per-reader delivery streams (optionally
/// faulted), run them through a live daemon AND a single-process twin,
/// then compare every antenna's fix bit-for-bit.
fn run_equivalence(fault: Option<FaultPlan>) {
    let per_reader: Vec<Vec<InventoryLog>> = (1..=READERS)
        .map(|antenna| {
            let log = reader_log(antenna);
            let stream = match fault {
                Some(plan) => plan.apply(&log, 4000 + u64::from(antenna)),
                None => log.reports().to_vec(),
            };
            wire_frames(&stream)
        })
        .collect();

    // Local twin: same pipeline, same window, fed the decoded wire
    // stream in the same per-antenna order.
    let local_server = make_server();
    let mut local =
        local_server.session_manager(tagspin::core::session::window::WindowConfig::unbounded());
    for frames in &per_reader {
        for frame in frames {
            let decoded = wire_roundtrip(frame);
            local.ingest_batch(decoded.reports());
        }
    }

    let config = ServeConfig {
        shards: 3, // deliberately not a divisor of READERS: shards share antennas
        // Faulted streams fragment into thousands of tiny monotonic-run
        // frames; equivalence needs queues deep enough that nothing sheds.
        queue_capacity: 65_536,
        ..ServeConfig::default()
    };
    let daemon = ServeDaemon::start(make_server(), &config).expect("daemon boots");
    let (frames_sent, reports_sent) = stream_all(&daemon, &per_reader);

    let stats = daemon.stats();
    assert_eq!(stats.connections, u64::from(READERS));
    assert_eq!(stats.frames, frames_sent, "every frame decodes");
    assert_eq!(stats.frame_errors, 0, "well-formed wire stream");
    assert_eq!(
        stats.reports_enqueued, reports_sent,
        "roomy queues at low rate must never shed"
    );
    assert_eq!(stats.reports_shed, 0);
    assert_eq!(stats.rejects.overload, 0);
    assert_eq!(stats.queued_batches, 0, "drained");

    // Every streamed antenna, plus one the fleet never used (the typed
    // error must round-trip the HTTP plane too).
    for antenna in 1..=READERS + 1 {
        let local_fix = local.fix_2d(antenna).map_err(|e| e.to_string());
        assert_fix_matches(&daemon, local_fix, antenna);
    }

    daemon.shutdown();
}

#[test]
fn clean_fleet_matches_single_process_bit_for_bit() {
    run_equivalence(None);
}

#[test]
fn faulted_fleet_matches_single_process_bit_for_bit() {
    run_equivalence(Some(FaultPlan::at_rate(0.3)));
}

#[test]
fn metrics_scrape_agrees_with_daemon_books() {
    let per_reader: Vec<Vec<InventoryLog>> = (1..=4)
        .map(|antenna| wire_frames(reader_log(antenna).reports()))
        .collect();
    let daemon = ServeDaemon::start(make_server(), &ServeConfig::default()).expect("daemon boots");
    let (frames_sent, reports_sent) = stream_all(&daemon, &per_reader);

    let (status, body) = http_get(daemon.http_addr(), "/metrics").expect("scrape");
    assert_eq!(status, 200);
    let doc = json::parse(&body).expect("scrape parses");
    assert_eq!(
        doc.get("schema").and_then(Value::as_str),
        Some("tagspin-metrics/v1")
    );
    let counter = |name: &str| {
        doc.get("counters")
            .and_then(|c| c.get(name))
            .and_then(Value::as_num)
            .unwrap_or_else(|| panic!("missing counter {name}"))
    };
    // lint:allow(lossy-cast) counters in this test are tiny
    assert_eq!(counter("serve.frames") as u64, frames_sent);
    assert_eq!(counter("serve.reports.enqueued") as u64, reports_sent);
    assert_eq!(counter("serve.reports.shed") as u64, 0);
    assert_eq!(counter("ingest.rejected.overload") as u64, 0);
    // The shards ingested everything that was enqueued.
    assert_eq!(
        counter("ingest.accepted") as u64 + counted_rejects(&doc),
        reports_sent
    );
    // Decode/route stage timers fired under the metrics observer.
    let hist_count = |name: &str| {
        doc.get("histograms")
            .and_then(|h| h.get(name))
            .and_then(|h| h.get("count"))
            .and_then(Value::as_num)
            .unwrap_or_else(|| panic!("missing histogram {name}"))
    };
    assert!(hist_count("stage.decode_ns") >= 1.0);
    assert!(hist_count("stage.route_ns") >= 1.0);

    let (status, body) = http_get(daemon.http_addr(), "/healthz").expect("healthz");
    assert_eq!((status, body.as_str()), (200, "ok\n"));
    let (status, _) = http_get(daemon.http_addr(), "/no-such").expect("404 route");
    assert_eq!(status, 404);

    daemon.shutdown();
}

/// Sum the in-session quarantine counters from a scrape (the wire
/// round-trip itself can legitimately quarantine duplicates at exact
/// timestamp collisions).
fn counted_rejects(doc: &Value) -> u64 {
    [
        "ingest.rejected.unknown_tag",
        "ingest.rejected.out_of_order",
        "ingest.rejected.duplicate",
        "ingest.rejected.non_finite_phase",
        "ingest.rejected.phase_out_of_range",
        "ingest.rejected.bad_rssi",
        "ingest.rejected.null_epc",
    ]
    .iter()
    .map(|name| {
        doc.get("counters")
            .and_then(|c| c.get(name))
            .and_then(Value::as_num)
            // lint:allow(lossy-cast) counters in this test are tiny
            .map_or(0, |v| v as u64)
    })
    .sum()
}

/// Warm boot through the calibration store: a cold daemon run over a
/// fresh store directory persists its steering tables; a warm reboot
/// over the same directory prewarms from disk (`store_table_hits` > 0,
/// visible in both the daemon books and the `/stats` JSON), replays the
/// same 8-reader streams, and must answer every fix **byte-identical**
/// to the cold run — the fix JSON uses shortest-roundtrip `f64`
/// formatting, so body equality is bit equality.
#[test]
fn warm_boot_replays_bit_identical_fixes() {
    let dir = std::env::temp_dir().join(format!("tagspin-store-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let per_reader: Vec<Vec<InventoryLog>> = (1..=READERS)
        .map(|antenna| wire_frames(reader_log(antenna).reports()))
        .collect();
    let config = ServeConfig {
        shards: 3,
        queue_capacity: 65_536,
        store_dir: Some(dir.clone()),
        ..ServeConfig::default()
    };

    // Cold boot: an empty store — tables are built fresh and persisted.
    let cold = ServeDaemon::start(make_server(), &config).expect("cold boot");
    stream_all(&cold, &per_reader);
    let cold_fixes: Vec<(u16, String)> = (1..=READERS)
        .map(|antenna| {
            http_get(cold.http_addr(), &format!("/fix/2d?antenna={antenna}")).expect("cold fix")
        })
        .collect();
    let cold_stats = cold.stats();
    assert!(
        cold_stats.store_persisted > 0,
        "cold boot must populate the store: {cold_stats:?}"
    );
    assert_eq!(cold_stats.store_table_hits, 0, "the store started empty");
    cold.shutdown();

    // Warm boot: same directory — the prewarm must come from disk.
    let warm = ServeDaemon::start(make_server(), &config).expect("warm boot");
    let boot_stats = warm.stats();
    assert!(
        boot_stats.store_table_hits > 0,
        "warm boot must load tables from the store: {boot_stats:?}"
    );
    assert_eq!(
        boot_stats.store_invalid, 0,
        "a clean store has nothing to reject: {boot_stats:?}"
    );
    stream_all(&warm, &per_reader);
    for (antenna, cold_answer) in (1..=READERS).zip(&cold_fixes) {
        let warm_answer =
            http_get(warm.http_addr(), &format!("/fix/2d?antenna={antenna}")).expect("warm fix");
        assert_eq!(
            &warm_answer, cold_answer,
            "antenna {antenna}: warm fix diverged from cold"
        );
    }

    // The hit counters are part of the operator surface too.
    let (status, body) = http_get(warm.http_addr(), "/stats").expect("stats");
    assert_eq!(status, 200);
    let doc = json::parse(&body).expect("stats parse");
    let field = |k: &str| {
        doc.get(k)
            .and_then(Value::as_num)
            .unwrap_or_else(|| panic!("missing {k} in {body}"))
    };
    assert!(field("store_table_hits") > 0.0, "{body}");
    assert!(field("store_invalid") < 0.5, "{body}");
    warm.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Overload is typed, accounted, and bounded: with a one-slot queue and
/// an artificially slow shard, sheds must appear, every offered report
/// must be accounted as enqueued or shed, and the serve-tier books must
/// agree with the metrics.
#[test]
fn overload_sheds_are_typed_and_accounted() {
    let per_reader: Vec<Vec<InventoryLog>> = (1..=4)
        .map(|antenna| wire_frames(reader_log(antenna).reports()))
        .collect();
    let config = ServeConfig {
        shards: 1,
        queue_capacity: 1,
        shard_delay: Some(std::time::Duration::from_millis(20)),
        ..ServeConfig::default()
    };
    let daemon = ServeDaemon::start(make_server(), &config).expect("daemon boots");
    let (_frames, reports_sent) = stream_all(&daemon, &per_reader);

    let stats = daemon.stats();
    assert!(stats.reports_shed > 0, "a one-slot queue must shed");
    assert_eq!(stats.reports_enqueued + stats.reports_shed, reports_sent);
    assert_eq!(stats.rejects.overload, stats.reports_shed);
    let registry = Arc::clone(daemon.registry());
    daemon.shutdown();
    let snap = registry.snapshot();
    assert_eq!(snap.counters["serve.reports.shed"], stats.reports_shed);
    assert_eq!(
        snap.counters["ingest.rejected.overload"],
        stats.reports_shed
    );
}
