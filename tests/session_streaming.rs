//! Streaming/batch equivalence and sliding-window semantics of the session
//! pipeline.
//!
//! The contract under test: a [`ReaderSession`] with an unbounded window,
//! fed an inventory log report-by-report, produces **bit-identical** fixes
//! to the batch `locate_*` entry points fed the same log whole — including
//! when fixes are queried mid-stream (dirty-flag recomputation must not
//! drift). Bounded windows must agree with the batch pipeline run on the
//! equivalently-truncated log.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use tagspin::core::prelude::*;
use tagspin::epc::inventory::{run_inventory, ReaderConfig, Transponder};
use tagspin::epc::{InventoryLog, TagReport};
use tagspin::geom::{Pose, Vec2, Vec3};
use tagspin::rf::channel::Environment;
use tagspin::rf::tags::{TagInstance, TagModel};

fn pipeline_config() -> PipelineConfig {
    PipelineConfig {
        spectrum: SpectrumConfig {
            azimuth_steps: 360,
            polar_steps: 31,
            references: 8,
            ..SpectrumConfig::default()
        },
        // These tests pin the legacy bit-equality contract. The incremental
        // path serves a full-grid peak that may legitimately differ from the
        // default coarse-to-fine search within one grid step, so it gets its
        // own scoped tests below.
        incremental: IncrementalPolicy::disabled(),
        ..PipelineConfig::default()
    }
}

/// Standard deployment: spinning tags on the given disks, a server with
/// every disk registered, and one observation log from `truth`.
fn deploy(disks: &[DiskConfig], truth: Vec3, seed: u64) -> (LocalizationServer, InventoryLog) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut server = LocalizationServer::new(pipeline_config());
    let mut tags = Vec::new();
    for (i, &disk) in disks.iter().enumerate() {
        let epc = (i + 1) as u128;
        tags.push(SpinningTag::new(
            disk,
            TagInstance::manufacture(TagModel::DEFAULT, epc, &mut rng),
        ));
        server.register(epc, disk).expect("unique EPCs");
    }
    let reader = ReaderConfig::at(Pose::facing_toward(truth, disks[0].center));
    let transponders: Vec<&dyn Transponder> = tags.iter().map(|t| t as &dyn Transponder).collect();
    let log = run_inventory(
        &Environment::paper_default(),
        &reader,
        &transponders,
        disks[0].period_s(),
        &mut rng,
    );
    (server, log)
}

fn two_disks() -> Vec<DiskConfig> {
    vec![
        DiskConfig::paper_default(Vec3::new(-0.3, 0.0, 0.0)),
        DiskConfig::paper_default(Vec3::new(0.3, 0.0, 0.0)),
    ]
}

#[test]
fn streaming_2d_matches_batch_with_interleaved_fixes() {
    let (server, log) = deploy(&two_disks(), Vec3::new(0.4, 1.8, 0.0), 42);
    let batch = server.locate_2d(&log).expect("batch fix");

    let mut session = server.session(WindowConfig::unbounded());
    for (i, report) in log.stream().enumerate() {
        session.ingest(report);
        // Query fixes mid-stream: the dirty-flag cache must recompute from
        // the grown buffers, never from stale state.
        if i % 97 == 0 {
            let _ = session.fix_2d();
        }
    }
    let streamed = session.fix_2d().expect("streaming fix");
    assert_eq!(batch, streamed);
    // A second query without new data hits the caches and must be
    // identical too.
    assert_eq!(streamed, session.fix_2d().expect("cached fix"));
    assert!(!session.tag_stats(1).expect("stream exists").dirty);
}

#[test]
fn streaming_3d_and_aided_match_batch() {
    let disks = two_disks();
    let (server, log) = deploy(&disks, Vec3::new(0.3, 1.6, 0.8), 11);

    let mut session = server.session(WindowConfig::unbounded());
    session.ingest_log(&log);

    let batch_3d = server.locate_3d(&log).expect("batch 3d fix");
    assert_eq!(batch_3d, session.fix_3d().expect("streaming 3d fix"));

    let batch_aided = server.locate_3d_aided(&log).expect("batch aided fix");
    assert_eq!(
        batch_aided,
        session.fix_3d_aided().expect("streaming aided fix")
    );
}

#[test]
fn count_window_matches_batch_on_truncated_log() {
    let (server, log) = deploy(&two_disks(), Vec3::new(-0.2, 2.0, 0.0), 7);
    let max = 64usize;

    let mut session = server.session(WindowConfig::last_reports(max));
    session.ingest_log(&log);
    let windowed = session.fix_2d().expect("windowed fix");
    for epc in [1u128, 2] {
        assert_eq!(session.tag_stats(epc).expect("stream").buffered, max);
    }

    // The equivalent batch input: only the last `max` reports per EPC.
    let per_epc_total: std::collections::HashMap<u128, usize> = log
        .epcs()
        .into_iter()
        .map(|e| (e, log.for_epc(e).count()))
        .collect();
    let mut seen: std::collections::HashMap<u128, usize> = std::collections::HashMap::new();
    let truncated: InventoryLog = log
        .stream()
        .filter(|r| {
            let i = seen.entry(r.epc).or_insert(0);
            *i += 1;
            *i > per_epc_total[&r.epc] - max
        })
        .copied()
        .collect();
    let batch = server.locate_2d(&truncated).expect("batch fix");
    assert_eq!(batch, windowed);
}

#[test]
fn time_window_matches_batch_on_truncated_log() {
    let (server, log) = deploy(&two_disks(), Vec3::new(0.1, 1.5, 0.0), 19);
    let age = 6.0f64;

    let mut session = server.session(WindowConfig::last_seconds(age));
    session.ingest_log(&log);
    let windowed = session.fix_2d().expect("windowed fix");

    // Same horizon arithmetic as the session: newest report minus max age,
    // keep reads at or after it.
    let latest = log.reports().last().expect("nonempty log").timestamp_us as f64 * 1e-6;
    let horizon = latest - age;
    let truncated: InventoryLog = log
        .stream()
        .filter(|r| r.time_s() >= horizon)
        .copied()
        .collect();
    assert!(truncated.len() < log.len(), "window must actually truncate");
    let batch = server.locate_2d(&truncated).expect("batch fix");
    assert_eq!(batch, windowed);
}

#[test]
fn silent_tags_age_out_to_not_enough_bearings() {
    let (server, log) = deploy(&two_disks(), Vec3::new(0.4, 1.8, 0.0), 42);
    let mut session = server.session(WindowConfig::last_seconds(2.0));
    session.ingest_log(&log);
    assert!(session.fix_2d().is_ok());

    // Both tags go silent; a lone fresh read from an unregistered EPC
    // advances the clock far past the window.
    let late = TagReport {
        epc: 99,
        timestamp_us: log.reports().last().expect("nonempty").timestamp_us + 60_000_000,
        phase: 1.0,
        rssi_dbm: -60.0,
        channel_index: 8,
        antenna_id: 1,
    };
    assert_eq!(
        session.ingest(&late),
        IngestOutcome::Rejected(RejectReason::UnknownTag)
    );
    // An unknown-tag read advances nothing; a registered one does.
    let late_known = TagReport { epc: 1, ..late };
    assert_eq!(session.ingest(&late_known), IngestOutcome::Buffered);
    assert_eq!(
        session.fix_2d(),
        Err(ServerError::NotEnoughBearings { usable: 0 })
    );
    let stats = session.stats();
    assert!(stats.evicted > 0);
    assert_eq!(stats.buffered, 1);
}

/// Pinned behavior: a tag whose spectrum degenerates (here: all-NaN phases,
/// so the peak search finds no finite sample) is *skipped* by the multi-tag
/// fixes — it no longer aborts the whole localization.
#[test]
fn empty_spectrum_tag_is_skipped_not_fatal() {
    let mut disks = two_disks();
    disks.push(DiskConfig::paper_default(Vec3::new(0.0, 0.5, 0.0)));
    let (server, log) = deploy(&disks, Vec3::new(0.4, 1.8, 0.0), 42);

    // Replace tag 3's reads with NaN phases (a dead sensor feed), keeping
    // timestamps so the log stays time-ordered.
    let poisoned: InventoryLog = log
        .stream()
        .map(|r| {
            if r.epc == 3 {
                TagReport {
                    phase: f64::NAN,
                    ..*r
                }
            } else {
                *r
            }
        })
        .collect();
    assert!(poisoned.for_epc(3).count() >= server.config.min_snapshots);

    // The per-tag diagnostic pins the exact error...
    assert_eq!(
        server.bearing_2d_peak(&poisoned, 3),
        Err(ServerError::EmptySpectrum { epc: 3 })
    );
    // ...while the fix skips the tag and matches the healthy-tags-only log.
    let healthy: InventoryLog = log.stream().filter(|r| r.epc != 3).copied().collect();
    let fix = server.locate_2d(&poisoned).expect("degenerate tag skipped");
    assert_eq!(fix, server.locate_2d(&healthy).expect("two-tag fix"));

    // Streaming agrees.
    let mut session = server.session(WindowConfig::unbounded());
    session.ingest_log(&poisoned);
    assert_eq!(fix, session.fix_2d().expect("streaming fix"));
}

#[test]
fn locate_all_2d_matches_per_antenna_batch() {
    let disks = two_disks();
    let (server, log_a) = deploy(&disks, Vec3::new(0.4, 1.8, 0.0), 42);
    let (_, log_b) = deploy(&disks, Vec3::new(-0.6, 1.4, 0.0), 43);

    // Merge two readers into one interleaved feed: antenna 2's reports are
    // relabeled, then both streams are merged in timestamp order.
    let mut merged: Vec<TagReport> = log_a.stream().copied().collect();
    merged.extend(log_b.stream().map(|r| TagReport {
        antenna_id: 2,
        ..*r
    }));
    merged.sort_by_key(|r| r.timestamp_us);
    let merged: InventoryLog = merged.into_iter().collect();

    let all = server.locate_all_2d(&merged);
    assert_eq!(all.len(), 2);
    // The multiplexed result must equal running the batch pipeline on each
    // antenna's sub-log separately (the pre-session semantics).
    for (ant, fix) in &all {
        assert_eq!(*fix, server.locate_2d(&merged.for_antenna(*ant)));
    }
    // And the ids come back ascending.
    assert_eq!(all[0].0, 1);
    assert_eq!(all[1].0, 2);

    // An explicit SessionManager fed the same feed agrees fix-for-fix.
    let mut manager = server.session_manager(WindowConfig::unbounded());
    manager.ingest_log(&merged);
    assert_eq!(manager.fix_all_2d(), all);
}

#[test]
fn session_stats_reflect_the_stream() {
    let (server, log) = deploy(&two_disks(), Vec3::new(0.4, 1.8, 0.0), 42);
    let mut session = server.session(WindowConfig::unbounded());
    let buffered = session.ingest_log(&log);
    assert_eq!(buffered, log.len());

    let stats = session.stats();
    assert_eq!(stats.ingested as usize, log.len());
    assert_eq!(stats.rejects.total(), 0);
    assert_eq!(stats.evicted, 0);
    assert_eq!(stats.streams, 2);
    assert_eq!(stats.buffered, log.len());
    assert!((stats.span_s - log.span_s()).abs() < 1e-9);
    assert!(stats.read_rate > 0.0);

    let per_tag = session.all_tag_stats();
    assert_eq!(per_tag.len(), 2);
    assert_eq!(per_tag.iter().map(|t| t.buffered).sum::<usize>(), log.len());
    // Tag streams are fresh relative to the session's newest report.
    for t in &per_tag {
        assert!(t.age_s.expect("ages known") >= 0.0);
        assert!(t.dirty, "no fix queried yet");
    }
}

/// With the incremental accumulators engaged (the default policy), a
/// session queried mid-stream converges to the same answer as the batch
/// pipeline. The incremental full-grid peak may differ from the default
/// coarse-to-fine search within one grid step, so the fix is pinned by
/// position tolerance rather than bit-equality.
#[test]
fn incremental_session_tracks_batch_within_tolerance() {
    let truth = Vec3::new(0.4, 1.8, 0.0);
    let (mut server, log) = deploy(&two_disks(), truth, 42);
    server.config.incremental = IncrementalPolicy::default();
    let batch = server.locate_2d(&log).expect("batch fix");

    let mut session = server.session(WindowConfig::unbounded());
    for (i, report) in log.stream().enumerate() {
        session.ingest(report);
        if i % 97 == 0 {
            let _ = session.fix_2d();
        }
    }
    let streamed = session.fix_2d().expect("streaming fix");
    assert!(
        (streamed.position - batch.position).norm() < 0.1,
        "incremental fix {:?} drifted from batch {:?}",
        streamed.position,
        batch.position
    );
    assert!((streamed.position - truth.xy()).norm() < 0.2);
    let stats = session.stats();
    assert!(
        stats.incremental.applied > 0,
        "incremental path never engaged: {:?}",
        stats.incremental
    );
    assert_eq!(stats.incremental.fallbacks, 0);
}

/// Forcing a re-anchor on every sync (`reanchor_after_ops = 1`) under the
/// exhaustive engine makes the incremental path bit-identical to batch:
/// every refresh replays the reference fold order exactly, so even
/// interleaved mid-stream fixes cannot introduce drift.
#[test]
fn incremental_reanchor_every_sync_is_bit_identical_to_batch() {
    let (mut server, log) = deploy(&two_disks(), Vec3::new(-0.2, 1.6, 0.0), 23);
    server.config.engine = SpectrumEngineConfig {
        exhaustive: true,
        ..SpectrumEngineConfig::default()
    };
    server.config.incremental = IncrementalPolicy {
        reanchor_after_ops: 1,
        engage_after_recomputes: 0,
        ..IncrementalPolicy::default()
    };
    let batch_2d = server.locate_2d(&log).expect("batch 2d fix");
    let batch_3d = server.locate_3d(&log).expect("batch 3d fix");

    let mut session = server.session(WindowConfig::unbounded());
    for (i, report) in log.stream().enumerate() {
        session.ingest(report);
        if i % 61 == 0 {
            let _ = session.fix_2d();
        }
    }
    assert_eq!(batch_2d, session.fix_2d().expect("streaming 2d fix"));
    assert_eq!(batch_3d, session.fix_3d().expect("streaming 3d fix"));
    let stats = session.stats();
    assert!(stats.incremental.reanchors > 0);
    assert_eq!(
        stats.incremental.downdated, 0,
        "anchors rebuild, never downdate"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Randomized streaming/batch equivalence: any reader pose and seed,
    /// the unbounded session reproduces the batch fix bit-for-bit (or the
    /// batch error verbatim).
    #[test]
    fn prop_streaming_matches_batch(
        x in -1.0f64..1.0,
        y in 1.0f64..2.5,
        seed in 0u64..1000,
    ) {
        let (server, log) = deploy(&two_disks(), Vec3::new(x, y, 0.0), seed);
        let batch = server.locate_2d(&log);
        let mut session = server.session(WindowConfig::unbounded());
        session.ingest_log(&log);
        prop_assert_eq!(batch, session.fix_2d());
    }
}

#[test]
fn quickstart_streaming_snippet_works() {
    // The README's streaming example, kept honest by CI.
    let (server, log) = deploy(&two_disks(), Vec3::new(0.4, 1.7, 0.0), 7);
    let mut session = server.session(WindowConfig::last_seconds(30.0));
    let mut last_fix = None;
    for report in log.stream() {
        if session.ingest(report) == IngestOutcome::Buffered && session.stats().ingested % 256 == 0
        {
            last_fix = session.fix_2d().ok();
        }
    }
    let fix = session.fix_2d().expect("final fix");
    assert!((fix.position - Vec2::new(0.4, 1.7)).norm() < 0.2);
    let _ = last_fix;
}
