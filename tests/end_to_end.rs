//! End-to-end integration tests spanning every workspace crate:
//! rf → epc → core pipeline → fix, in 2D and 3D.

use rand::rngs::StdRng;
use rand::SeedableRng;
use tagspin::core::prelude::*;
use tagspin::core::snapshot::SnapshotSet;
use tagspin::epc::inventory::{run_inventory, ReaderConfig, Transponder};
use tagspin::geom::{Pose, Vec2, Vec3};
use tagspin::rf::channel::Environment;
use tagspin::rf::tags::{TagInstance, TagModel};

/// Build the standard 2-tag deployment and a server, with optional
/// orientation calibration, returning (tags, server, reader config).
fn deploy(
    disks: &[DiskConfig],
    truth: Vec3,
    calibrate: bool,
    env: &Environment,
    rng: &mut StdRng,
) -> (Vec<SpinningTag>, LocalizationServer, ReaderConfig) {
    let reader = ReaderConfig::at(Pose::facing_toward(truth, disks[0].center));
    let mut server = LocalizationServer::new(PipelineConfig {
        spectrum: SpectrumConfig {
            azimuth_steps: 360,
            polar_steps: 31,
            references: 8,
            ..SpectrumConfig::default()
        },
        ..PipelineConfig::default()
    });
    let mut tags = Vec::new();
    for (i, &disk) in disks.iter().enumerate() {
        let epc = (i + 1) as u128;
        let tag = TagInstance::manufacture(TagModel::DEFAULT, epc, rng);
        server.register(epc, disk).expect("unique EPCs");
        if calibrate {
            let center = CenterSpinTag {
                disk,
                tag: tag.clone(),
            };
            let log = run_inventory(
                env,
                &reader,
                &[&center as &dyn Transponder],
                disk.period_s() * 1.3,
                rng,
            );
            let set = SnapshotSet::from_log(&log, epc, &disk).expect("tag observed");
            let cal = OrientationCalibration::fit(&set).expect("full revolution");
            server
                .set_orientation_calibration(epc, cal)
                .expect("registered");
        }
        tags.push(SpinningTag::new(disk, tag));
    }
    (tags, server, reader)
}

#[test]
fn full_pipeline_2d_centimeter_accuracy() {
    let mut rng = StdRng::seed_from_u64(1);
    let env = Environment::paper_default();
    let disks = [
        DiskConfig::paper_default(Vec3::new(-0.3, 0.0, 0.0)),
        DiskConfig::paper_default(Vec3::new(0.3, 0.0, 0.0)),
    ];
    let truth = Vec3::new(0.4, 1.9, 0.0);
    let (tags, server, reader) = deploy(&disks, truth, true, &env, &mut rng);
    let trs: Vec<&dyn Transponder> = tags.iter().map(|t| t as &dyn Transponder).collect();
    let log = run_inventory(&env, &reader, &trs, disks[0].period_s() * 1.25, &mut rng);

    let fix = server.locate_2d(&log).expect("both tags observed");
    let err = (fix.position - truth.xy()).norm();
    assert!(err < 0.10, "2D error {:.1} cm", err * 100.0);
}

#[test]
fn full_pipeline_3d_resolves_height() {
    let mut rng = StdRng::seed_from_u64(2);
    let env = Environment::paper_default();
    let desk = 0.914;
    let disks = [
        DiskConfig::paper_default(Vec3::new(-0.3, 0.0, desk)),
        DiskConfig::paper_default(Vec3::new(0.3, 0.0, desk)),
    ];
    let truth = Vec3::new(-0.3, 1.7, 1.6);
    let (tags, server, reader) = deploy(&disks, truth, true, &env, &mut rng);
    let trs: Vec<&dyn Transponder> = tags.iter().map(|t| t as &dyn Transponder).collect();
    let log = run_inventory(&env, &reader, &trs, disks[0].period_s() * 1.25, &mut rng);

    let fix = server.locate_3d(&log).expect("both tags observed");
    let resolved = fix.resolve(|p| p.z >= desk).expect("reader above the desk");
    let err = resolved.distance(truth);
    assert!(err < 0.15, "3D error {:.1} cm", err * 100.0);
    // The mirror candidate reflects across the disk plane.
    assert!(
        ((fix.position.z - desk) + (fix.mirror.z - desk)).abs() < 1e-9,
        "mirror not symmetric about the disk plane"
    );
}

#[test]
fn calibration_improves_accuracy_end_to_end() {
    let env = Environment::paper_default();
    let disks = [
        DiskConfig::paper_default(Vec3::new(-0.3, 0.0, 0.0)),
        DiskConfig::paper_default(Vec3::new(0.3, 0.0, 0.0)),
    ];
    let truth = Vec3::new(-0.6, 2.2, 0.0);
    let mut errs = Vec::new();
    for calibrate in [true, false] {
        // Same seed ⇒ same tags; the RNG stream diverges after setup but
        // both runs face statistically identical conditions.
        let mut rng = StdRng::seed_from_u64(3);
        let (tags, mut server, reader) = deploy(&disks, truth, calibrate, &env, &mut rng);
        server.config.orientation_calibration = calibrate;
        let trs: Vec<&dyn Transponder> = tags.iter().map(|t| t as &dyn Transponder).collect();
        let log = run_inventory(&env, &reader, &trs, disks[0].period_s() * 1.25, &mut rng);
        let fix = server.locate_2d(&log).expect("both tags observed");
        errs.push((fix.position - truth.xy()).norm());
    }
    assert!(
        errs[0] < errs[1],
        "calibrated {:.1} cm should beat uncalibrated {:.1} cm",
        errs[0] * 100.0,
        errs[1] * 100.0
    );
}

#[test]
fn llrp_round_trip_preserves_localization() {
    // Serialize the inventory through the LLRP wire format and localize
    // from the decoded log: the quantization must not move the fix by more
    // than a few millimeters.
    let mut rng = StdRng::seed_from_u64(4);
    let env = Environment::paper_default();
    let disks = [
        DiskConfig::paper_default(Vec3::new(-0.3, 0.0, 0.0)),
        DiskConfig::paper_default(Vec3::new(0.3, 0.0, 0.0)),
    ];
    let truth = Vec3::new(0.8, 1.6, 0.0);
    let (tags, server, reader) = deploy(&disks, truth, false, &env, &mut rng);
    let trs: Vec<&dyn Transponder> = tags.iter().map(|t| t as &dyn Transponder).collect();
    let log = run_inventory(&env, &reader, &trs, disks[0].period_s() * 1.25, &mut rng);

    let bytes = tagspin::epc::llrp::encode_report(&log, 99);
    let (decoded, id) = tagspin::epc::llrp::decode_report(bytes).expect("valid message");
    assert_eq!(id, 99);
    assert_eq!(decoded.len(), log.len());

    let direct = server.locate_2d(&log).expect("fix from direct log");
    let via_wire = server.locate_2d(&decoded).expect("fix from decoded log");
    let shift = (direct.position - via_wire.position).norm();
    assert!(shift < 0.01, "wire round-trip moved the fix {shift} m");
}

#[test]
fn multi_antenna_simultaneous_localization() {
    use tagspin::epc::InventoryLog;
    use tagspin::rf::ReaderAntenna;
    let mut rng = StdRng::seed_from_u64(5);
    let env = Environment::paper_default();
    let disks = [
        DiskConfig::paper_default(Vec3::new(-0.3, 0.0, 0.0)),
        DiskConfig::paper_default(Vec3::new(0.3, 0.0, 0.0)),
    ];
    let truths = [Vec3::new(-1.0, 2.0, 0.0), Vec3::new(1.1, 2.1, 0.0)];
    let (tags, server, _) = deploy(&disks, truths[0], false, &env, &mut rng);
    let trs: Vec<&dyn Transponder> = tags.iter().map(|t| t as &dyn Transponder).collect();

    // Two ports observe over the same window (fast multiplexing); reports
    // carry the port id and are merged in timestamp order.
    let antennas = ReaderAntenna::yeon_set();
    let mut reports = Vec::new();
    for (k, &truth) in truths.iter().enumerate() {
        let cfg =
            ReaderConfig::at(Pose::facing_toward(truth, Vec3::ZERO)).with_antenna(antennas[k]);
        let log = run_inventory(&env, &cfg, &trs, disks[0].period_s() * 1.1, &mut rng);
        reports.extend(log.reports().iter().copied());
    }
    reports.sort_by_key(|r| r.timestamp_us);
    let merged: InventoryLog = reports.into_iter().collect();

    let fixes = server.locate_all_2d(&merged);
    assert_eq!(fixes.len(), 2);
    for ((ant, fix), truth) in fixes.iter().zip(&truths) {
        let fix = fix
            .as_ref()
            .unwrap_or_else(|e| panic!("antenna {ant}: {e}"));
        let err = (fix.position - truth.xy()).norm();
        assert!(err < 0.3, "antenna {ant} error {:.1} cm", err * 100.0);
    }
}

#[test]
fn failure_injection_disk_wobble_degrades_gracefully() {
    let mut rng = StdRng::seed_from_u64(6);
    let env = Environment::paper_default();
    let disks = [
        DiskConfig::paper_default(Vec3::new(-0.3, 0.0, 0.0)),
        DiskConfig::paper_default(Vec3::new(0.3, 0.0, 0.0)),
    ];
    let truth = Vec3::new(0.3, 2.0, 0.0);
    let (tags, server, reader) = deploy(&disks, truth, false, &env, &mut rng);
    // Inject ±3% motor speed wobble the server does not know about.
    let wobbly: Vec<SpinningTag> = tags.into_iter().map(|t| t.with_wobble(0.03, 1.7)).collect();
    let trs: Vec<&dyn Transponder> = wobbly.iter().map(|t| t as &dyn Transponder).collect();
    let log = run_inventory(&env, &reader, &trs, disks[0].period_s() * 1.25, &mut rng);
    let fix = server
        .locate_2d(&log)
        .expect("wobble must not break the fix");
    let err = (fix.position - truth.xy()).norm();
    // Degraded but still sub-half-meter.
    assert!(err < 0.5, "wobble error {:.1} cm", err * 100.0);
}

#[test]
fn misregistered_disk_center_shifts_fix_accordingly() {
    // The server believes a disk sits 5 cm away from where it really is:
    // the fix inherits an error of that order — quantifying the paper's
    // point that infrastructure positions must be known.
    let mut rng = StdRng::seed_from_u64(7);
    let env = Environment::paper_default();
    let true_disks = [
        DiskConfig::paper_default(Vec3::new(-0.3, 0.0, 0.0)),
        DiskConfig::paper_default(Vec3::new(0.3, 0.0, 0.0)),
    ];
    let truth = Vec3::new(0.0, 2.0, 0.0);
    let (tags, _, reader) = deploy(&true_disks, truth, false, &env, &mut rng);
    // Server registry with a shifted copy of disk 2.
    let mut server = LocalizationServer::new(PipelineConfig {
        orientation_calibration: false,
        spectrum: SpectrumConfig {
            azimuth_steps: 360,
            references: 8,
            ..SpectrumConfig::default()
        },
        ..PipelineConfig::default()
    });
    server.register(1, true_disks[0]).expect("fresh");
    let mut shifted = true_disks[1];
    shifted.center += Vec3::new(0.05, 0.0, 0.0);
    server.register(2, shifted).expect("fresh");

    let trs: Vec<&dyn Transponder> = tags.iter().map(|t| t as &dyn Transponder).collect();
    let log = run_inventory(
        &env,
        &reader,
        &trs,
        true_disks[0].period_s() * 1.25,
        &mut rng,
    );
    let fix = server.locate_2d(&log).expect("fix still produced");
    let err = (fix.position - truth.xy()).norm();
    assert!(
        err > 0.01,
        "misregistration should cost > 1 cm, got {err} m"
    );
    assert!(err < 0.6, "misregistration cost is bounded, got {err} m");
}

#[test]
fn deterministic_across_runs() {
    let run = || {
        let mut rng = StdRng::seed_from_u64(8);
        let env = Environment::paper_default();
        let disks = [
            DiskConfig::paper_default(Vec3::new(-0.3, 0.0, 0.0)),
            DiskConfig::paper_default(Vec3::new(0.3, 0.0, 0.0)),
        ];
        let truth = Vec3::new(0.5, 1.5, 0.0);
        let (tags, server, reader) = deploy(&disks, truth, true, &env, &mut rng);
        let trs: Vec<&dyn Transponder> = tags.iter().map(|t| t as &dyn Transponder).collect();
        let log = run_inventory(&env, &reader, &trs, disks[0].period_s() * 1.25, &mut rng);
        server.locate_2d(&log).expect("fix").position
    };
    let a = run();
    let b = run();
    assert_eq!(a, b);
}

#[test]
fn sim_scenario_matches_manual_deployment() {
    // The sim crate's trial runner must agree with a hand-built deployment
    // in error magnitude (both ~cm at this geometry).
    let scenario = tagspin::sim::Scenario::paper_2d(Vec2::new(0.4, 1.9)).quick();
    let out = tagspin::sim::run_trial_2d(&scenario, 99).expect("trial succeeds");
    assert!(
        out.error.combined < 0.15,
        "sim trial error {:.1} cm",
        out.error.combined * 100.0
    );
}
