//! Equivalence suite for the incremental spectrum accumulators.
//!
//! The contract under test (see `docs/INCREMENTAL_SPECTRUM.md`):
//!
//! 1. **Bit-identity on demand** — with `reanchor_after_ops = 1` every
//!    sync replays the reference fold order exactly, so a session on the
//!    incremental path is bit-identical to the legacy recompute over any
//!    ingest/evict interleaving the quarantine admits: duplicates,
//!    out-of-order arrivals, corrupt phases, ghost EPCs, count and time
//!    windows.
//! 2. **Bounded divergence by default** — with the default re-anchor
//!    policy the traditional accumulators see only float drift, and the
//!    enhanced family's frozen-reference estimates keep the detected peak
//!    in place, so fixes track the legacy path within a tight position
//!    tolerance.
//! 3. **Poison safety** — non-finite phases (hardened-rejected or
//!    permissive-buffered) never reach an accumulator; while resident
//!    they force the legacy fallback wholesale, and the state recovers
//!    once they evict.
//! 4. **Drift bound** — a ≥10⁶-operation stream stays within the
//!    re-anchor policy's drift envelope.
//!
//! Case count defaults to 256 and is pinned in CI via `PROPTEST_CASES`;
//! the nightly soak reruns the properties at 4096 cases.

use std::sync::OnceLock;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use tagspin::core::prelude::*;
use tagspin::epc::inventory::{run_inventory, ReaderConfig, Transponder};
use tagspin::epc::{InventoryLog, TagReport};
use tagspin::geom::{angle, Pose, Vec3};
use tagspin::rf::channel::Environment;
use tagspin::rf::tags::{TagInstance, TagModel};
use tagspin::sim::fault::FaultPlan;

/// A grid small enough for exhaustive recomputes in debug builds while
/// keeping the hybrid refine meaningful (2° azimuth steps).
fn spectrum_cfg() -> SpectrumConfig {
    SpectrumConfig {
        azimuth_steps: 180,
        polar_steps: 11,
        references: 4,
        ..SpectrumConfig::default()
    }
}

/// Two registered disks (EPCs 1 and 2), exhaustive engine, and the given
/// incremental policy. The exhaustive engine removes the coarse-to-fine
/// search from the comparison: both arms then reduce the same full grid.
fn server(incremental: IncrementalPolicy) -> LocalizationServer {
    let mut server = LocalizationServer::new(PipelineConfig {
        spectrum: spectrum_cfg(),
        engine: SpectrumEngineConfig {
            exhaustive: true,
            ..SpectrumEngineConfig::default()
        },
        incremental,
        ..PipelineConfig::default()
    });
    server
        .register(1, DiskConfig::paper_default(Vec3::new(-0.3, 0.0, 0.0)))
        .expect("unique EPC");
    server
        .register(2, DiskConfig::paper_default(Vec3::new(0.3, 0.0, 0.0)))
        .expect("unique EPC");
    server
}

/// Re-anchor on every sync: every served result replays the reference
/// fold order, so the session must be bit-identical to the legacy path.
fn bit_identical_policy() -> IncrementalPolicy {
    IncrementalPolicy {
        reanchor_after_ops: 1,
        engage_after_recomputes: 0,
        ..IncrementalPolicy::default()
    }
}

/// Default drift policy, engaged from the first fresh recompute.
fn engaged_default_policy() -> IncrementalPolicy {
    IncrementalPolicy {
        engage_after_recomputes: 0,
        ..IncrementalPolicy::default()
    }
}

/// One clean simulated rotation of the two-tag deployment, built once: the
/// fault plans below derive every hostile stream from it deterministically.
fn clean_log() -> &'static InventoryLog {
    static LOG: OnceLock<InventoryLog> = OnceLock::new();
    LOG.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(7);
        let d1 = DiskConfig::paper_default(Vec3::new(-0.3, 0.0, 0.0));
        let d2 = DiskConfig::paper_default(Vec3::new(0.3, 0.0, 0.0));
        let t1 = SpinningTag::new(d1, TagInstance::manufacture(TagModel::DEFAULT, 1, &mut rng));
        let t2 = SpinningTag::new(d2, TagInstance::manufacture(TagModel::DEFAULT, 2, &mut rng));
        let reader = ReaderConfig::at(Pose::facing_toward(Vec3::new(0.4, 1.7, 0.0), Vec3::ZERO));
        run_inventory(
            &Environment::paper_default(),
            &reader,
            &[&t1 as &dyn Transponder, &t2 as &dyn Transponder],
            d1.period_s(),
            &mut rng,
        )
    })
}

fn window(sel: u8) -> WindowConfig {
    match sel % 4 {
        0 => WindowConfig::unbounded(),
        1 => WindowConfig::last_reports(64),
        2 => WindowConfig::last_reports(256),
        _ => WindowConfig::last_seconds(2.0),
    }
}

proptest! {
    /// Property 1: re-anchoring on every sync makes the incremental path
    /// bit-identical to the legacy recompute over random ingest/evict
    /// interleavings — hostile streams (duplicates, reordering, corrupt
    /// phases, ghost EPCs), all four window shapes, fixes queried
    /// mid-stream at a random stride.
    #[test]
    fn prop_reanchored_sync_is_bit_identical_over_interleavings(
        rate in 0.0f64..0.45,
        seed in 0u64..4096,
        window_sel in 0u8..8,
        stride in 97usize..500,
    ) {
        let reports = FaultPlan::at_rate(rate).apply(clean_log(), seed);

        let legacy_server = server(IncrementalPolicy::disabled());
        let mut legacy = legacy_server.session(window(window_sel));
        let incr_server = server(bit_identical_policy());
        let mut incr = incr_server.session(window(window_sel));

        for (i, report) in reports.iter().enumerate() {
            prop_assert_eq!(legacy.ingest(report), incr.ingest(report));
            if i % stride == 0 {
                prop_assert_eq!(legacy.fix_2d(), incr.fix_2d());
            }
        }
        prop_assert_eq!(legacy.fix_2d(), incr.fix_2d());

        // The incremental arm really took the incremental path: every
        // engaged sync re-anchored, none fell back.
        let stats = incr.stats();
        prop_assert!(stats.incremental.reanchors > 0);
        prop_assert_eq!(stats.incremental.downdated, 0);
        prop_assert_eq!(stats.incremental.fallbacks, 0);
    }

    /// Property 2: under the *default* re-anchor policy the traditional
    /// profile sees only float drift between anchors, so the incremental
    /// bearing stays on the legacy bearing's grid cell — or, when drift
    /// flips the argmax between numerically tied lobes, the two peaks'
    /// heights agree to float precision. Bearings (not fix positions) are
    /// the oracle: under tiny hostile windows the two-ray intersection
    /// amplifies a one-step bearing shift without bound, while the bearing
    /// itself stays pinned to the spectrum peak.
    #[test]
    fn prop_default_policy_traditional_drift_is_float_level(
        rate in 0.0f64..0.3,
        seed in 0u64..4096,
        window_sel in 0u8..8,
        stride in 97usize..500,
    ) {
        let reports = FaultPlan::at_rate(rate).apply(clean_log(), seed);

        let mut legacy_server = server(IncrementalPolicy::disabled());
        legacy_server.config.profile = ProfileKind::Traditional;
        let mut legacy = legacy_server.session(window(window_sel));
        let mut incr_server = server(engaged_default_policy());
        incr_server.config.profile = ProfileKind::Traditional;
        let mut incr = incr_server.session(window(window_sel));

        for (i, report) in reports.iter().enumerate() {
            prop_assert_eq!(legacy.ingest(report), incr.ingest(report));
            if i % stride == 0 {
                let (a, b) = (legacy.fix_2d(), incr.fix_2d());
                prop_assert_eq!(a.is_ok(), b.is_ok(), "{:?} vs {:?}", a, b);
            }
        }
        let (a, b) = (legacy.fix_2d(), incr.fix_2d());
        prop_assert_eq!(a.is_ok(), b.is_ok(), "{:?} vs {:?}", a, b);
        // lint:allow(lossy-cast) azimuth step count is < 2^32, exact in f64
        let step = std::f64::consts::TAU / spectrum_cfg().azimuth_steps as f64;
        for epc in [1u128, 2] {
            let (a, b) = (legacy.tag_bearing_2d(epc), incr.tag_bearing_2d(epc));
            prop_assert_eq!(a.is_ok(), b.is_ok(), "epc {}: {:?} vs {:?}", epc, a, b);
            if let (Ok(a), Ok(b)) = (a, b) {
                prop_assert!(
                    angle::separation(a.azimuth, b.azimuth) <= step + 1e-12
                        || (a.weight - b.weight).abs() <= 1e-9,
                    "epc {}: legacy ({}, w {}) vs incremental ({}, w {})",
                    epc,
                    a.azimuth,
                    a.weight,
                    b.azimuth,
                    b.weight
                );
            }
        }
        prop_assert!(incr.stats().incremental.reanchors > 0);
    }
}

/// Under the default policy on a *clean* stream, the hybrid profile's
/// frozen-reference detection keeps the legacy lobe on every window shape
/// that holds a substantial share of the rotation: between anchors the
/// per-cell enhanced values drift semantically, but a dominant lobe stays
/// dominant and the traditional refine stays pinned within a few grid
/// steps. Sliver windows (a few dozen reports, or a second or two of a
/// ~12.6 s rotation) see short-arc, near-tied multi-lobed spectra whose
/// frozen-reference ordering can legitimately swap between anchors — that
/// regime is covered by the ok-ness and bit-identity properties above, and
/// documented in `docs/INCREMENTAL_SPECTRUM.md`.
#[test]
fn hybrid_clean_sliding_windows_keep_the_detected_lobe() {
    // lint:allow(lossy-cast) azimuth step count is < 2^32, exact in f64
    let step = std::f64::consts::TAU / spectrum_cfg().azimuth_steps as f64;
    let shapes: [(&str, WindowConfig); 3] = [
        ("unbounded", WindowConfig::unbounded()),
        ("count512", WindowConfig::last_reports(512)),
        ("time6", WindowConfig::last_seconds(6.0)),
    ];
    for (name, shape) in shapes {
        let legacy_server = server(IncrementalPolicy::disabled());
        let mut legacy = legacy_server.session(shape);
        let incr_server = server(engaged_default_policy());
        let mut incr = incr_server.session(shape);

        let mut compared = 0usize;
        for (i, report) in clean_log().stream().enumerate() {
            assert_eq!(legacy.ingest(report), incr.ingest(report));
            if i % 113 != 0 {
                continue;
            }
            for epc in [1u128, 2] {
                let (a, b) = (legacy.tag_bearing_2d(epc), incr.tag_bearing_2d(epc));
                assert_eq!(a.is_ok(), b.is_ok(), "w={name} i={i}: {a:?} vs {b:?}");
                if let (Ok(a), Ok(b)) = (a, b) {
                    // 6° — the measured envelope across these shapes tops
                    // out at 0.43°; a hop to a neighboring lobe is ≥ 20°.
                    assert!(
                        angle::separation(a.azimuth, b.azimuth) <= 3.0 * step + 1e-12,
                        "w={} i={} epc {}: legacy {} vs incremental {}",
                        name,
                        i,
                        epc,
                        a.azimuth,
                        b.azimuth
                    );
                    compared += 1;
                }
            }
        }
        assert!(compared > 4, "w={name}: too few comparable bearings");
        assert!(
            incr.stats().incremental.applied > 0,
            "w={name}: never engaged"
        );
    }
}

/// Poison safety, hardened arm: a stream where most phases are corrupted
/// outright (NaN/Inf/garbage) never perturbs the incremental path, because
/// the quarantine rejects the poison before it can reach an accumulator.
/// The sessions stay bit-identical throughout.
#[test]
fn hardened_quarantine_keeps_nan_storms_bit_identical() {
    let plan = FaultPlan {
        corrupt_rate: 0.6,
        duplicate_rate: 0.3,
        ..FaultPlan::clean()
    };
    let reports = plan.apply(clean_log(), 99);

    let legacy_server = server(IncrementalPolicy::disabled());
    let mut legacy = legacy_server.session(WindowConfig::last_reports(128));
    let incr_server = server(bit_identical_policy());
    let mut incr = incr_server.session(WindowConfig::last_reports(128));

    for (i, report) in reports.iter().enumerate() {
        assert_eq!(legacy.ingest(report), incr.ingest(report));
        if i % 151 == 0 {
            assert_eq!(legacy.fix_2d(), incr.fix_2d());
        }
    }
    assert_eq!(legacy.fix_2d(), incr.fix_2d());
    let stats = incr.stats();
    assert!(
        stats.rejects.non_finite_phase > 0,
        "storm never hit the screen"
    );
    assert_eq!(
        stats.incremental.fallbacks, 0,
        "screened poison must not force fallback"
    );
}

/// Poison safety, permissive arm: with the value screens off, NaN phases
/// flow into the buffers. While any is resident the incremental path must
/// serve the legacy fallback wholesale (bit-identical fixes, fallback
/// counter ticking); once the count window slides the poison out, the
/// incremental path resumes and the arms remain bit-identical.
#[test]
fn permissive_nan_residency_falls_back_then_recovers() {
    let window = 64usize;
    let mut legacy_server = server(IncrementalPolicy::disabled());
    legacy_server.config.ingest = IngestPolicy::permissive();
    let mut incr_server = server(bit_identical_policy());
    incr_server.config.ingest = IngestPolicy::permissive();
    let mut legacy = legacy_server.session(WindowConfig::last_reports(window));
    let mut incr = incr_server.session(WindowConfig::last_reports(window));

    let clean: Vec<TagReport> = clean_log().stream().copied().collect();

    // Phase 1: a clean prefix, fix on the incremental path.
    for r in &clean[..400] {
        assert_eq!(legacy.ingest(r), incr.ingest(r));
    }
    assert_eq!(legacy.fix_2d(), incr.fix_2d());
    assert_eq!(incr.stats().incremental.fallbacks, 0);

    // Phase 2: inject NaN phases for both tags, then fix while resident.
    let t0 = clean[400].timestamp_us;
    for k in 0..8u64 {
        let poison = TagReport {
            epc: 1 + (k % 2) as u128,
            timestamp_us: t0 + k * 100,
            phase: if k % 2 == 0 { f64::NAN } else { f64::INFINITY },
            rssi_dbm: -60.0,
            channel_index: 0,
            antenna_id: 1,
        };
        assert_eq!(legacy.ingest(&poison), incr.ingest(&poison));
    }
    assert_eq!(legacy.fix_2d(), incr.fix_2d());
    let fallbacks_during = incr.stats().incremental.fallbacks;
    assert!(
        fallbacks_during > 0,
        "resident NaN must force the legacy fallback"
    );

    // Phase 3: enough clean reports per tag to slide every NaN out of the
    // count window; the incremental path resumes cleanly.
    for r in &clean[400..400 + 4 * window] {
        let shifted = TagReport {
            timestamp_us: r.timestamp_us + 1_000,
            ..*r
        };
        assert_eq!(legacy.ingest(&shifted), incr.ingest(&shifted));
    }
    assert_eq!(legacy.fix_2d(), incr.fix_2d());
    let stats = incr.stats();
    assert_eq!(
        stats.incremental.fallbacks, fallbacks_during,
        "fallbacks must stop once the poison evicts"
    );
    assert!(
        stats.incremental.reanchors > fallbacks_during,
        "incremental path never resumed"
    );
}

/// Drift bound over a long stream: ≥10⁶ accumulator operations through a
/// sliding count window, fixes interleaved throughout, under the *default*
/// re-anchor policy. The traditional-profile fix must agree with a
/// from-scratch recompute to float precision, and the re-anchor counter
/// must show the policy bound working — anchoring occasionally, not on
/// every sync.
#[test]
fn long_stream_drift_stays_within_reanchor_bound() {
    let policy = engaged_default_policy();
    let config = PipelineConfig {
        profile: ProfileKind::Traditional,
        spectrum: SpectrumConfig {
            azimuth_steps: 16,
            polar_steps: 5,
            references: 2,
            ..SpectrumConfig::default()
        },
        engine: SpectrumEngineConfig {
            exhaustive: true,
            ..SpectrumEngineConfig::default()
        },
        ..PipelineConfig::default()
    };
    let mut incr_server = LocalizationServer::new(PipelineConfig {
        incremental: policy,
        ..config
    });
    let mut legacy_server = LocalizationServer::new(PipelineConfig {
        incremental: IncrementalPolicy::disabled(),
        ..config
    });
    for (epc, x) in [(1u128, -0.3), (2u128, 0.3)] {
        let disk = DiskConfig::paper_default(Vec3::new(x, 0.0, 0.0));
        incr_server.register(epc, disk).expect("unique EPC");
        legacy_server.register(epc, disk).expect("unique EPC");
    }
    let mut incr = incr_server.session(WindowConfig::last_reports(64));
    let mut legacy = legacy_server.session(WindowConfig::last_reports(64));

    // Cycle the clean rotation with shifted timestamps until one million
    // reports have flowed through the 64-deep windows. Fixing every 32
    // ingests keeps the per-sync delta (~16 in + 16 out per stream) well
    // under the resident count, so syncs stay on the update/downdate path
    // and only the ops-count policy triggers re-anchors.
    let base: Vec<TagReport> = clean_log().stream().copied().collect();
    let span_us = base.last().expect("nonempty log").timestamp_us + 1_000;
    let mut count: u64 = 0;
    'outer: for cycle in 0u64.. {
        for r in &base {
            let report = TagReport {
                timestamp_us: r.timestamp_us + cycle * span_us,
                ..*r
            };
            assert_eq!(legacy.ingest(&report), incr.ingest(&report));
            count += 1;
            if count.is_multiple_of(32) {
                let _ = incr.fix_2d();
            }
            if count >= 1_000_000 {
                break 'outer;
            }
        }
    }

    let reference = legacy.fix_2d().expect("legacy fix");
    let fix = incr.fix_2d().expect("incremental fix");
    assert!(
        (fix.position - reference.position).norm() <= 1e-9,
        "drift exceeded bound: {:?} vs {:?}",
        fix.position,
        reference.position
    );

    let stats = incr.stats();
    assert_eq!(stats.incremental.fallbacks, 0, "clean stream fell back");
    assert!(
        stats.incremental.applied + stats.incremental.downdated >= 1_000_000,
        "soak too short: {:?}",
        stats.incremental
    );
    // The policy bound is live: some re-anchors happened, but far fewer
    // than one per sync (~32 ops between fixes per stream, so the 4096-op
    // default re-anchors roughly every 128th sync per stream).
    assert!(
        stats.incremental.reanchors > 2,
        "re-anchor bound never tripped"
    );
    assert!(
        stats.incremental.downdated > stats.incremental.reanchors * 100,
        "re-anchoring dominated, downdate path never exercised: {:?}",
        stats.incremental
    );
}
