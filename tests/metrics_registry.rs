//! `MetricsRegistry` contract tests: bucket partitions are total and
//! non-overlapping, snapshot-and-reset loses nothing under contention, and
//! the `tagspin-metrics/v1` JSON export round-trips through the exact
//! parser `cargo xtask bench-check` reads artifacts with.

use std::collections::BTreeMap;
use std::sync::Arc;

use proptest::prelude::*;
use tagspin::core::prelude::*;
use xtask::json::{self, Value};

/// Decode a `(selector, magnitude)` pair into an arbitrary float, weighted
/// toward finite values but covering NaN and both infinities (the vendored
/// proptest has no `prop_oneof!`, so the mix is encoded by hand).
fn decode(sel: u8, v: f64) -> f64 {
    match sel {
        0 => f64::NAN,
        1 => f64::INFINITY,
        2 => f64::NEG_INFINITY,
        _ => v,
    }
}

proptest! {
    /// Bound sanitization: whatever mess is requested (unsorted,
    /// duplicated, non-finite), the registered bounds come out finite and
    /// strictly increasing — the precondition for a total partition.
    #[test]
    fn prop_histogram_bounds_sanitized(
        raw_coded in proptest::collection::vec((0u8..12, -1e6f64..1e6), 0..12),
    ) {
        let raw: Vec<f64> = raw_coded.iter().map(|&(s, v)| decode(s, v)).collect();
        let registry = MetricsRegistry::new();
        let hist = registry.histogram("h", &raw);
        let bounds = hist.bounds();
        prop_assert!(bounds.iter().all(|b| b.is_finite()));
        prop_assert!(bounds.windows(2).all(|w| w[0] < w[1]),
            "bounds not strictly increasing: {bounds:?}");
    }

    /// Partition totality: every observation — including NaN and the
    /// infinities — lands in exactly one bucket, and the per-bucket counts
    /// always sum to the total count.
    #[test]
    fn prop_every_value_lands_in_exactly_one_bucket(
        bounds in proptest::collection::vec(-1e3f64..1e3, 0..8),
        values_coded in proptest::collection::vec((0u8..24, -2e3f64..2e3), 0..64),
    ) {
        let values: Vec<f64> = values_coded.iter().map(|&(s, v)| decode(s, v)).collect();
        let registry = MetricsRegistry::new();
        let hist = registry.histogram("h", &bounds);
        let clean = hist.bounds().to_vec();
        for (i, v) in values.iter().enumerate() {
            hist.record(*v);
            let snap = registry.snapshot();
            let h = &snap.histograms["h"];
            prop_assert_eq!(h.count, (i + 1) as u64);
            prop_assert_eq!(h.buckets.iter().sum::<u64>(), h.count,
                "bucket counts diverged from total after recording {v}");
            prop_assert_eq!(h.buckets.len(), clean.len() + 1,
                "one bucket per bound plus overflow");
        }
        // Cross-check against a scalar reimplementation of the partition:
        // count per bucket = first bound >= v, else overflow.
        let mut expect = vec![0u64; clean.len() + 1];
        for v in &values {
            let i = clean
                .iter()
                .position(|b| *v <= *b)
                .unwrap_or(clean.len());
            expect[i] += 1;
        }
        let snap = registry.snapshot();
        prop_assert_eq!(&snap.histograms["h"].buckets, &expect);
        let finite_sum: f64 = values.iter().filter(|v| v.is_finite()).sum();
        prop_assert!((snap.histograms["h"].sum - finite_sum).abs() <= 1e-9 * finite_sum.abs().max(1.0));
    }

    /// Snapshot-and-reset conservation under contention: writer threads
    /// hammer a counter and a histogram while the property thread drains
    /// with `snapshot_and_reset`; the drained snapshots plus the final one
    /// account for every increment exactly once.
    #[test]
    fn prop_snapshot_and_reset_loses_nothing_under_contention(
        per_thread in 1usize..400,
        threads in 1usize..5,
        drains in 1usize..6,
    ) {
        let registry = Arc::new(MetricsRegistry::new());
        let counter = registry.counter("hits");
        let hist = registry.histogram("lat", &[1.0, 2.0, 4.0]);

        let mut drained_hits = 0u64;
        let mut drained_obs = 0u64;
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let counter = counter.clone();
                let hist = hist.clone();
                scope.spawn(move || {
                    for i in 0..per_thread {
                        counter.inc();
                        hist.record((i % 5) as f64);
                    }
                });
            }
            // Drain concurrently with the writers.
            for _ in 0..drains {
                let snap = registry.snapshot_and_reset();
                drained_hits += snap.counters["hits"];
                let h = &snap.histograms["lat"];
                // Internal consistency of a mid-flight snapshot is NOT
                // guaranteed cell-by-cell, but nothing may be lost.
                drained_obs += h.buckets.iter().sum::<u64>();
            }
        });
        let fin = registry.snapshot_and_reset();
        drained_hits += fin.counters["hits"];
        drained_obs += fin.histograms["lat"].buckets.iter().sum::<u64>();

        let total = (threads * per_thread) as u64;
        prop_assert_eq!(drained_hits, total);
        prop_assert_eq!(drained_obs, total);
        // Everything was drained: a final plain snapshot reads zero.
        let empty = registry.snapshot();
        prop_assert_eq!(empty.counters["hits"], 0);
        prop_assert_eq!(empty.histograms["lat"].count, 0);
    }
}

/// Gauges are levels: `snapshot_and_reset` drains counters and histograms
/// but leaves the gauge reading intact.
#[test]
fn reset_preserves_gauges() {
    let registry = MetricsRegistry::new();
    registry.counter("c").add(3);
    registry.gauge("g").set(-7.25);
    let first = registry.snapshot_and_reset();
    assert_eq!(first.counters["c"], 3);
    assert_eq!(first.gauges["g"], -7.25);
    let second = registry.snapshot();
    assert_eq!(second.counters["c"], 0);
    assert_eq!(second.gauges["g"], -7.25);
}

/// Counter handles share their cell: increments through a clone and
/// through re-registration under the same name land in one metric.
#[test]
fn handles_share_cells_by_name() {
    let registry = MetricsRegistry::new();
    let a = registry.counter("n");
    let b = a.clone();
    let c = registry.counter("n");
    a.inc();
    b.inc();
    c.add(2);
    assert_eq!(a.get(), 4);
    assert_eq!(registry.snapshot().counters["n"], 4);
    // Histogram bounds are fixed at first registration; a later caller's
    // bounds are ignored rather than forking the metric.
    let h1 = registry.histogram("h", &[1.0, 2.0]);
    let h2 = registry.histogram("h", &[99.0]);
    assert_eq!(h1.bounds(), h2.bounds());
}

/// The JSON export round-trips through `xtask::json::parse` — the same
/// hand-rolled reader `cargo xtask bench-check` uses — with every counter,
/// gauge and histogram field intact.
#[test]
fn export_round_trips_through_xtask_parser() {
    let registry = MetricsRegistry::new();
    registry.counter("ingest.accepted").add(1234);
    registry.counter("ingest.rejected.duplicate").add(5);
    registry.gauge("ingest.last_buffered").set(512.0);
    let h = registry.histogram("stage.coarse_ns", &[1e3, 1e4, 1e5]);
    h.record(500.0);
    h.record(2e4);
    h.record(9e9); // overflow bucket

    let text = registry.export_json();
    let doc = json::parse(&text).expect("export must parse");
    assert_eq!(
        doc.get("schema").and_then(Value::as_str),
        Some("tagspin-metrics/v1")
    );

    let counters = doc.get("counters").expect("counters object");
    let counter = |name: &str| {
        counters
            .get(name)
            .and_then(Value::as_num)
            .unwrap_or(f64::NAN)
    };
    assert_eq!(counter("ingest.accepted"), 1234.0);
    assert_eq!(counter("ingest.rejected.duplicate"), 5.0);

    let gauges = doc.get("gauges").expect("gauges object");
    assert_eq!(
        gauges.get("ingest.last_buffered").and_then(Value::as_num),
        Some(512.0)
    );

    let hist = doc
        .get("histograms")
        .and_then(|h| h.get("stage.coarse_ns"))
        .expect("histogram object");
    assert_eq!(hist.get("count").and_then(Value::as_num), Some(3.0));
    let sum = hist.get("sum").and_then(Value::as_num).expect("sum");
    assert!((sum - (500.0 + 2e4 + 9e9)).abs() < 1e-3);
    let buckets = match hist.get("buckets") {
        Some(Value::Arr(items)) => items
            .iter()
            .map(|v| v.as_num().unwrap_or(f64::NAN))
            .collect::<Vec<_>>(),
        other => panic!("buckets not an array: {other:?}"),
    };
    assert_eq!(buckets, vec![1.0, 0.0, 1.0, 1.0]);

    // Snapshot equality: parse-then-compare agrees with the typed
    // snapshot, so the export is lossless for every exported field.
    let snap = registry.snapshot();
    let parsed_counters = match doc.get("counters") {
        Some(Value::Obj(entries)) => entries
            .iter()
            .map(|(k, v)| (k.clone(), v.as_num().unwrap_or(f64::NAN) as u64))
            .collect::<BTreeMap<_, _>>(),
        other => panic!("counters not an object: {other:?}"),
    };
    assert_eq!(
        parsed_counters, snap.counters,
        "counter map diverged through the round-trip"
    );
}

/// An empty registry still exports a valid document (empty sections).
#[test]
fn empty_export_is_valid_json() {
    let registry = MetricsRegistry::new();
    let doc = json::parse(&registry.export_json()).expect("empty export must parse");
    assert_eq!(
        doc.get("schema").and_then(Value::as_str),
        Some("tagspin-metrics/v1")
    );
    assert!(matches!(doc.get("counters"), Some(Value::Obj(o)) if o.is_empty()));
}
