//! Golden incremental-trace fixture: the canonical two-spinning-tag 2D
//! trace streamed through a count-windowed session on the *incremental*
//! accumulator path, with fixes interleaved mid-stream. The fixture pins,
//! for every fix, the cumulative sync counters (columns applied and
//! downdated, re-anchors, fallbacks) and the fix output, so both the
//! accumulator bookkeeping and the numbers it serves are regression-gated
//! with a reviewable diff.
//!
//! The re-anchor period is deliberately small (64 ops) relative to the
//! stream, so the fixture exercises anchors, rank-1 updates *and*
//! downdates within one rotation — not just the append-only path.
//!
//! Regenerate after an *intentional* change to the sync policy or the
//! spectrum math with `cargo xtask golden --bless` (or `GOLDEN_BLESS=1
//! cargo test --test golden_incremental`), and review the fixture diff
//! like any other code. Counters compare exactly; floats are written with
//! shortest-round-trip `Display` and compared at `1e-9`.

use std::fmt::Write as _;
use std::path::PathBuf;

use rand::rngs::StdRng;
use rand::SeedableRng;
use tagspin::core::prelude::*;
use tagspin::epc::inventory::{run_inventory, ReaderConfig, Transponder};
use tagspin::epc::InventoryLog;
use tagspin::geom::{Pose, Vec3};
use tagspin::rf::channel::Environment;
use tagspin::rf::tags::{TagInstance, TagModel};

const TOL: f64 = 1e-9;
const WINDOW: usize = 256;
const STRIDE: usize = 97;
const REANCHOR_OPS: u64 = 64;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("incr_2d.txt")
}

/// The canonical deterministic deployment: two paper-default disks at
/// (±30 cm, 0), one full rotation observed from (0.4, 1.7).
fn canonical_log() -> InventoryLog {
    let mut rng = StdRng::seed_from_u64(7);
    let d1 = DiskConfig::paper_default(Vec3::new(-0.3, 0.0, 0.0));
    let d2 = DiskConfig::paper_default(Vec3::new(0.3, 0.0, 0.0));
    let t1 = SpinningTag::new(d1, TagInstance::manufacture(TagModel::DEFAULT, 1, &mut rng));
    let t2 = SpinningTag::new(d2, TagInstance::manufacture(TagModel::DEFAULT, 2, &mut rng));
    let reader = ReaderConfig::at(Pose::facing_toward(Vec3::new(0.4, 1.7, 0.0), Vec3::ZERO));
    run_inventory(
        &Environment::paper_default(),
        &reader,
        &[&t1 as &dyn Transponder, &t2 as &dyn Transponder],
        d1.period_s(),
        &mut rng,
    )
}

/// Stream the canonical trace through an incremental session and render
/// the fixture text: one `fix` line per mid-stream refresh (cumulative
/// sync counters plus the fix output), then the final 2D and 3D fixes.
fn render() -> String {
    let mut server = LocalizationServer::new(PipelineConfig {
        incremental: IncrementalPolicy {
            reanchor_after_ops: REANCHOR_OPS,
            engage_after_recomputes: 0,
            ..IncrementalPolicy::default()
        },
        ..PipelineConfig::default()
    });
    let d1 = DiskConfig::paper_default(Vec3::new(-0.3, 0.0, 0.0));
    let d2 = DiskConfig::paper_default(Vec3::new(0.3, 0.0, 0.0));
    server.register(1, d1).expect("unique EPC");
    server.register(2, d2).expect("unique EPC");

    let mut session = server.session(WindowConfig::last_reports(WINDOW));
    let log = canonical_log();

    let mut out = String::new();
    let w = &mut out;
    // lint:allow(no-panic) writing to a String cannot fail
    let ok = "String writes are infallible";
    writeln!(w, "# tagspin golden incremental trace v1").expect(ok);
    writeln!(
        w,
        "# canonical 2-tag 2D trace, {WINDOW}-report window, fix every {STRIDE} reports"
    )
    .expect(ok);
    writeln!(
        w,
        "# fix <i> <applied> <downdated> <reanchors> <fallbacks> <x> <y> <residual>"
    )
    .expect(ok);
    writeln!(w, "policy {REANCHOR_OPS}").expect(ok);
    writeln!(w, "window {WINDOW}").expect(ok);
    writeln!(w, "stride {STRIDE}").expect(ok);

    for (i, report) in log.stream().enumerate() {
        session.ingest(report);
        if i == 0 || i % STRIDE != 0 {
            continue;
        }
        let c = session.stats().incremental;
        match session.fix_2d() {
            Ok(fix) => writeln!(
                w,
                "fix {i} {} {} {} {} {} {} {}",
                c.applied,
                c.downdated,
                c.reanchors,
                c.fallbacks,
                fix.position.x,
                fix.position.y,
                fix.residual_m
            )
            .expect(ok),
            Err(e) => writeln!(
                w,
                "fix {i} {} {} {} {} none # {e}",
                c.applied, c.downdated, c.reanchors, c.fallbacks
            )
            .expect(ok),
        }
    }

    let fix2 = session
        .fix_2d()
        .expect("canonical trace must produce a 2D fix");
    writeln!(
        w,
        "final2d {} {} {}",
        fix2.position.x, fix2.position.y, fix2.residual_m
    )
    .expect(ok);
    let fix3 = session
        .fix_3d()
        .expect("canonical trace must produce a 3D fix");
    writeln!(
        w,
        "final3d {} {} {} {} {}",
        fix3.position.x, fix3.position.y, fix3.position.z, fix3.residual_m, fix3.z_spread_m
    )
    .expect(ok);
    let c = session.stats().incremental;
    writeln!(
        w,
        "counts {} {} {} {}",
        c.applied, c.downdated, c.reanchors, c.fallbacks
    )
    .expect(ok);
    out
}

/// Token-wise comparison: integer and keyword tokens must match exactly;
/// float tokens (anything containing `.`, `e`, `inf` or `nan`) agree
/// within [`TOL`].
fn assert_fixture_matches(got: &str, want: &str) {
    let strip = |s: &str| -> Vec<Vec<String>> {
        s.lines()
            .filter(|l| !l.starts_with('#'))
            .map(|l| {
                l.split('#')
                    .next()
                    .unwrap_or("")
                    .split_whitespace()
                    .map(str::to_owned)
                    .collect()
            })
            .filter(|toks: &Vec<String>| !toks.is_empty())
            .collect()
    };
    let (got_lines, want_lines) = (strip(got), strip(want));
    assert_eq!(
        got_lines.len(),
        want_lines.len(),
        "fixture line count drifted; if intentional run `cargo xtask golden --bless`"
    );
    for (g_toks, w_toks) in got_lines.iter().zip(&want_lines) {
        assert_eq!(
            g_toks.len(),
            w_toks.len(),
            "fixture line shape drifted: got {g_toks:?}, golden {w_toks:?}"
        );
        for (g, want_tok) in g_toks.iter().zip(w_toks) {
            if g == want_tok {
                continue;
            }
            let is_float =
                |t: &str| t.contains(['.', 'e']) || t.contains("inf") || t.contains("nan");
            let (Ok(gv), Ok(wv)) = (g.parse::<f64>(), want_tok.parse::<f64>()) else {
                panic!("fixture token drifted: got {g:?}, golden {want_tok:?}");
            };
            assert!(
                is_float(g) && is_float(want_tok) && (gv - wv).abs() <= TOL,
                "fixture value drifted: got {g}, golden {want_tok}"
            );
        }
    }
}

#[test]
fn golden_incremental_2d() {
    let rendered = render();
    let path = golden_path();
    if std::env::var_os("GOLDEN_BLESS").is_some_and(|v| v == "1") {
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("create tests/golden");
        std::fs::write(&path, rendered).expect("write fixture");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing fixture {} ({e}); run `cargo xtask golden --bless`",
            path.display()
        )
    });
    assert_fixture_matches(&rendered, &expected);
}

/// The fixture trace really runs on the incremental path: anchors fire on
/// the small re-anchor period, rank-1 updates and downdates both happen
/// (the window slides), and nothing falls back to the reference recompute.
#[test]
fn golden_trace_exercises_the_incremental_path() {
    let rendered = render();
    let counts = rendered
        .lines()
        .find_map(|l| l.strip_prefix("counts "))
        .expect("render writes a counts line");
    let v: Vec<u64> = counts
        .split_whitespace()
        .map(|t| t.parse().expect("counts are integers"))
        .collect();
    let (applied, downdated, reanchors, fallbacks) = (v[0], v[1], v[2], v[3]);
    assert!(applied > 0, "no columns ever applied");
    assert!(downdated > 0, "window never slid through a downdate");
    assert!(reanchors > 1, "re-anchor period never elapsed");
    assert_eq!(fallbacks, 0, "clean trace must not fall back");
}
