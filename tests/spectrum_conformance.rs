//! Conformance suite: the coarse-to-fine `SpectrumEngine` versus the
//! exhaustive reference path.
//!
//! The engine's contract (see `docs/SPECTRUM_ENGINE.md`) is that its fast
//! peak search lands within **one fine-grid step** of the exhaustive
//! full-grid peak, for every profile kind, in 2D and 3D, under noise. These
//! properties pin that contract with randomized geometry; the fixed-input
//! regression side lives in `tests/golden_traces.rs`.
//!
//! Case count defaults to 256 and is pinned in CI via `PROPTEST_CASES`.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::f64::consts::TAU;
use tagspin::core::snapshot::{Snapshot, SnapshotSet};
use tagspin::core::spectrum::engine::{SpectrumEngine, SpectrumEngineConfig};
use tagspin::core::spectrum::{ProfileKind, SpectrumConfig};
use tagspin::core::spinning::DiskConfig;
use tagspin::geom::{angle, Vec3};
use tagspin::rf::phase::round_trip_phase;

const LAMBDA: f64 = 0.325;

fn cfg_2d() -> SpectrumConfig {
    SpectrumConfig {
        azimuth_steps: 180,
        polar_steps: 11,
        references: 4,
        ..SpectrumConfig::default()
    }
}

fn cfg_3d() -> SpectrumConfig {
    SpectrumConfig {
        azimuth_steps: 96,
        polar_steps: 17,
        references: 4,
        ..SpectrumConfig::default()
    }
}

fn exhaustive(ecfg: &SpectrumEngineConfig) -> SpectrumEngineConfig {
    SpectrumEngineConfig {
        exhaustive: true,
        ..*ecfg
    }
}

/// Snapshots of a full rotation seen from `reader`, with optional
/// per-snapshot Gaussian phase noise drawn from `seed`.
fn synthesize(disk: &DiskConfig, reader: Vec3, n: usize, noise_rad: f64, seed: u64) -> SnapshotSet {
    let mut rng = StdRng::seed_from_u64(seed);
    SnapshotSet::from_snapshots(
        (0..n)
            .map(|i| {
                let t = i as f64 * disk.period_s() / n as f64;
                let d = disk.tag_position(t).distance(reader);
                Snapshot {
                    t_s: t,
                    phase: round_trip_phase(d, 922.5e6, 0.7)
                        + noise_rad * tagspin::rf::noise::gaussian(&mut rng),
                    disk_angle: disk.disk_angle(t),
                    lambda: LAMBDA,
                    rssi_dbm: -60.0,
                }
            })
            .collect(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::default())]

    /// 2D: for every profile kind, the coarse-to-fine peak sits within one
    /// fine azimuth step of the exhaustive full-grid peak.
    #[test]
    fn prop_fast_2d_peak_within_one_step_of_exhaustive(
        radius in 0.06f64..0.15,
        reader_r in 1.0f64..3.0,
        reader_az in 0.0f64..TAU,
        n in 48usize..96,
        noise_rad in 0.0f64..0.25,
        seed in proptest::num::u64::ANY,
    ) {
        let disk = DiskConfig {
            radius,
            ..DiskConfig::paper_default(Vec3::ZERO)
        };
        let reader = Vec3::new(reader_r * reader_az.cos(), reader_r * reader_az.sin(), 0.0);
        let set = synthesize(&disk, reader, n, noise_rad, seed);
        let cfg = cfg_2d();
        let ecfg = SpectrumEngineConfig::default();
        let engine = SpectrumEngine::new(&ecfg);
        let step = TAU / cfg.azimuth_steps as f64;
        for kind in [ProfileKind::Traditional, ProfileKind::Enhanced, ProfileKind::Hybrid] {
            let fast = engine.peak_2d(&set, disk.radius, kind, &cfg, &ecfg);
            let full = engine.peak_2d(&set, disk.radius, kind, &cfg, &exhaustive(&ecfg));
            let (fast, full) = match (fast, full) {
                (Some(a), Some(b)) => (a, b),
                (a, b) => {
                    prop_assert!(a.is_none() && b.is_none(),
                                 "{kind:?}: one path found a peak, the other did not");
                    continue;
                }
            };
            let sep = angle::separation(fast.position, full.position);
            prop_assert!(
                sep <= step + 1e-9,
                "{kind:?}: fast {:.4} vs exhaustive {:.4} rad apart {:.4} (> step {:.4})",
                fast.position, full.position, sep, step
            );
        }
    }

    /// 3D: azimuth within one azimuth step and |polar| within one polar
    /// step (the ±γ mirror is not an error — both signs carry the same
    /// evidence, so the fold is compared).
    #[test]
    fn prop_fast_3d_peak_within_one_step_of_exhaustive(
        radius in 0.06f64..0.15,
        reader_r in 1.0f64..3.0,
        reader_az in 0.0f64..TAU,
        reader_z in -1.0f64..1.5,
        noise_rad in 0.0f64..0.15,
        seed in proptest::num::u64::ANY,
    ) {
        let disk = DiskConfig {
            radius,
            ..DiskConfig::paper_default(Vec3::ZERO)
        };
        let reader = Vec3::new(reader_r * reader_az.cos(), reader_r * reader_az.sin(), reader_z);
        let set = synthesize(&disk, reader, 64, noise_rad, seed);
        let cfg = cfg_3d();
        let ecfg = SpectrumEngineConfig::default();
        let engine = SpectrumEngine::new(&ecfg);
        let az_step = TAU / cfg.azimuth_steps as f64;
        let po_step = std::f64::consts::PI / (cfg.polar_steps - 1) as f64;
        for kind in [ProfileKind::Traditional, ProfileKind::Enhanced, ProfileKind::Hybrid] {
            let fast = engine.peak_3d(&set, disk.radius, kind, &cfg, &ecfg);
            let full = engine.peak_3d(&set, disk.radius, kind, &cfg, &exhaustive(&ecfg));
            let ((fd, _), (ed, _)) = match (fast, full) {
                (Some(a), Some(b)) => (a, b),
                (a, b) => {
                    prop_assert!(a.is_none() && b.is_none(),
                                 "{kind:?}: one path found a peak, the other did not");
                    continue;
                }
            };
            let az_sep = angle::separation(fd.azimuth, ed.azimuth);
            let po_sep = (fd.polar.abs() - ed.polar.abs()).abs();
            prop_assert!(
                az_sep <= az_step + 1e-9 && po_sep <= po_step + 1e-9,
                "{kind:?}: fast ({:.4}, {:.4}) vs exhaustive ({:.4}, {:.4})",
                fd.azimuth, fd.polar, ed.azimuth, ed.polar
            );
        }
    }

    /// A global phase offset on every snapshot (a rigid rotation of all
    /// phasors) leaves the spectrum — hence its normalization and
    /// peak-to-sidelobe ratio — unchanged.
    #[test]
    fn prop_spectrum_invariant_under_global_phase_shift(
        radius in 0.06f64..0.15,
        reader_r in 1.0f64..3.0,
        reader_az in 0.0f64..TAU,
        shift in -10.0f64..10.0,
        noise_rad in 0.0f64..0.2,
        seed in proptest::num::u64::ANY,
    ) {
        let disk = DiskConfig {
            radius,
            ..DiskConfig::paper_default(Vec3::ZERO)
        };
        let reader = Vec3::new(reader_r * reader_az.cos(), reader_r * reader_az.sin(), 0.0);
        let set = synthesize(&disk, reader, 64, noise_rad, seed);
        let shifted = SnapshotSet::from_snapshots(
            set.snapshots()
                .iter()
                .map(|s| Snapshot { phase: s.phase + shift, ..*s })
                .collect(),
        );
        let cfg = cfg_2d();
        let ecfg = SpectrumEngineConfig::default();
        let engine = SpectrumEngine::new(&ecfg);
        for kind in [ProfileKind::Traditional, ProfileKind::Enhanced] {
            let a = engine.spectrum_2d(&set, disk.radius, kind, &cfg, &ecfg);
            let b = engine.spectrum_2d(&shifted, disk.radius, kind, &cfg, &ecfg);
            let (na, nb) = (a.normalized(), b.normalized());
            for (x, y) in na.values().iter().zip(nb.values()) {
                prop_assert!((x - y).abs() < 1e-9, "{kind:?}: normalized spectra differ");
            }
            match (a.peak_to_sidelobe(20.0), b.peak_to_sidelobe(20.0)) {
                (Some(p), Some(q)) => prop_assert!(
                    (p - q).abs() < 1e-9,
                    "{kind:?}: peak-to-sidelobe {p} vs {q}"
                ),
                (p, q) => prop_assert!(p.is_none() && q.is_none()),
            }
        }
    }
}
