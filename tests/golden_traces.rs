//! Golden-trace regression tests for the spectrum reference path.
//!
//! Each fixture under `tests/golden/` is a self-contained trace: the
//! snapshot inputs plus the exhaustive reference path's outputs (spectrum
//! values and/or refined peak) at the time the fixture was blessed. The
//! test recomputes from the stored snapshots and compares:
//!
//! * the **exhaustive** path against the stored numbers at `1e-9` — any
//!   drift in the reference math is a regression;
//! * the **fast** coarse-to-fine path against the stored peak within one
//!   fine-grid step — the engine's conformance contract on fixed inputs.
//!
//! Regenerate after an *intentional* numeric change with
//! `cargo xtask golden --bless` (or `GOLDEN_BLESS=1 cargo test --test
//! golden_traces`), and review the fixture diff like any other code.
//!
//! Values are written with Rust's shortest-round-trip float `Display`, so
//! parsing a fixture recovers the exact bits that were blessed.

use std::f64::consts::{FRAC_PI_2, TAU};
use std::fmt::Write as _;
use std::path::PathBuf;
use tagspin::core::snapshot::{Snapshot, SnapshotSet};
use tagspin::core::spectrum::engine::{SpectrumEngine, SpectrumEngineConfig};
use tagspin::core::spectrum::{ProfileKind, SpectrumConfig};
use tagspin::core::spinning::{DiskConfig, DiskPlane};
use tagspin::geom::{angle, Vec3};
use tagspin::rf::phase::round_trip_phase;

const LAMBDA: f64 = 0.325;
const TOL: f64 = 1e-9;

/// What a golden case records beyond its inputs.
#[derive(Clone, Copy)]
enum Record {
    /// Full 2D spectrum values plus the refined peak.
    Spectrum2D,
    /// 2D refined peak only.
    Peak2D,
    /// Full 3D spectrum values plus the refined peak.
    Spectrum3D,
    /// 3D refined peak only.
    Peak3D,
}

struct GoldenCase {
    name: &'static str,
    disk: DiskConfig,
    reader: Vec3,
    snapshots: usize,
    kind: ProfileKind,
    cfg: SpectrumConfig,
    record: Record,
}

fn cases() -> Vec<GoldenCase> {
    let cfg_2d = SpectrumConfig {
        azimuth_steps: 360,
        polar_steps: 11,
        references: 8,
        ..SpectrumConfig::default()
    };
    let cfg_3d = SpectrumConfig {
        azimuth_steps: 96,
        polar_steps: 17,
        references: 8,
        ..SpectrumConfig::default()
    };
    vec![
        GoldenCase {
            name: "trad_2d",
            disk: DiskConfig::paper_default(Vec3::ZERO),
            reader: Vec3::new(0.4, 1.7, 0.0),
            snapshots: 72,
            kind: ProfileKind::Traditional,
            cfg: cfg_2d,
            record: Record::Spectrum2D,
        },
        GoldenCase {
            name: "enh_2d",
            disk: DiskConfig::paper_default(Vec3::ZERO),
            reader: Vec3::new(-0.8, 2.2, 0.0),
            snapshots: 72,
            kind: ProfileKind::Enhanced,
            cfg: cfg_2d,
            record: Record::Spectrum2D,
        },
        GoldenCase {
            name: "hyb_2d",
            disk: DiskConfig::paper_default(Vec3::ZERO),
            reader: Vec3::new(1.1, 1.3, 0.0),
            snapshots: 64,
            kind: ProfileKind::Hybrid,
            cfg: cfg_2d,
            record: Record::Peak2D,
        },
        GoldenCase {
            name: "enh_3d",
            disk: DiskConfig::paper_default(Vec3::ZERO),
            reader: Vec3::new(0.5, 1.6, 0.9),
            snapshots: 64,
            kind: ProfileKind::Enhanced,
            cfg: cfg_3d,
            record: Record::Spectrum3D,
        },
        GoldenCase {
            name: "hyb_3d_vertical",
            disk: DiskConfig::vertical(Vec3::new(0.0, 0.5, 0.0), FRAC_PI_2),
            reader: Vec3::new(-0.4, 2.0, 1.2),
            snapshots: 64,
            kind: ProfileKind::Hybrid,
            cfg: cfg_3d,
            record: Record::Peak3D,
        },
    ]
}

/// Noise-free snapshots of one full rotation (fixtures must be
/// deterministic; noise robustness is the conformance suite's job).
fn synthesize(disk: &DiskConfig, reader: Vec3, n: usize) -> SnapshotSet {
    SnapshotSet::from_snapshots(
        (0..n)
            .map(|i| {
                let t = i as f64 * disk.period_s() / n as f64;
                let d = disk.tag_position(t).distance(reader);
                Snapshot {
                    t_s: t,
                    phase: round_trip_phase(d, 922.5e6, 0.7),
                    disk_angle: disk.disk_angle(t),
                    lambda: LAMBDA,
                    rssi_dbm: -60.0,
                }
            })
            .collect(),
    )
}

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
}

fn kind_name(kind: ProfileKind) -> &'static str {
    match kind {
        ProfileKind::Traditional => "Traditional",
        ProfileKind::Enhanced => "Enhanced",
        ProfileKind::Hybrid => "Hybrid",
    }
}

/// Render a fixture: inputs, then the exhaustive path's outputs.
fn render(case: &GoldenCase, set: &SnapshotSet) -> String {
    let engine = SpectrumEngine::default();
    let exhaustive = SpectrumEngineConfig {
        exhaustive: true,
        ..SpectrumEngineConfig::default()
    };
    let mut out = String::new();
    let w = &mut out;
    // lint:allow(no-panic) writing to a String cannot fail
    let ok = "String writes are infallible";
    writeln!(w, "# tagspin golden trace v1").expect(ok);
    writeln!(w, "case {}", case.name).expect(ok);
    match case.disk.plane {
        DiskPlane::Horizontal => writeln!(
            w,
            "disk {} {} {} horizontal",
            case.disk.radius, case.disk.omega, case.disk.initial_angle
        )
        .expect(ok),
        DiskPlane::Vertical { normal_azimuth } => writeln!(
            w,
            "disk {} {} {} vertical {normal_azimuth}",
            case.disk.radius, case.disk.omega, case.disk.initial_angle
        )
        .expect(ok),
    }
    writeln!(
        w,
        "config {} {} {} {} {}",
        case.cfg.azimuth_steps,
        case.cfg.polar_steps,
        case.cfg.sigma,
        case.cfg.references,
        case.cfg.weight_inflation
    )
    .expect(ok);
    writeln!(w, "kind {}", kind_name(case.kind)).expect(ok);
    writeln!(w, "snapshots {}", set.snapshots().len()).expect(ok);
    for s in set.snapshots() {
        writeln!(
            w,
            "{} {} {} {} {}",
            s.t_s, s.phase, s.disk_angle, s.lambda, s.rssi_dbm
        )
        .expect(ok);
    }
    match case.record {
        Record::Spectrum2D | Record::Peak2D => {
            let spec = engine.spectrum_2d(set, case.disk.radius, case.kind, &case.cfg, &exhaustive);
            if matches!(case.record, Record::Spectrum2D) {
                writeln!(w, "spectrum2d {}", spec.values().len()).expect(ok);
                for v in spec.values() {
                    writeln!(w, "{v}").expect(ok);
                }
            }
            let peak = engine
                .peak_2d(set, case.disk.radius, case.kind, &case.cfg, &exhaustive)
                .expect("golden inputs always produce a peak");
            writeln!(w, "peak2d {} {}", peak.position, peak.value).expect(ok);
        }
        Record::Spectrum3D | Record::Peak3D => {
            let spec =
                engine.spectrum_3d_for_disk(set, &case.disk, case.kind, &case.cfg, &exhaustive);
            if matches!(case.record, Record::Spectrum3D) {
                let (az, po) = spec.shape();
                writeln!(w, "spectrum3d {az} {po}").expect(ok);
                for v in spec.values() {
                    writeln!(w, "{v}").expect(ok);
                }
            }
            let (dir, power) = engine
                .peak_3d_for_disk(set, &case.disk, case.kind, &case.cfg, &exhaustive)
                .expect("golden inputs always produce a peak");
            writeln!(w, "peak3d {} {} {power}", dir.azimuth, dir.polar).expect(ok);
        }
    }
    out
}

/// Parsed fixture: stored snapshots and expected outputs.
struct Fixture {
    snapshots: Vec<Snapshot>,
    spectrum: Option<Vec<f64>>,
    peak2d: Option<(f64, f64)>,
    peak3d: Option<(f64, f64, f64)>,
}

fn parse(text: &str, name: &str) -> Fixture {
    let mut lines = text.lines().filter(|l| !l.starts_with('#'));
    let mut fixture = Fixture {
        snapshots: Vec::new(),
        spectrum: None,
        peak2d: None,
        peak3d: None,
    };
    let f = |tok: &str| -> f64 {
        tok.parse()
            .unwrap_or_else(|_| panic!("{name}: bad float {tok:?}"))
    };
    while let Some(line) = lines.next() {
        let mut toks = line.split_whitespace();
        let Some(tag) = toks.next() else { continue };
        let rest: Vec<&str> = toks.collect();
        match tag {
            "case" | "disk" | "config" | "kind" => {}
            "snapshots" => {
                let n: usize = rest[0].parse().expect("snapshot count");
                for _ in 0..n {
                    let l = lines.next().expect("snapshot line");
                    let v: Vec<f64> = l.split_whitespace().map(f).collect();
                    assert_eq!(v.len(), 5, "{name}: snapshot line needs 5 fields");
                    fixture.snapshots.push(Snapshot {
                        t_s: v[0],
                        phase: v[1],
                        disk_angle: v[2],
                        lambda: v[3],
                        rssi_dbm: v[4],
                    });
                }
            }
            "spectrum2d" => {
                let n: usize = rest[0].parse().expect("value count");
                fixture.spectrum = Some(
                    (0..n)
                        .map(|_| f(lines.next().expect("value line")))
                        .collect(),
                );
            }
            "spectrum3d" => {
                let az: usize = rest[0].parse().expect("azimuth steps");
                let po: usize = rest[1].parse().expect("polar steps");
                fixture.spectrum = Some(
                    (0..az * po)
                        .map(|_| f(lines.next().expect("value line")))
                        .collect(),
                );
            }
            "peak2d" => fixture.peak2d = Some((f(rest[0]), f(rest[1]))),
            "peak3d" => fixture.peak3d = Some((f(rest[0]), f(rest[1]), f(rest[2]))),
            other => panic!("{name}: unknown fixture tag {other:?}"),
        }
    }
    fixture
}

fn check(case: &GoldenCase) {
    let path = golden_dir().join(format!("{}.txt", case.name));
    let set = synthesize(&case.disk, case.reader, case.snapshots);
    if std::env::var_os("GOLDEN_BLESS").is_some_and(|v| v == "1") {
        std::fs::create_dir_all(golden_dir()).expect("create tests/golden");
        std::fs::write(&path, render(case, &set)).expect("write fixture");
        return;
    }
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "{}: missing fixture {} ({e}); run `cargo xtask golden --bless`",
            case.name,
            path.display()
        )
    });
    let fixture = parse(&text, case.name);
    // Recompute from the *stored* snapshots: the fixture is self-contained,
    // so drift in the synthesis helper cannot mask drift in the spectrum.
    let stored = SnapshotSet::from_snapshots(fixture.snapshots.clone());
    let engine = SpectrumEngine::default();
    let fast = SpectrumEngineConfig::default();
    let exhaustive = SpectrumEngineConfig {
        exhaustive: true,
        ..fast
    };
    match case.record {
        Record::Spectrum2D | Record::Peak2D => {
            if let Some(expected) = &fixture.spectrum {
                let spec = engine.spectrum_2d(
                    &stored,
                    case.disk.radius,
                    case.kind,
                    &case.cfg,
                    &exhaustive,
                );
                assert_eq!(
                    spec.values().len(),
                    expected.len(),
                    "{}: grid size",
                    case.name
                );
                for (i, (got, want)) in spec.values().iter().zip(expected).enumerate() {
                    assert!(
                        (got - want).abs() <= TOL,
                        "{}: spectrum[{i}] drifted: got {got}, golden {want}",
                        case.name
                    );
                }
            }
            let (want_pos, want_val) = fixture.peak2d.expect("2D fixture stores a peak");
            let got = engine
                .peak_2d(&stored, case.disk.radius, case.kind, &case.cfg, &exhaustive)
                .expect("peak");
            assert!(
                angle::separation(got.position, want_pos) <= TOL
                    && (got.value - want_val).abs() <= TOL,
                "{}: exhaustive peak drifted: got ({}, {}), golden ({want_pos}, {want_val})",
                case.name,
                got.position,
                got.value
            );
            // Fast-path conformance on the golden inputs: within one step.
            let step = TAU / case.cfg.azimuth_steps as f64;
            let quick = engine
                .peak_2d(&stored, case.disk.radius, case.kind, &case.cfg, &fast)
                .expect("fast peak");
            assert!(
                angle::separation(quick.position, want_pos) <= step + TOL,
                "{}: fast peak {} not within one step of golden {want_pos}",
                case.name,
                quick.position
            );
        }
        Record::Spectrum3D | Record::Peak3D => {
            if let Some(expected) = &fixture.spectrum {
                let spec = engine.spectrum_3d_for_disk(
                    &stored,
                    &case.disk,
                    case.kind,
                    &case.cfg,
                    &exhaustive,
                );
                assert_eq!(
                    spec.values().len(),
                    expected.len(),
                    "{}: grid size",
                    case.name
                );
                for (i, (got, want)) in spec.values().iter().zip(expected).enumerate() {
                    assert!(
                        (got - want).abs() <= TOL,
                        "{}: spectrum[{i}] drifted: got {got}, golden {want}",
                        case.name
                    );
                }
            }
            let (want_az, want_po, want_power) = fixture.peak3d.expect("3D fixture stores a peak");
            let (dir, power) = engine
                .peak_3d_for_disk(&stored, &case.disk, case.kind, &case.cfg, &exhaustive)
                .expect("peak");
            assert!(
                angle::separation(dir.azimuth, want_az) <= TOL
                    && (dir.polar - want_po).abs() <= TOL
                    && (power - want_power).abs() <= TOL,
                "{}: exhaustive peak drifted: got ({}, {}, {power}), golden ({want_az}, {want_po}, {want_power})",
                case.name,
                dir.azimuth,
                dir.polar
            );
            let az_step = TAU / case.cfg.azimuth_steps as f64;
            let po_step = std::f64::consts::PI / (case.cfg.polar_steps - 1) as f64;
            let (qdir, _) = engine
                .peak_3d_for_disk(&stored, &case.disk, case.kind, &case.cfg, &fast)
                .expect("fast peak");
            assert!(
                angle::separation(qdir.azimuth, want_az) <= az_step + TOL
                    && (qdir.polar.abs() - want_po.abs()).abs() <= po_step + TOL,
                "{}: fast peak ({}, {}) not within one step of golden ({want_az}, {want_po})",
                case.name,
                qdir.azimuth,
                qdir.polar
            );
        }
    }
}

#[test]
fn golden_trad_2d() {
    check(&cases()[0]);
}

#[test]
fn golden_enh_2d() {
    check(&cases()[1]);
}

#[test]
fn golden_hyb_2d() {
    check(&cases()[2]);
}

#[test]
fn golden_enh_3d() {
    check(&cases()[3]);
}

#[test]
fn golden_hyb_3d_vertical() {
    check(&cases()[4]);
}
