//! Cross-crate property-based tests (proptest) on the core invariants.

use proptest::prelude::*;
use std::f64::consts::TAU;
use tagspin::core::snapshot::{Snapshot, SnapshotSet};
use tagspin::core::spectrum::{spectrum_2d, ProfileKind, SpectrumConfig};
use tagspin::core::spinning::DiskConfig;
use tagspin::dsp::unwrap;
use tagspin::geom::{angle, circular, Line2, Vec2, Vec3};
use tagspin::rf::phase::round_trip_phase;

const LAMBDA: f64 = 0.325;

fn small_cfg() -> SpectrumConfig {
    SpectrumConfig {
        azimuth_steps: 360,
        polar_steps: 11,
        references: 4,
        ..SpectrumConfig::default()
    }
}

/// Noise-free snapshots of a full rotation seen from `reader`.
fn synthesize(disk: &DiskConfig, reader: Vec3, n: usize) -> SnapshotSet {
    SnapshotSet::from_snapshots(
        (0..n)
            .map(|i| {
                let t = i as f64 * disk.period_s() / n as f64;
                let d = disk.tag_position(t).distance(reader);
                Snapshot {
                    t_s: t,
                    phase: round_trip_phase(d, 922.5e6, 0.7),
                    disk_angle: disk.disk_angle(t),
                    lambda: LAMBDA,
                    rssi_dbm: -60.0,
                }
            })
            .collect(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Angle wraps land in their documented ranges and are idempotent.
    #[test]
    fn prop_wraps_range_and_idempotent(x in -1e4f64..1e4) {
        let t = angle::wrap_tau(x);
        prop_assert!((0.0..TAU).contains(&t));
        prop_assert!((angle::wrap_tau(t) - t).abs() < 1e-9);
        let p = angle::wrap_pi(x);
        prop_assert!(p > -std::f64::consts::PI - 1e-12 && p <= std::f64::consts::PI + 1e-12);
        // Wrapping preserves the angle mod 2π.
        prop_assert!(angle::separation(t, x) < 1e-6);
    }

    /// Unwrapping a wrapped smooth sequence recovers it up to one global
    /// 2π multiple.
    #[test]
    fn prop_unwrap_inverts_wrap(
        slope in -2.0f64..2.0,
        curve in -0.5f64..0.5,
        n in 10usize..200,
    ) {
        let truth: Vec<f64> = (0..n)
            .map(|i| {
                let t = i as f64 * 0.1;
                slope * t + curve * (0.7 * t).sin()
            })
            .collect();
        let wrapped: Vec<f64> = truth.iter().map(|&x| angle::wrap_tau(x)).collect();
        let un = unwrap::unwrap(&wrapped);
        let delta = un[0] - truth[0];
        prop_assert!((delta / TAU - (delta / TAU).round()).abs() < 1e-9);
        for (u, t) in un.iter().zip(&truth) {
            prop_assert!((u - t - delta).abs() < 1e-6);
        }
    }

    /// The phase model is λ/2-periodic in one-way distance.
    #[test]
    fn prop_phase_periodicity(d in 0.1f64..10.0, k in 1u8..10) {
        let f = 922.5e6;
        let lambda = tagspin::rf::constants::wavelength(f);
        let a = round_trip_phase(d, f, 0.0);
        let b = round_trip_phase(d + k as f64 * lambda / 2.0, f, 0.0);
        prop_assert!(angle::separation(a, b) < 1e-6);
    }

    /// Line intersection is symmetric in argument order.
    #[test]
    fn prop_intersection_symmetric(
        x1 in -2.0f64..2.0, y1 in -2.0f64..2.0, b1 in 0.0f64..TAU,
        x2 in -2.0f64..2.0, y2 in -2.0f64..2.0, b2 in 0.0f64..TAU,
    ) {
        let l1 = Line2::from_bearing(Vec2::new(x1, y1), b1);
        let l2 = Line2::from_bearing(Vec2::new(x2, y2), b2);
        match (l1.intersect(&l2), l2.intersect(&l1)) {
            (Ok(a), Ok(b)) => prop_assert!((a - b).norm() < 1e-6),
            (Err(_), Err(_)) => {}
            (a, b) => prop_assert!(false, "asymmetric results {a:?} vs {b:?}"),
        }
    }

    /// Both spectra peak at the true bearing for noise-free data, any
    /// reader placement in the far field.
    #[test]
    fn prop_spectrum_peaks_at_truth(
        rx in -2.5f64..2.5,
        ry in 1.2f64..3.0,
    ) {
        let disk = DiskConfig::paper_default(Vec3::ZERO);
        let reader = Vec3::new(rx, ry, 0.0);
        let set = synthesize(&disk, reader, 180);
        let expect = (reader - disk.center).azimuth();
        for kind in [ProfileKind::Traditional, ProfileKind::Enhanced] {
            let spec = spectrum_2d(&set, disk.radius, kind, &small_cfg());
            let peak = spec.peak().expect("nonempty");
            prop_assert!(
                angle::separation(peak.position, expect) < 3f64.to_radians(),
                "{kind:?} peak {:.1}° vs truth {:.1}°",
                peak.position.to_degrees(),
                expect.to_degrees()
            );
        }
    }

    /// The spectrum is invariant to the diversity term θ_div.
    #[test]
    fn prop_spectrum_invariant_to_diversity(
        theta_div in 0.0f64..TAU,
    ) {
        let disk = DiskConfig::paper_default(Vec3::ZERO);
        let reader = Vec3::new(-1.2, 1.1, 0.0);
        let base = synthesize(&disk, reader, 120);
        let shifted = base.with_phases(
            &base
                .phases()
                .iter()
                .map(|p| angle::wrap_tau(p + theta_div))
                .collect::<Vec<_>>(),
        );
        let a = spectrum_2d(&base, disk.radius, ProfileKind::Enhanced, &small_cfg());
        let b = spectrum_2d(&shifted, disk.radius, ProfileKind::Enhanced, &small_cfg());
        for (x, y) in a.values().iter().zip(b.values()) {
            prop_assert!((x - y).abs() < 1e-9);
        }
    }

    /// Circular mean of a tight cluster stays inside the cluster's arc.
    #[test]
    fn prop_circular_mean_in_cluster(
        center in 0.0f64..TAU,
        spread in 0.001f64..0.5,
        n in 2usize..40,
    ) {
        let angles: Vec<f64> = (0..n)
            .map(|i| center + spread * ((i as f64 / n as f64) - 0.5))
            .collect();
        let m = circular::mean(&angles).expect("concentrated cluster");
        prop_assert!(angle::separation(m, center) <= spread / 2.0 + 1e-9);
    }

    /// ECDF is monotone and normalized.
    #[test]
    fn prop_ecdf_monotone(mut xs in proptest::collection::vec(-100.0f64..100.0, 1..100)) {
        let cdf = tagspin::dsp::stats::Ecdf::new(&xs);
        xs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let mut prev = 0.0;
        for w in xs.windows(2) {
            let v = cdf.eval(w[0]);
            prop_assert!(v >= prev);
            prev = v;
        }
        prop_assert_eq!(cdf.eval(xs[xs.len() - 1]), 1.0);
        prop_assert_eq!(cdf.eval(xs[0] - 1.0), 0.0);
    }

    /// Mirror-z candidates produce identical distances to any point on the
    /// disk plane — the physical root of the 3D ambiguity.
    #[test]
    fn prop_mirror_ambiguity(
        px in -3.0f64..3.0, py in -3.0f64..3.0, pz in 0.0f64..2.0,
        qx in -3.0f64..3.0, qy in -3.0f64..3.0,
    ) {
        let p = Vec3::new(px, py, pz);
        let q = Vec3::new(qx, qy, 0.0);
        prop_assert!((p.distance(q) - p.mirror_z().distance(q)).abs() < 1e-9);
    }
}
